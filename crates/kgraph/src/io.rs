//! Graph serialization: a line-oriented TSV triple format and JSON.
//!
//! The TSV format is the interchange surface for examples and tooling:
//!
//! ```text
//! # comment lines start with '#'
//! N<TAB>key<TAB>text...
//! E<TAB>src_key<TAB>label<TAB>dst_key
//! ```
//!
//! Node lines must precede the edges that use them; an edge referencing an
//! unseen key implicitly creates a node whose text equals its key (Wikidata
//! dumps behave this way for dangling references).

use crate::builder::GraphBuilder;
use crate::error::KgraphError;
use crate::graph::KnowledgeGraph;
use std::fmt::Write as _;
use std::io::{BufReader, Read, Write};

/// Serialize `g` to the TSV triple format.
pub fn to_tsv(g: &KnowledgeGraph) -> String {
    let mut out = String::new();
    let _ =
        writeln!(out, "# kgraph tsv: {} nodes, {} edges", g.num_nodes(), g.num_directed_edges());
    for v in g.nodes() {
        let _ = writeln!(out, "N\t{}\t{}", g.node_key(v), g.node_text(v));
    }
    for (s, l, t) in g.directed_edges() {
        let _ = writeln!(out, "E\t{}\t{}\t{}", g.node_key(s), g.label_name(l), g.node_key(t));
    }
    out
}

/// Parse a graph from the TSV triple format.
pub fn from_tsv(text: &str) -> Result<KnowledgeGraph, KgraphError> {
    let mut b = GraphBuilder::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        match parts.next() {
            Some("N") => {
                let key = parts.next().ok_or_else(|| KgraphError::Parse {
                    line: lineno,
                    message: "node line missing key".into(),
                })?;
                let text = parts.next().unwrap_or("");
                b.add_node(key, text);
            }
            Some("E") => {
                let src = parts.next().ok_or_else(|| KgraphError::Parse {
                    line: lineno,
                    message: "edge line missing source".into(),
                })?;
                let label = parts.next().ok_or_else(|| KgraphError::Parse {
                    line: lineno,
                    message: "edge line missing label".into(),
                })?;
                let dst = parts.next().ok_or_else(|| KgraphError::Parse {
                    line: lineno,
                    message: "edge line missing target".into(),
                })?;
                let s = b.node(src).unwrap_or_else(|| b.add_node(src, src));
                let d = b.node(dst).unwrap_or_else(|| b.add_node(dst, dst));
                b.add_edge(s, d, label);
            }
            Some(other) => {
                return Err(KgraphError::Parse {
                    line: lineno,
                    message: format!("unknown record type {other:?}"),
                })
            }
            None => {}
        }
    }
    Ok(b.build())
}

/// Write the TSV form to any [`Write`] sink.
pub fn write_tsv<W: Write>(g: &KnowledgeGraph, mut w: W) -> Result<(), KgraphError> {
    w.write_all(to_tsv(g).as_bytes())?;
    Ok(())
}

/// Read a graph in TSV form from any [`Read`] source.
pub fn read_tsv<R: Read>(r: R) -> Result<KnowledgeGraph, KgraphError> {
    let mut text = String::new();
    BufReader::new(r).read_to_string(&mut text)?;
    from_tsv(&text)
}

/// Parse a graph from RDF N-Triples (the format Wikidata/Freebase/Yago
/// dumps share — the paper: "these knowledge graphs can all be
/// represented in an RDF graph").
///
/// Supported subset, per line: `<s> <p> <o> .` creates an edge, and
/// `<s> <label-ish predicate> "text" .` sets the subject's text (any
/// predicate IRI ending in `label`, `name` or `title` counts; literals on
/// other predicates are ignored, as are language/datatype tags). IRIs are
/// shortened to their final path/fragment segment for keys and labels.
pub fn from_ntriples(text: &str) -> Result<KnowledgeGraph, KgraphError> {
    let mut b = GraphBuilder::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(rest) = line.strip_suffix('.') else {
            return Err(KgraphError::Parse {
                line: lineno,
                message: "triple must end with '.'".into(),
            });
        };
        let rest = rest.trim_end();
        let (subject, rest) = take_iri(rest, lineno)?;
        let (predicate, rest) = take_iri(rest.trim_start(), lineno)?;
        let object = rest.trim();
        let s = b.node(&subject).unwrap_or_else(|| b.add_node(&subject, &subject));
        if let Some(literal) = parse_literal(object) {
            if is_labelish(&predicate) {
                b.add_node(&subject, &literal);
            }
            continue;
        }
        let (object_iri, trailing) = take_iri(object, lineno)?;
        if !trailing.trim().is_empty() {
            return Err(KgraphError::Parse {
                line: lineno,
                message: format!("unexpected trailing content {trailing:?}"),
            });
        }
        let o = b.node(&object_iri).unwrap_or_else(|| b.add_node(&object_iri, &object_iri));
        b.add_edge(s, o, &predicate);
    }
    Ok(b.build())
}

/// `<iri>` → shortened local name, plus the remaining input.
fn take_iri(input: &str, lineno: usize) -> Result<(String, &str), KgraphError> {
    let err = |m: String| KgraphError::Parse { line: lineno, message: m };
    let input = input.trim_start();
    let Some(rest) = input.strip_prefix('<') else {
        return Err(err(format!("expected '<' at {input:?}")));
    };
    let Some(end) = rest.find('>') else {
        return Err(err("unterminated IRI".into()));
    };
    let iri = &rest[..end];
    let local = iri.rsplit(['/', '#']).next().filter(|s| !s.is_empty()).unwrap_or(iri);
    Ok((local.replace('_', " "), &rest[end + 1..]))
}

/// `"text"` (optionally with `@lang` / `^^<type>` suffix) → the text.
fn parse_literal(input: &str) -> Option<String> {
    let rest = input.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn is_labelish(predicate: &str) -> bool {
    let p = predicate.to_lowercase();
    p.ends_with("label") || p.ends_with("name") || p.ends_with("title")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node("Q1", "SPARQL query language");
        let c = b.add_node("Q2", "RDF");
        let d = b.add_node("Q3", "Query language");
        b.add_edge(a, c, "designed for");
        b.add_edge(a, d, "instance of");
        b.build()
    }

    #[test]
    fn tsv_round_trip_preserves_structure() {
        let g = sample();
        let text = to_tsv(&g);
        let g2 = from_tsv(&text).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_directed_edges(), g.num_directed_edges());
        let q1 = g2.find_node_by_key("Q1").unwrap();
        assert_eq!(g2.node_text(q1), "SPARQL query language");
        let mut e1: Vec<_> = g
            .directed_edges()
            .map(|(s, l, t)| {
                (
                    g.node_key(s).to_string(),
                    g.label_name(l).to_string(),
                    g.node_key(t).to_string(),
                )
            })
            .collect();
        let mut e2: Vec<_> = g2
            .directed_edges()
            .map(|(s, l, t)| {
                (
                    g2.node_key(s).to_string(),
                    g2.label_name(l).to_string(),
                    g2.node_key(t).to_string(),
                )
            })
            .collect();
        e1.sort();
        e2.sort();
        assert_eq!(e1, e2);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let g = from_tsv("# header\n\nN\ta\talpha\n").unwrap();
        assert_eq!(g.num_nodes(), 1);
    }

    #[test]
    fn dangling_edge_creates_implicit_nodes() {
        let g = from_tsv("E\tx\tp\ty\n").unwrap();
        assert_eq!(g.num_nodes(), 2);
        let x = g.find_node_by_key("x").unwrap();
        assert_eq!(g.node_text(x), "x");
    }

    #[test]
    fn malformed_lines_error_with_line_number() {
        let err = from_tsv("N\ta\ta\nZ\tbogus\n").unwrap_err();
        assert!(err.to_string().contains("line 2"));
        let err = from_tsv("E\tonly_src\n").unwrap_err();
        assert!(err.to_string().contains("label"));
    }

    #[test]
    fn ntriples_parses_edges_and_labels() {
        let nt = r#"
# a Wikidata-flavored snippet
<http://www.wikidata.org/entity/Q42> <http://www.w3.org/2000/01/rdf-schema#label> "Douglas Adams"@en .
<http://www.wikidata.org/entity/Q42> <http://www.wikidata.org/prop/direct/instance_of> <http://www.wikidata.org/entity/Q5> .
<http://www.wikidata.org/entity/Q5> <http://www.w3.org/2000/01/rdf-schema#label> "human" .
<http://www.wikidata.org/entity/Q42> <http://example.org/unrelated> "ignored literal" .
"#;
        let g = from_ntriples(nt).unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_directed_edges(), 1);
        let q42 = g.find_node_by_key("Q42").unwrap();
        assert_eq!(g.node_text(q42), "Douglas Adams");
        let q5 = g.find_node_by_key("Q5").unwrap();
        assert_eq!(g.node_text(q5), "human");
        let (_, l, t) = g.directed_edges().next().unwrap();
        assert_eq!(g.label_name(l), "instance of");
        assert_eq!(t, q5);
    }

    #[test]
    fn ntriples_rejects_malformed_lines() {
        assert!(from_ntriples("<a> <b> <c>").is_err(), "missing dot");
        assert!(from_ntriples("a <b> <c> .").is_err(), "bare subject");
        assert!(from_ntriples("<a> <b> <c> <d> .").is_err(), "four terms");
        assert!(from_ntriples("<a> <unclosed .").is_err());
    }

    #[test]
    fn ntriples_search_end_to_end_shape() {
        // The imported graph behaves like any other KnowledgeGraph.
        let nt = r#"
<http://kb/XML> <http://kb/related_to> <http://kb/Query_language> .
<http://kb/SQL> <http://kb/instance_of> <http://kb/Query_language> .
"#;
        let g = from_ntriples(nt).unwrap();
        g.check_invariants().unwrap();
        assert_eq!(g.num_nodes(), 3);
        // underscores become spaces in local names
        assert!(g.find_node_by_key("Query language").is_some());
    }

    #[test]
    fn json_round_trip_via_serde() {
        let g = sample();
        let json = serde_json::to_string(&g).unwrap();
        let g2: KnowledgeGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_directed_edges(), g.num_directed_edges());
        g2.check_invariants().unwrap();
    }
}
