//! Export answer graphs: Graphviz DOT rendering and induced-subgraph
//! extraction — the pieces a downstream application needs to display or
//! post-process WikiSearch answers.
//!
//! ```text
//! cargo run -p wikisearch-examples --bin export_dot > answer.dot
//! dot -Tsvg answer.dot -o answer.svg   # if graphviz is installed
//! ```

use datagen::figures::fig4_graph;
use wikisearch_engine::render::render_dot;
use wikisearch_engine::{Backend, WikiSearch};

fn main() {
    let (graph, activation) = fig4_graph();
    let mut ws = WikiSearch::build_with(graph, Backend::Sequential);
    let params = ws.params().clone().with_top_k(1).with_explicit_activation(activation);
    ws.set_params(params);

    let result = ws.search("XML RDF SQL");
    let best = result.answers.first().expect("the Fig. 4 answer exists");

    // 1. Graphviz DOT on stdout (pipe into `dot -Tsvg`).
    print!("{}", render_dot(ws.graph(), best));

    // 2. The answer as a standalone KnowledgeGraph, ready for TSV/binary
    //    export or further analysis.
    let sub = ws.graph().induced_subgraph(&best.nodes);
    eprintln!(
        "induced answer subgraph: {} nodes / {} directed edges",
        sub.num_nodes(),
        sub.num_directed_edges()
    );
    eprintln!("as TSV:\n{}", kgraph::io::to_tsv(&sub));
    assert_eq!(sub.num_nodes(), best.num_nodes());
}
