//! Lock-free search state: the node–keyword matrix `M`, the frontier
//! flags `FIdentifier` and the central flags `CIdentifier` (paper
//! Sec. V-B, *Initialization*).
//!
//! Theorem V.2 of the paper is the correctness anchor: during one
//! expansion level every write to `M` stores the same value `l + 1` and
//! every write to `FIdentifier` stores `1`, so concurrent duplicate writes
//! are benign and no locks are needed. We therefore use plain atomics with
//! `Relaxed` ordering inside a level; the level-synchronous driver places
//! the necessary happens-before edges at its fork/join boundaries (rayon's
//! scope joins synchronize).

use crate::model::INFINITE_LEVEL;
use std::sync::atomic::{AtomicU8, Ordering};
use textindex::ParsedQuery;

/// Mutable (atomic) per-search state shared by all threads.
pub struct SearchState {
    /// Number of query keywords `q`.
    q: usize,
    /// Number of graph nodes.
    n: usize,
    /// `M`: row-major `n × q` hitting levels; `255` = ∞.
    matrix: Vec<AtomicU8>,
    /// `FIdentifier`: 1 ⇔ node is a frontier at the next level.
    frontier: Vec<AtomicU8>,
    /// `CIdentifier`: 0 ⇔ not central; otherwise the node is a Central
    /// Node identified at depth `value − 1`. Storing the depth (instead of
    /// the paper's plain flag) lets Theorem V.4 extraction reject
    /// predecessor edges a frozen central node could never have produced.
    central: Vec<AtomicU8>,
    /// 1 ⇔ node contains at least one query keyword (`v ∈ ∪T_i`).
    /// Immutable after construction; keyword nodes may be *hit* regardless
    /// of their activation level (Sec. IV-B).
    is_keyword: Vec<u8>,
}

impl SearchState {
    /// Allocate state for `n` nodes and the query's keyword groups, and
    /// seed the sources: `M[v][i] = 0` and `FIdentifier[v] = 1` for every
    /// `v ∈ T_i`.
    pub fn new(n: usize, query: &ParsedQuery) -> Self {
        let q = query.num_keywords();
        let mut state = SearchState {
            q,
            n,
            matrix: (0..n * q).map(|_| AtomicU8::new(INFINITE_LEVEL)).collect(),
            frontier: (0..n).map(|_| AtomicU8::new(0)).collect(),
            central: (0..n).map(|_| AtomicU8::new(0)).collect(),
            is_keyword: vec![0; n],
        };
        for (i, group) in query.groups.iter().enumerate() {
            for &v in &group.nodes {
                state.matrix[v.index() * q + i].store(0, Ordering::Relaxed);
                state.frontier[v.index()].store(1, Ordering::Relaxed);
                state.is_keyword[v.index()] = 1;
            }
        }
        state
    }

    /// Number of query keywords `q`.
    #[inline]
    pub fn num_keywords(&self) -> usize {
        self.q
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Hitting level `M[v][i]` (255 = not yet hit).
    #[inline]
    pub fn hit(&self, v: u32, i: usize) -> u8 {
        self.matrix[v as usize * self.q + i].load(Ordering::Relaxed)
    }

    /// Record a hit: `M[v][i] ← level`. Racing writers store the same
    /// value (Theorem V.2), so a plain store suffices.
    #[inline]
    pub fn set_hit(&self, v: u32, i: usize, level: u8) {
        self.matrix[v as usize * self.q + i].store(level, Ordering::Relaxed);
    }

    /// `true` if `v` has been hit by every BFS instance — the Central Node
    /// condition (Def. 3).
    #[inline]
    pub fn row_complete(&self, v: u32) -> bool {
        let base = v as usize * self.q;
        self.matrix[base..base + self.q]
            .iter()
            .all(|m| m.load(Ordering::Relaxed) != INFINITE_LEVEL)
    }

    /// Set `FIdentifier[v] ← 1` (node becomes/stays a frontier).
    #[inline]
    pub fn mark_frontier(&self, v: u32) {
        self.frontier[v as usize].store(1, Ordering::Relaxed);
    }

    /// Read and clear one frontier flag (sequential enqueue).
    #[inline]
    pub fn take_frontier_flag(&self, v: u32) -> bool {
        if self.frontier[v as usize].load(Ordering::Relaxed) == 1 {
            self.frontier[v as usize].store(0, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Read a frontier flag without clearing (parallel compaction reads
    /// first, clears in bulk).
    #[inline]
    pub fn frontier_flag(&self, v: u32) -> bool {
        self.frontier[v as usize].load(Ordering::Relaxed) == 1
    }

    /// Clear one frontier flag.
    #[inline]
    pub fn clear_frontier_flag(&self, v: u32) {
        self.frontier[v as usize].store(0, Ordering::Relaxed);
    }

    /// `true` if `v` was identified as a Central Node.
    #[inline]
    pub fn is_central(&self, v: u32) -> bool {
        self.central[v as usize].load(Ordering::Relaxed) != 0
    }

    /// Mark `v` as a Central Node identified at `depth` (it becomes
    /// unavailable for expansion from this level on).
    #[inline]
    pub fn mark_central(&self, v: u32, depth: u8) {
        debug_assert!(depth < u8::MAX);
        self.central[v as usize].store(depth + 1, Ordering::Relaxed);
    }

    /// The identification depth of `v` if it is a Central Node.
    #[inline]
    pub fn central_depth(&self, v: u32) -> Option<u8> {
        match self.central[v as usize].load(Ordering::Relaxed) {
            0 => None,
            d => Some(d - 1),
        }
    }

    /// `true` if `v` contains at least one query keyword.
    #[inline]
    pub fn is_keyword_node(&self, v: u32) -> bool {
        self.is_keyword[v as usize] == 1
    }

    /// `true` if `v` is a source of instance `i` (`v ∈ T_i ⇔ M[v][i] = 0`).
    #[inline]
    pub fn is_source(&self, v: u32, i: usize) -> bool {
        self.hit(v, i) == 0
    }

    /// Number of keywords contained in `v` (its level-cover class).
    #[inline]
    pub fn keyword_count(&self, v: u32) -> usize {
        (0..self.q).filter(|&i| self.is_source(v, i)).count()
    }

    /// Copy out the matrix (tests/debugging).
    pub fn matrix_snapshot(&self) -> Vec<u8> {
        self.matrix.iter().map(|m| m.load(Ordering::Relaxed)).collect()
    }
}

/// Read-only view of hitting levels, implemented both by the lock-free
/// [`SearchState`] (matrix engines) and by the dynamic-memory engine's
/// recorded state (CPU-Par-d), so that the top-down stage is shared.
pub trait HitLevels {
    /// Number of query keywords `q`.
    fn num_keywords(&self) -> usize;
    /// Hitting level `h_v^i` (255 = never hit).
    fn hit(&self, v: u32, i: usize) -> u8;
    /// `true` if `v` contains at least one query keyword.
    fn is_keyword_node(&self, v: u32) -> bool;
    /// If `v` is a Central Node, the depth at which it was identified —
    /// it stopped expanding there, which extraction must respect.
    fn central_depth(&self, v: u32) -> Option<u8>;
    /// `true` if `v ∈ T_i`.
    fn is_source(&self, v: u32, i: usize) -> bool {
        self.hit(v, i) == 0
    }
    /// Number of query keywords contained in `v`.
    fn keyword_count(&self, v: u32) -> usize {
        (0..self.num_keywords()).filter(|&i| self.is_source(v, i)).count()
    }
}

impl HitLevels for SearchState {
    fn num_keywords(&self) -> usize {
        SearchState::num_keywords(self)
    }
    fn hit(&self, v: u32, i: usize) -> u8 {
        SearchState::hit(self, v, i)
    }
    fn is_keyword_node(&self, v: u32) -> bool {
        SearchState::is_keyword_node(self, v)
    }
    fn central_depth(&self, v: u32) -> Option<u8> {
        SearchState::central_depth(self, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;
    use textindex::InvertedIndex;

    fn state() -> SearchState {
        let mut b = GraphBuilder::new();
        b.add_node("a", "apple fruit");
        b.add_node("b", "banana fruit");
        b.add_node("c", "cherry");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let q = ParsedQuery::parse(&idx, "apple banana fruit");
        SearchState::new(g.num_nodes(), &q)
    }

    #[test]
    fn sources_are_seeded() {
        let s = state();
        assert_eq!(s.num_keywords(), 3);
        // node 0 "apple fruit": source of keyword 0 (apple) and 2 (fruit)
        assert_eq!(s.hit(0, 0), 0);
        assert_eq!(s.hit(0, 1), INFINITE_LEVEL);
        assert_eq!(s.hit(0, 2), 0);
        assert!(s.frontier_flag(0));
        assert!(s.frontier_flag(1));
        assert!(!s.frontier_flag(2), "cherry matches nothing");
        assert!(s.is_keyword_node(0));
        assert!(!s.is_keyword_node(2));
    }

    #[test]
    fn row_complete_requires_every_keyword() {
        let s = state();
        assert!(!s.row_complete(0));
        s.set_hit(0, 1, 2);
        assert!(s.row_complete(0));
    }

    #[test]
    fn take_frontier_flag_clears() {
        let s = state();
        assert!(s.take_frontier_flag(0));
        assert!(!s.take_frontier_flag(0));
        s.mark_frontier(0);
        assert!(s.take_frontier_flag(0));
    }

    #[test]
    fn keyword_counts_reflect_sources() {
        let s = state();
        assert_eq!(s.keyword_count(0), 2); // apple, fruit
        assert_eq!(s.keyword_count(1), 2); // banana, fruit
        assert_eq!(s.keyword_count(2), 0);
    }

    #[test]
    fn central_flags_carry_identification_depth() {
        let s = state();
        assert!(!s.is_central(1));
        assert_eq!(s.central_depth(1), None);
        s.mark_central(1, 3);
        assert!(s.is_central(1));
        assert_eq!(s.central_depth(1), Some(3));
        s.mark_central(2, 0);
        assert_eq!(s.central_depth(2), Some(0));
    }
}
