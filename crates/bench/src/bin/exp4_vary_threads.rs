//! Regenerates the paper's Figs. 9–10 (Exp-4).
fn main() {
    wikisearch_bench::experiments::exp4_threads::run();
}
