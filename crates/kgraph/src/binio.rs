//! Compact binary graph serialization.
//!
//! JSON round-trips (via serde) are convenient but ~10× larger than the
//! in-memory CSR; this module provides a length-prefixed little-endian
//! binary format sized for the multi-million-edge synthetic dumps:
//!
//! ```text
//! magic "KGR1" | u64 n | u64 m_directed | u64 labels
//! label table:  labels × (u32 len, bytes)
//! node table:   n × (u32 key_len, key, u32 text_len, text)
//! edge table:   m × (u32 src, u32 label, u32 dst)
//! ```
//!
//! The CSR, degrees and weights are rebuilt on load through the normal
//! builder path, so a loaded graph is bit-identical in behaviour to the
//! originally built one (property-tested).

use crate::builder::GraphBuilder;
use crate::error::KgraphError;
use crate::graph::KnowledgeGraph;
use crate::ids::LabelId;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"KGR1";

/// Serialize to the binary format.
pub fn to_bytes(g: &KnowledgeGraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + g.num_nodes() * 24 + g.num_directed_edges() * 12);
    buf.put_slice(MAGIC);
    buf.put_u64_le(g.num_nodes() as u64);
    buf.put_u64_le(g.num_directed_edges() as u64);
    buf.put_u64_le(g.num_labels() as u64);
    for l in 0..g.num_labels() {
        put_str(&mut buf, g.label_name(LabelId::from_index(l)));
    }
    for v in g.nodes() {
        put_str(&mut buf, g.node_key(v));
        put_str(&mut buf, g.node_text(v));
    }
    for (s, l, t) in g.directed_edges() {
        buf.put_u32_le(s.0);
        buf.put_u32_le(l.0);
        buf.put_u32_le(t.0);
    }
    buf.freeze()
}

/// Deserialize from the binary format.
pub fn from_bytes(mut data: &[u8]) -> Result<KnowledgeGraph, KgraphError> {
    let err = |m: &str| KgraphError::Parse { line: 0, message: m.to_string() };
    if data.len() < 28 || &data[..4] != MAGIC {
        return Err(err("bad magic"));
    }
    data.advance(4);
    let n = data.get_u64_le() as usize;
    let m = data.get_u64_le() as usize;
    let labels = data.get_u64_le() as usize;
    let mut b = GraphBuilder::with_capacity(n, m);
    let mut label_ids = Vec::with_capacity(labels);
    for _ in 0..labels {
        let name = get_str(&mut data)?;
        label_ids.push(b.label(&name));
    }
    let mut node_ids = Vec::with_capacity(n);
    for _ in 0..n {
        let key = get_str(&mut data)?;
        let text = get_str(&mut data)?;
        node_ids.push(b.add_node(&key, &text));
    }
    for _ in 0..m {
        if data.remaining() < 12 {
            return Err(err("truncated edge table"));
        }
        let s = data.get_u32_le() as usize;
        let l = data.get_u32_le() as usize;
        let t = data.get_u32_le() as usize;
        if s >= n || t >= n || l >= labels {
            return Err(err("edge index out of bounds"));
        }
        b.add_edge_with_label(node_ids[s], node_ids[t], label_ids[l]);
    }
    Ok(b.build())
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(data: &mut &[u8]) -> Result<String, KgraphError> {
    let err = |m: &str| KgraphError::Parse { line: 0, message: m.to_string() };
    if data.remaining() < 4 {
        return Err(err("truncated string length"));
    }
    let len = data.get_u32_le() as usize;
    if data.remaining() < len {
        return Err(err("truncated string body"));
    }
    let s = String::from_utf8(data[..len].to_vec()).map_err(|_| err("invalid utf-8"))?;
    data.advance(len);
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let x = b.add_node("Q1", "XML schema");
        let y = b.add_node("Q2", "RDF");
        let z = b.add_node("Q3", "naïve — unicode ✓");
        b.add_edge(x, y, "related to");
        b.add_edge(y, z, "instance of");
        b.add_edge(z, x, "instance of");
        b.build()
    }

    #[test]
    fn binary_round_trip_preserves_everything() {
        let g = sample();
        let bytes = to_bytes(&g);
        let g2 = from_bytes(&bytes).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_directed_edges(), g.num_directed_edges());
        assert_eq!(g2.num_labels(), g.num_labels());
        for v in g.nodes() {
            assert_eq!(g2.node_key(v), g.node_key(v));
            assert_eq!(g2.node_text(v), g.node_text(v));
            assert_eq!(g2.degree(v), g.degree(v));
            assert!((g2.weight(v) - g.weight(v)).abs() < 1e-6);
        }
        g2.check_invariants().unwrap();
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let g = sample();
        let bin = to_bytes(&g).len();
        let json = serde_json::to_string(&g).unwrap().len();
        assert!(bin * 2 < json, "binary {bin}B should be far below json {json}B");
    }

    #[test]
    fn corrupted_inputs_error_cleanly() {
        let g = sample();
        let bytes = to_bytes(&g);
        assert!(from_bytes(&[]).is_err());
        assert!(from_bytes(b"NOPE").is_err());
        assert!(from_bytes(&bytes[..bytes.len() / 2]).is_err());
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(from_bytes(&bad).is_err());
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = GraphBuilder::new().build();
        let g2 = from_bytes(&to_bytes(&g)).unwrap();
        assert_eq!(g2.num_nodes(), 0);
    }
}
