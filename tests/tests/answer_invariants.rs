//! Property tests of the Central Graph answer model on random graphs:
//! coverage, connectivity, depth bounds, score ordering and the
//! level-cover soundness guarantee.

use central::engine::{KeywordSearchEngine, SeqEngine};
use central::SearchParams;
use kgraph::{GraphBuilder, KnowledgeGraph, NodeId};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet, VecDeque};
use textindex::analyzer::analyze_unique;
use textindex::{InvertedIndex, ParsedQuery};

const WORDS: &[&str] = &["apple", "pear", "plum", "fig", "kiwi", "mango"];

fn graph_strategy() -> impl Strategy<Value = (KnowledgeGraph, String, Vec<u8>)> {
    (3usize..25).prop_flat_map(|nodes| {
        let texts =
            proptest::collection::vec(proptest::collection::vec(0usize..WORDS.len(), 1..3), nodes);
        let edges = proptest::collection::vec((0usize..nodes, 0usize..nodes), 2..50);
        let activation = proptest::collection::vec(0u8..4, nodes);
        let query = proptest::collection::vec(0usize..WORDS.len(), 2..4);
        (texts, edges, activation, query).prop_map(move |(texts, edges, activation, query)| {
            let mut b = GraphBuilder::new();
            for (i, ws) in texts.iter().enumerate() {
                let t: Vec<&str> = ws.iter().map(|&w| WORDS[w]).collect();
                b.add_node(&format!("n{i}"), &t.join(" "));
            }
            for &(s, d) in &edges {
                if s != d {
                    let s = b.node(&format!("n{s}")).unwrap();
                    let d = b.node(&format!("n{d}")).unwrap();
                    b.add_edge(s, d, "rel");
                }
            }
            let q: Vec<&str> = query.iter().map(|&w| WORDS[w]).collect();
            (b.build(), q.join(" "), activation)
        })
    })
}

/// The answer graph must be connected: every node reaches the central
/// node through answer edges (hitting paths all end at the centre).
fn is_connected_to_central(central: NodeId, nodes: &[NodeId], edges: &[(NodeId, NodeId)]) -> bool {
    if nodes.len() <= 1 {
        return true;
    }
    let mut adj: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for &(a, b) in edges {
        adj.entry(a).or_default().push(b);
        adj.entry(b).or_default().push(a);
    }
    let mut seen: HashSet<NodeId> = HashSet::new();
    seen.insert(central);
    let mut queue = VecDeque::from([central]);
    while let Some(v) = queue.pop_front() {
        for &n in adj.get(&v).into_iter().flatten() {
            if seen.insert(n) {
                queue.push_back(n);
            }
        }
    }
    nodes.iter().all(|n| seen.contains(n))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn answers_satisfy_model_invariants((graph, raw, activation) in graph_strategy()) {
        let idx = InvertedIndex::build(&graph);
        let query = ParsedQuery::parse(&idx, &raw);
        let params = SearchParams {
            top_k: 6,
            max_level: 12,
            ..SearchParams::default()
        }
        .with_explicit_activation(activation);
        let out = SeqEngine::new().search(&graph, &query, &params);

        let query_terms: Vec<String> = analyze_unique(&raw);
        for answer in &out.answers {
            // Structural invariants (sortedness, coverage fields, score).
            prop_assert!(answer.check_invariants().is_ok(), "{:?}", answer.check_invariants());
            // Depth bound: no deeper than the level cap.
            prop_assert!(answer.depth <= 12);
            // Connectivity: hitting paths all reach the central node.
            prop_assert!(
                is_connected_to_central(answer.central, &answer.nodes, &answer.edges),
                "answer at {} is disconnected",
                answer.central
            );
            // Every answer edge is a data-graph edge.
            for &(a, b) in &answer.edges {
                let linked = graph.neighbors(a).iter().any(|adj| adj.target() == b);
                prop_assert!(linked, "answer edge ({a},{b}) missing from the data graph");
            }
            // Semantic coverage: for every matched query term, some answer
            // node's text contains it (the level-cover soundness rule).
            for (i, group) in query.groups.iter().enumerate() {
                let covered = answer.keyword_nodes[i]
                    .iter()
                    .any(|&v| analyze_unique(graph.node_text(v)).contains(&group.term));
                prop_assert!(covered, "keyword {:?} uncovered", group.term);
            }
            let _ = &query_terms;
        }

        // Ranking: answers come back in non-decreasing score order.
        for w in out.answers.windows(2) {
            prop_assert!(w[0].score <= w[1].score + 1e-12);
        }

        // top-k bound respected.
        prop_assert!(out.answers.len() <= 6);
    }

    #[test]
    fn containment_dedup_leaves_no_strict_containers((graph, raw, activation) in graph_strategy()) {
        let idx = InvertedIndex::build(&graph);
        let query = ParsedQuery::parse(&idx, &raw);
        let params = SearchParams {
            top_k: 8,
            max_level: 12,
            dedup_contained: true,
            ..SearchParams::default()
        }
        .with_explicit_activation(activation);
        let out = SeqEngine::new().search(&graph, &query, &params);
        for a in &out.answers {
            for b in &out.answers {
                prop_assert!(
                    !a.strictly_contains(b),
                    "{} strictly contains {} after dedup",
                    a.central,
                    b.central
                );
            }
        }
    }
}
