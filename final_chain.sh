#!/bin/bash
set -x
cd /root/repo
cargo build --workspace --release > /root/repo/final_build.log 2>&1
echo "BUILD_EXIT:$?" > /root/repo/final_status.txt
WIKISEARCH_QUERIES=30 cargo run --release -q -p wikisearch-bench --bin run_all > /root/repo/run_all_output.txt 2>&1
echo "RUNALL_EXIT:$?" >> /root/repo/final_status.txt
cargo test --workspace > /root/repo/test_output.txt 2>&1
echo "TEST_EXIT:$?" >> /root/repo/final_status.txt
cargo bench --workspace > /root/repo/bench_output.txt 2>&1
echo "BENCH_EXIT:$?" >> /root/repo/final_status.txt
echo "ALL_DONE" >> /root/repo/final_status.txt
