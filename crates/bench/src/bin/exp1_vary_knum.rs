//! Regenerates the paper's Figs. 6–7 (Exp-1).
fn main() {
    wikisearch_bench::experiments::exp1_knum::run();
}
