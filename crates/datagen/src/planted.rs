//! Effectiveness datasets with planted ground truth — the substitute for
//! the paper's manual relevance judging (Figs. 11–12, Table V).
//!
//! The paper's effectiveness analysis identifies two concrete failure
//! modes of GST-style baselines:
//!
//! 1. **phrase splitting** — BANKS-II's score has no keyword
//!    co-occurrence term, so for Q4 it returns trees where "statistical",
//!    "relational" and "learning" come from three unrelated nodes
//!    ("Phrases fail to appear together, which results in irrelevant
//!    answers");
//! 2. **meaningless connectors** — answers glued together by generic
//!    summary nodes (the paper's `human` / `data mining` shortcut
//!    discussion, and Q11's irrelevant article reused by 16 of the top-20
//!    trees).
//!
//! We make both measurable. Per Table V query the dataset plants:
//!
//! * **relevant structures** — an anchor entity whose neighborhood keeps
//!   every phrase inside a single node. For queries containing multi-word
//!   phrases, the phrase nodes sit at distance 2 from the anchor
//!   (phrase-exact nodes are rare and specific in a real KB); for
//!   all-single-word queries they attach directly (tight relevant answers
//!   are abundant for such queries).
//! * **distractor stars** — a `topic directory` centre node per
//!   structure, boosted into a summary node by a flood of same-label
//!   filler in-edges, with one satellite per *individual* query word.
//!   A tree rooted at the centre covers every keyword at minimal cost —
//!   exactly the cheap-but-wrong answer a co-occurrence-blind tree score
//!   loves — while the centre's degree-of-summary weight makes the
//!   Central Graph engines (at small α) activate it too late to matter.
//!
//! The [`PlantedDataset::judge`] function encodes the human criterion:
//! every phrase must co-occur inside some answer node, and the answer
//! must not be glued together by a planted distractor centre.

use crate::synthetic::SyntheticConfig;
use kgraph::{GraphBuilder, KnowledgeGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use textindex::analyzer::analyze_unique;

/// One effectiveness query with its phrase structure.
#[derive(Clone, Debug)]
pub struct PlantedQuery {
    /// Query id (`Q1`…`Q11`, matching Table V).
    pub id: &'static str,
    /// The raw keyword query, exactly as in the paper's Table V.
    pub raw: &'static str,
    /// The phrases a relevant answer must keep together (each inner list
    /// is one phrase's words).
    pub phrases: &'static [&'static [&'static str]],
}

impl PlantedQuery {
    /// `true` if the query contains a multi-word phrase (these are the
    /// queries whose relevant structures are rarer/deeper).
    pub fn has_multiword_phrase(&self) -> bool {
        self.phrases.iter().any(|p| p.len() > 1)
    }
}

/// The Table V query set with phrase groupings (the groupings follow the
/// paper's own discussion of which phrases must co-occur).
pub static TABLE_V_QUERIES: &[PlantedQuery] = &[
    PlantedQuery {
        id: "Q1",
        raw: "XML relational search",
        phrases: &[&["xml"], &["relational"], &["search"]],
    },
    PlantedQuery {
        id: "Q2",
        raw: "database indexing ranking search",
        phrases: &[&["database", "indexing"], &["ranking"], &["search"]],
    },
    PlantedQuery {
        id: "Q3",
        raw: "Bayesian inference Markov network",
        phrases: &[&["bayesian", "inference"], &["markov", "network"]],
    },
    PlantedQuery {
        id: "Q4",
        raw: "statistical relational learning inference",
        phrases: &[&["statistical", "relational", "learning"], &["inference"]],
    },
    PlantedQuery {
        id: "Q5",
        raw: "SQL RDF knowledge base",
        phrases: &[&["sql"], &["rdf"], &["knowledge", "base"]],
    },
    PlantedQuery {
        id: "Q6",
        raw: "supervised learning gradient descent machine translation",
        phrases: &[
            &["supervised", "learning"],
            &["gradient", "descent"],
            &["machine", "translation"],
        ],
    },
    PlantedQuery {
        id: "Q7",
        raw: "transfer learning auxiliary data retrieval text classification",
        phrases: &[
            &["transfer", "learning"],
            &["auxiliary", "data"],
            &["retrieval"],
            &["text", "classification"],
        ],
    },
    PlantedQuery {
        id: "Q8",
        raw: "XML RDF knowledge base sharing",
        phrases: &[&["xml"], &["rdf"], &["knowledge", "base"], &["sharing"]],
    },
    PlantedQuery {
        id: "Q9",
        raw: "network mining medicine retrieval technique",
        phrases: &[&["network", "mining"], &["medicine", "retrieval"], &["technique"]],
    },
    PlantedQuery {
        id: "Q10",
        raw: "natural language processing machine learning",
        phrases: &[&["natural", "language", "processing"], &["machine", "learning"]],
    },
    PlantedQuery {
        id: "Q11",
        raw: "Wikidata Freebase Yahoo Neo4j SPARQL",
        phrases: &[&["wikidata"], &["freebase"], &["yahoo"], &["neo4j"], &["sparql"]],
    },
];

/// An effectiveness dataset: a background KB with, per query, planted
/// relevant structures and distractor stars.
pub struct PlantedDataset {
    /// The graph (background + planted structures).
    pub graph: KnowledgeGraph,
    /// The Table V queries.
    pub queries: &'static [PlantedQuery],
    /// Planted distractor centres — meaningless connectors; any answer
    /// glued together by one is irrelevant.
    pub distractor_centers: HashSet<NodeId>,
}

impl PlantedDataset {
    /// Build with `relevant_per_query` planted relevant structures and
    /// `distractors_per_query` distractor stars on top of a small
    /// synthetic background.
    pub fn build(seed: u64, relevant_per_query: usize, distractors_per_query: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Background KB, re-interned so planted structures share its id
        // space.
        let background = SyntheticConfig::tiny(seed).generate().graph;
        let mut b = GraphBuilder::with_capacity(
            background.num_nodes() + 8000,
            background.num_directed_edges() + 24_000,
        );
        // Re-intern the background, trimming any label that would cover a
        // whole Table V query on its own: single-node co-occurrence
        // answers would saturate every engine at 100% precision (the
        // paper's Q10 effect) and mask the phrase-splitting signal.
        let query_terms: Vec<HashSet<String>> = TABLE_V_QUERIES
            .iter()
            .map(|q| analyze_unique(q.raw).into_iter().collect())
            .collect();
        for v in background.nodes() {
            let mut text = background.node_text(v).to_string();
            loop {
                let terms: HashSet<String> = analyze_unique(&text).into_iter().collect();
                let covers = query_terms.iter().any(|qs| qs.is_subset(&terms));
                if !covers {
                    break;
                }
                let words: Vec<&str> = text.split_whitespace().collect();
                if words.len() <= 1 {
                    break;
                }
                text = words[..words.len() - 1].join(" ");
            }
            b.add_node(background.node_key(v), &text);
        }
        for (s, l, t) in background.directed_edges() {
            let label = background.label_name(l).to_string();
            let (si, ti) =
                (b.node(background.node_key(s)).unwrap(), b.node(background.node_key(t)).unwrap());
            b.add_edge(si, ti, &label);
        }
        let n_background = b.num_nodes();
        let mut centers: Vec<NodeId> = Vec::new();

        for q in TABLE_V_QUERIES {
            let deep = q.has_multiword_phrase();
            // Relevant structures.
            for r in 0..relevant_per_query {
                // The anchor's label is deliberately keyword-free: the
                // relevance of the structure lives in its phrase nodes,
                // not in a giveaway co-occurrence label.
                let anchor = b.add_node(
                    &format!("{}-rel{r}-anchor", q.id),
                    &format!("proceedings volume {r}"),
                );
                for (pi, phrase) in q.phrases.iter().enumerate() {
                    let pnode = b.add_node(
                        &format!("{}-rel{r}-p{pi}", q.id),
                        &format!("{} method", phrase.join(" ")),
                    );
                    if deep {
                        // Phrase-exact nodes are rare and specific: reach
                        // the anchor through a section node.
                        let section = b.add_node(
                            &format!("{}-rel{r}-s{pi}", q.id),
                            &format!("chapter {pi} of volume {r}"),
                        );
                        b.add_edge(pnode, section, "part of");
                        b.add_edge(section, anchor, "part of");
                    } else {
                        b.add_edge(pnode, anchor, "main subject");
                    }
                }
                let bg = NodeId(rng.random_range(0..n_background) as u32);
                b.add_edge(anchor, bg, "cites work");
            }
            // Distractor stars: a summary-weighted centre with one
            // satellite per individual query word.
            let all_words: Vec<&str> = q.phrases.iter().flat_map(|p| p.iter().copied()).collect();
            for d in 0..distractors_per_query {
                let center =
                    b.add_node(&format!("{}-dis{d}-center", q.id), &format!("topic directory {d}"));
                centers.push(center);
                // Same-label filler flood ⇒ high degree of summary.
                for f in 0..25 {
                    let filler = b.add_node(
                        &format!("{}-dis{d}-f{f}", q.id),
                        &format!("catalogue entry {d} {f}"),
                    );
                    b.add_edge(filler, center, "listed in");
                }
                for (wi, word) in all_words.iter().enumerate() {
                    let node = b.add_node(
                        &format!("{}-dis{d}-w{wi}", q.id),
                        &format!("{word} miscellany {d}"),
                    );
                    b.add_edge(node, center, "listed in");
                }
                let bg = NodeId(rng.random_range(0..n_background) as u32);
                b.add_edge(center, bg, "listed in");
            }
        }
        let graph = b.build();
        PlantedDataset {
            graph,
            queries: TABLE_V_QUERIES,
            distractor_centers: centers.into_iter().collect(),
        }
    }

    /// Relevance judgement, standing in for the paper's manual assessment:
    /// an answer is relevant iff (a) for **every** phrase there is a
    /// single answer node containing all of the phrase's (stemmed) terms,
    /// and (b) the answer is not glued together by a planted distractor
    /// centre (a meaningless connector).
    pub fn judge(&self, query: &PlantedQuery, answer_nodes: &[NodeId]) -> bool {
        if answer_nodes.iter().any(|v| self.distractor_centers.contains(v)) {
            return false;
        }
        query.phrases.iter().all(|phrase| {
            let terms: Vec<String> = analyze_unique(&phrase.join(" "));
            answer_nodes.iter().any(|&v| {
                let node_terms = analyze_unique(self.graph.node_text(v));
                terms.iter().all(|t| node_terms.contains(t))
            })
        })
    }

    /// The planted-relevant anchor nodes of one query (tests/debugging).
    pub fn relevant_anchors(&self, q: &PlantedQuery) -> Vec<NodeId> {
        let prefix = format!("{}-rel", q.id);
        self.graph
            .nodes()
            .filter(|&v| {
                let key = self.graph.node_key(v);
                key.starts_with(&prefix) && key.ends_with("anchor")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_has_eleven_queries() {
        assert_eq!(TABLE_V_QUERIES.len(), 11);
        assert!(TABLE_V_QUERIES.iter().all(|q| !q.phrases.is_empty()));
        assert!(TABLE_V_QUERIES[3].has_multiword_phrase()); // Q4
        assert!(!TABLE_V_QUERIES[0].has_multiword_phrase()); // Q1
    }

    #[test]
    fn dataset_builds_and_is_valid() {
        let ds = PlantedDataset::build(1, 3, 4);
        ds.graph.check_invariants().unwrap();
        assert!(ds.graph.num_nodes() > 812, "background plus planted nodes");
        for q in ds.queries {
            assert_eq!(ds.relevant_anchors(q).len(), 3, "{}", q.id);
        }
        assert_eq!(ds.distractor_centers.len(), 4 * 11);
    }

    #[test]
    fn judge_accepts_phrase_preserving_answers() {
        let ds = PlantedDataset::build(2, 2, 2);
        let q4 = &ds.queries[3];
        assert_eq!(q4.id, "Q4");
        // A relevant structure: anchor + sections + phrase nodes (Q4 is a
        // deep/multi-word-phrase query).
        let anchor = ds.relevant_anchors(q4)[0];
        let mut nodes = vec![anchor];
        for adj in ds.graph.neighbors(anchor) {
            nodes.push(adj.target());
            for adj2 in ds.graph.neighbors(adj.target()) {
                nodes.push(adj2.target());
            }
        }
        assert!(ds.judge(q4, &nodes));
    }

    #[test]
    fn judge_rejects_phrase_splitting_and_center_glued_answers() {
        let ds = PlantedDataset::build(3, 2, 2);
        let q4 = &ds.queries[3];
        // Distractor star: every word present, but split, and glued by a
        // centre — irrelevant on both criteria.
        let center = ds.graph.find_node_by_key("Q4-dis0-center").expect("distractor centre exists");
        let mut nodes: Vec<NodeId> = ds
            .graph
            .nodes()
            .filter(|&v| ds.graph.node_key(v).starts_with("Q4-dis0-w"))
            .collect();
        assert!(!ds.judge(q4, &nodes), "split phrases must be irrelevant");
        nodes.push(center);
        assert!(!ds.judge(q4, &nodes), "centre-glued answers must be irrelevant");
    }

    #[test]
    fn distractor_centers_are_heavy_summary_nodes() {
        let ds = PlantedDataset::build(4, 2, 3);
        let center = ds.graph.find_node_by_key("Q1-dis0-center").unwrap();
        assert!(ds.graph.in_degree(center) >= 25);
        assert!(
            ds.graph.weight(center) > 0.5,
            "centre weight {} should be summary-grade",
            ds.graph.weight(center)
        );
    }

    #[test]
    fn deep_queries_place_phrase_nodes_at_distance_two() {
        let ds = PlantedDataset::build(5, 1, 1);
        let q4 = &ds.queries[3]; // deep
        let q1 = &ds.queries[0]; // tight
        let a4 = ds.relevant_anchors(q4)[0];
        let a1 = ds.relevant_anchors(q1)[0];
        // Q4 anchor's graph neighbors are section nodes, not phrase nodes.
        let n4: Vec<&str> =
            ds.graph.neighbors(a4).iter().map(|a| ds.graph.node_key(a.target())).collect();
        assert!(n4.iter().any(|k| k.contains("-s")), "sections expected: {n4:?}");
        // Q1 anchor connects phrase nodes directly.
        let n1: Vec<&str> =
            ds.graph.neighbors(a1).iter().map(|a| ds.graph.node_key(a.target())).collect();
        assert!(n1.iter().any(|k| k.contains("-p")), "phrase nodes expected: {n1:?}");
    }
}
