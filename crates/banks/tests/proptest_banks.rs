//! Property tests of the BANKS baselines on random graphs: tree answers
//! are well-formed, cover every keyword group, their scores equal the sum
//! of the path costs, and BANKS-I (Dijkstra order) never reports a worse
//! best score than BANKS-II (activation order) when both run to
//! completion.

use banks::expansion::edge_cost;
use banks::{BanksI, BanksII, BanksParams};
use kgraph::{GraphBuilder, KnowledgeGraph};
use proptest::prelude::*;
use textindex::{InvertedIndex, ParsedQuery};

const WORDS: &[&str] = &["ant", "bee", "cat", "dog", "elk", "fox"];

fn arb_graph() -> impl Strategy<Value = (KnowledgeGraph, String)> {
    (2usize..20).prop_flat_map(|nodes| {
        let texts =
            proptest::collection::vec(proptest::collection::vec(0usize..WORDS.len(), 1..3), nodes);
        let edges = proptest::collection::vec((0usize..nodes, 0usize..nodes), 1..40);
        let query = proptest::collection::vec(0usize..WORDS.len(), 2..4);
        (texts, edges, query).prop_map(move |(texts, edges, query)| {
            let mut b = GraphBuilder::new();
            for (i, ws) in texts.iter().enumerate() {
                let t: Vec<&str> = ws.iter().map(|&w| WORDS[w]).collect();
                b.add_node(&format!("n{i}"), &t.join(" "));
            }
            for &(s, d) in &edges {
                if s != d {
                    let s = b.node(&format!("n{s}")).unwrap();
                    let d = b.node(&format!("n{d}")).unwrap();
                    b.add_edge(s, d, "rel");
                }
            }
            let q: Vec<&str> = query.iter().map(|&w| WORDS[w]).collect();
            (b.build(), q.join(" "))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 80, ..ProptestConfig::default() })]

    #[test]
    fn tree_answers_are_well_formed((graph, raw) in arb_graph()) {
        let idx = InvertedIndex::build(&graph);
        let query = ParsedQuery::parse(&idx, &raw);
        prop_assume!(!query.is_empty());
        let params = BanksParams::default().with_top_k(5);
        for out in [
            BanksI::new().search(&graph, &query, &params),
            BanksII::new().search(&graph, &query, &params),
        ] {
            for tree in &out.answers {
                prop_assert!(tree.check_invariants().is_ok(), "{:?}", tree.check_invariants());
                prop_assert_eq!(tree.paths.len(), query.num_keywords());
                // Each path's leaf belongs to its keyword group.
                for (i, path) in tree.paths.iter().enumerate() {
                    let leaf = *path.last().unwrap();
                    prop_assert!(
                        query.groups[i].nodes.contains(&leaf),
                        "path {i} leaf {leaf} not in T_{i}"
                    );
                    // Consecutive path nodes are graph neighbors.
                    for w in path.windows(2) {
                        let linked = graph
                            .neighbors(w[0])
                            .iter()
                            .any(|a| a.target() == w[1]);
                        prop_assert!(linked, "path edge {}-{} missing", w[0], w[1]);
                    }
                }
                // Score equals the sum of path costs.
                // Paths run root -> leaf while distances accumulate from
                // the leaf (source) outwards, so each step's cost is the
                // edge cost into the node *farther* from the source, w[0].
                let recomputed: f64 = tree
                    .paths
                    .iter()
                    .map(|p| {
                        p.windows(2)
                            .map(|w| edge_cost(&graph, w[0]) as f64)
                            .sum::<f64>()
                    })
                    .sum();
                prop_assert!(
                    (tree.score - recomputed).abs() < 1e-3,
                    "score {} vs recomputed {recomputed}",
                    tree.score
                );
            }
            // Ranked output.
            for w in out.answers.windows(2) {
                prop_assert!(w[0].score <= w[1].score + 1e-6);
            }
        }
    }

    #[test]
    fn banks1_best_score_never_worse_than_banks2((graph, raw) in arb_graph()) {
        let idx = InvertedIndex::build(&graph);
        let query = ParsedQuery::parse(&idx, &raw);
        prop_assume!(!query.is_empty());
        let params = BanksParams::default().with_top_k(3);
        let b1 = BanksI::new().search(&graph, &query, &params);
        let b2 = BanksII::new().search(&graph, &query, &params);
        // Both find answers or neither does (connectivity is order
        // independent).
        prop_assert_eq!(b1.answers.is_empty(), b2.answers.is_empty());
        if let (Some(x), Some(y)) = (b1.answers.first(), b2.answers.first()) {
            prop_assert!(x.score <= y.score + 1e-3,
                "distance-ordered best {} worse than activation-ordered best {}",
                x.score, y.score);
        }
    }
}
