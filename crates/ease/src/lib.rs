//! # ease — the EASE r-radius Steiner graph baseline
//!
//! EASE (Li et al., *An Effective 3-in-1 Keyword Search Method*,
//! SIGMOD'08) answers keyword queries with **r-radius Steiner graphs**:
//! inside a precomputed *maximal* r-radius subgraph, the Steiner graph
//! connecting the query's content nodes. The reproduced paper raises two
//! criticisms (Sec. II), both of which this crate makes concrete:
//!
//! 1. *"EASE is not scalable for large graphs"* — [`RadiusIndex::build`]
//!    materializes every node's r-ball and the maximality filter compares
//!    them pairwise; its build time and size are measured by the tests
//!    and grow with ball volume exactly as on hub-heavy KBs.
//! 2. *"EASE may miss some highly ranked r-radius Steiner Graphs if they
//!    are included in some other Steiner Graphs with larger radius"*
//!    (Kargar & An's observation) — with maximality filtering on, an
//!    answer whose natural ball is subsumed by a bigger ball is only
//!    reported from the bigger ball's center, with a worse (larger)
//!    extraction; the `missed answers` test demonstrates it.

#![warn(missing_docs)]

pub mod index;
pub mod search;

pub use index::RadiusIndex;
pub use search::{EaseAnswer, EaseSearch};
