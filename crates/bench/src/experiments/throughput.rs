//! Service-level throughput: queries/sec vs number of concurrent
//! clients against **one** shared `WikiSearch` engine.
//!
//! The paper's efficiency experiments (Exp-1..4) measure one query at a
//! time; its WikiSearch deployment, however, is a hosted multi-user
//! service. This experiment measures that axis: `C` clients — each a
//! thread holding the same `Arc<WikiSearch>` — fire `Q` queries apiece
//! as fast as the engine answers them, for `C` in `WIKISEARCH_CLIENTS`
//! (default `1,2,4,8`). Because every search checks its state out of the
//! engine's session pool instead of serializing on a process-wide lock,
//! queries/sec should rise with the client count until the cores are
//! saturated; the pre-pool architecture flatlines at the 1-client rate.
//!
//! Two backends are swept: the sequential reference (pure inter-query
//! scaling — every added client is new work on a new core) and CPU-Par
//! with 2 threads (inter-query concurrency composed with intra-query
//! parallelism, the `serve --workers N` configuration).
//!
//! A third sweep runs the **shards axis**: the same volley through the
//! in-process scatter-gather coordinator (`--shards {1,2,4}`) at equal
//! worker counts, reporting qps and p95 relative to the unsharded
//! baseline (written to `BENCH_shards.json`).

use crate::{client_sweep, queries_per_point};
use central::{HistogramSnapshot, LogHistogram};
use datagen::synthetic::SyntheticConfig;
use datagen::QueryWorkload;
use eval::runner::ExperimentSink;
use eval::Table;
use serde_json::json;
use std::sync::Arc;
use std::time::Instant;
use wikisearch_engine::{Backend, WikiSearch};

/// One measured datapoint.
struct Point {
    backend: &'static str,
    clients: usize,
    total_queries: usize,
    wall_ms: f64,
    qps: f64,
    sessions: usize,
    /// Per-query latency distribution across all clients of the volley.
    latency_us: HistogramSnapshot,
}

/// Run `clients` threads × `per_client` queries against `ws`, returning
/// the wall-clock of the whole volley and the per-query latency
/// histogram (every client records into one shared lock-free
/// `LogHistogram`, so tail percentiles cover the whole volley, not one
/// lucky thread).
fn volley(
    ws: &Arc<WikiSearch>,
    queries: &[String],
    clients: usize,
    per_client: usize,
) -> (f64, HistogramSnapshot) {
    let latency = LogHistogram::new();
    let t = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let ws = Arc::clone(ws);
            let latency = &latency;
            scope.spawn(move || {
                // Each client walks the shared query list from its own
                // offset, so concurrent clients are rarely on the same
                // query at the same moment.
                for j in 0..per_client {
                    let q = &queries[(client + j) % queries.len()];
                    let started = Instant::now();
                    let result = ws.search(q);
                    let us = started.elapsed().as_micros();
                    latency.record(u64::try_from(us).unwrap_or(u64::MAX));
                    std::hint::black_box(result.answers.len());
                }
            });
        }
    });
    (t.elapsed().as_secs_f64(), latency.snapshot())
}

/// Run the throughput sweep.
pub fn run() -> serde_json::Value {
    let sweep = client_sweep();
    let per_client = queries_per_point().max(10);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("== throughput: C concurrent clients x {per_client} queries, one shared engine ==");
    println!("   clients {sweep:?} | dataset wiki2017-sim | {cores} core(s) available");
    if cores < 2 {
        println!("   note: single-core runner — expect flat qps; scaling needs >= 2 cores");
    }

    let ds = SyntheticConfig::wiki2017_sim().generate();
    let name = ds.config.name.clone();
    let mut workload = QueryWorkload::new(6021);
    let queries: Vec<String> = workload.batch(4, 16);

    let mut points: Vec<Point> = Vec::new();
    for (backend_name, backend) in
        [("Seq", Backend::Sequential), ("CPU-Par(2)", Backend::ParCpu(2))]
    {
        let ws = Arc::new(WikiSearch::build_with(ds.graph.clone(), backend));
        // Warmup: populate the session pool up to the largest client
        // count so measured volleys are allocation-free.
        let max_clients = sweep.iter().copied().max().unwrap_or(1);
        volley(&ws, &queries, max_clients, 2);
        for &clients in &sweep {
            let (wall, latency_us) = volley(&ws, &queries, clients, per_client);
            let total_queries = clients * per_client;
            points.push(Point {
                backend: backend_name,
                clients,
                total_queries,
                wall_ms: wall * 1e3,
                qps: total_queries as f64 / wall,
                sessions: ws.session_pool().sessions_created(),
                latency_us,
            });
        }
    }

    let mut table = Table::new(vec![
        "backend", "clients", "queries", "wall(ms)", "qps", "p50(ms)", "p95(ms)", "p99(ms)",
        "sessions",
    ]);
    let ms = |us: u64| us as f64 / 1e3;
    for p in &points {
        table.row(vec![
            p.backend.to_string(),
            p.clients.to_string(),
            p.total_queries.to_string(),
            format!("{:.1}", p.wall_ms),
            format!("{:.1}", p.qps),
            format!("{:.2}", ms(p.latency_us.percentile(0.50))),
            format!("{:.2}", ms(p.latency_us.percentile(0.95))),
            format!("{:.2}", ms(p.latency_us.percentile(0.99))),
            p.sessions.to_string(),
        ]);
    }
    table.print();
    for backend in ["Seq", "CPU-Par(2)"] {
        let qps_at = |c: usize| {
            points.iter().find(|p| p.backend == backend && p.clients == c).map(|p| p.qps)
        };
        if let (Some(one), Some(four)) = (qps_at(1), qps_at(4)) {
            println!("{backend}: qps x{:.2} going from 1 -> 4 clients", four / one);
        }
    }

    let _ = run_shards(&ds.graph, &name, &queries, per_client, cores);

    let record = json!({
        "experiment": "throughput",
        "dataset": name,
        "cores": cores,
        "queries_per_client": per_client,
        "points": points
            .iter()
            .map(|p| {
                json!({
                    "backend": p.backend,
                    "clients": p.clients,
                    "total_queries": p.total_queries,
                    "wall_ms": p.wall_ms,
                    "qps": p.qps,
                    "sessions_created": p.sessions,
                    "latency_p50_ms": ms(p.latency_us.percentile(0.50)),
                    "latency_p95_ms": ms(p.latency_us.percentile(0.95)),
                    "latency_p99_ms": ms(p.latency_us.percentile(0.99)),
                    "latency_mean_ms": p.latency_us.mean() / 1e3,
                })
            })
            .collect::<Vec<_>>(),
    });
    if let Ok(path) = ExperimentSink::new().write("throughput", &record) {
        println!("json: {}", path.display());
    }
    record
}

/// The shards axis in [`SHARD_SWEEP`].
const SHARD_SWEEP: [usize; 3] = [1, 2, 4];

/// The shards axis: the same client volley through the scatter-gather
/// coordinator at every shard count, with **equal worker counts** —
/// CPU-Par(2) kernels and 4 concurrent clients in every configuration,
/// so the only variable is how many shards the graph is cut into.
/// `shards = 1` is the monolithic baseline (the facade serves it without
/// a coordinator); each point reports its qps and p95 relative to that
/// baseline. Answers are byte-identical across the axis (pinned by the
/// shard-invariance suite), so this measures pure coordination overhead
/// vs. partitioned-locality gain. Writes `BENCH_shards.json`.
fn run_shards(
    graph: &kgraph::KnowledgeGraph,
    dataset: &str,
    queries: &[String],
    per_client: usize,
    cores: usize,
) -> serde_json::Value {
    let clients = 4usize;
    println!(
        "== throughput/shards: {clients} clients x {per_client} queries, \
         CPU-Par(2), shards {SHARD_SWEEP:?} =="
    );

    struct ShardPoint {
        shards: usize,
        wall_ms: f64,
        qps: f64,
        latency_us: HistogramSnapshot,
        rounds: u64,
        notifications: u64,
    }
    let mut points: Vec<ShardPoint> = Vec::new();
    for &shards in &SHARD_SWEEP {
        let ws = Arc::new(WikiSearch::open_sharded(graph.clone(), Backend::ParCpu(2), shards));
        volley(&ws, queries, clients, 2); // warmup: pools + page cache
        let (wall, latency_us) = volley(&ws, queries, clients, per_client);
        let coordinator = ws.shard_stats();
        points.push(ShardPoint {
            shards,
            wall_ms: wall * 1e3,
            qps: (clients * per_client) as f64 / wall,
            latency_us,
            rounds: coordinator.as_ref().map_or(0, |s| s.rounds),
            notifications: coordinator.as_ref().map_or(0, |s| s.notifications),
        });
    }

    let ms = |us: u64| us as f64 / 1e3;
    let base_qps = points[0].qps;
    let base_p95 = ms(points[0].latency_us.percentile(0.95));
    let mut table = Table::new(vec![
        "shards",
        "wall(ms)",
        "qps",
        "qps/base",
        "p50(ms)",
        "p95(ms)",
        "p95/base",
        "rounds",
        "notifications",
    ]);
    for p in &points {
        let p95 = ms(p.latency_us.percentile(0.95));
        table.row(vec![
            p.shards.to_string(),
            format!("{:.1}", p.wall_ms),
            format!("{:.1}", p.qps),
            format!("{:.2}", p.qps / base_qps),
            format!("{:.2}", ms(p.latency_us.percentile(0.50))),
            format!("{:.2}", p95),
            if base_p95 > 0.0 {
                format!("{:.2}", p95 / base_p95)
            } else {
                "-".into()
            },
            p.rounds.to_string(),
            p.notifications.to_string(),
        ]);
    }
    table.print();

    let record = json!({
        "experiment": "shards",
        "dataset": dataset,
        "cores": cores,
        "backend": "CPU-Par(2)",
        "clients": clients,
        "queries_per_client": per_client,
        "points": points
            .iter()
            .map(|p| {
                let p95 = ms(p.latency_us.percentile(0.95));
                json!({
                    "shards": p.shards,
                    "wall_ms": p.wall_ms,
                    "qps": p.qps,
                    "qps_vs_unsharded": p.qps / base_qps,
                    "latency_p50_ms": ms(p.latency_us.percentile(0.50)),
                    "latency_p95_ms": p95,
                    "p95_vs_unsharded": if base_p95 > 0.0 { p95 / base_p95 } else { 1.0 },
                    "latency_p99_ms": ms(p.latency_us.percentile(0.99)),
                    "exchange_rounds": p.rounds,
                    "boundary_notifications": p.notifications,
                })
            })
            .collect::<Vec<_>>(),
    });
    if let Ok(path) = ExperimentSink::new().write("BENCH_shards", &record) {
        println!("json: {}", path.display());
    }
    record
}
