//! The α knob in action — the paper's `data mining` story (Sec. IV-C).
//!
//! "The topic node data mining has over 1000 in-edges and only 11
//! different in-edge labels … users can use a larger α to retrieve more
//! nodes with higher degree of summary."
//!
//! Two concrete, reproducible effects of α are shown here:
//!
//! 1. the Penalty-and-Reward mapping (Eqs. 3–5): a fixed summary node's
//!    minimum activation level falls monotonically as α rises;
//! 2. the search consequence: when a summary node is the connector
//!    between keywords, the answer it anchors exists at a smaller depth
//!    under a larger α — in a full KB (where the rest of the graph
//!    supplies `k` answers at the average-distance depth) this is exactly
//!    what moves such answers into, or out of, the top-(k,d) pool.
//!
//! ```text
//! cargo run -p wikisearch-examples --bin alpha_tuning
//! ```

use central::activation::ActivationConfig;
use kgraph::GraphBuilder;
use wikisearch_engine::{Backend, WikiSearch};

fn main() {
    let mut b = GraphBuilder::new();

    // A giant unrelated hub pins the weight normalization (like `human`
    // in Wikidata: the maximum degree of summary).
    let mega = b.add_node("H", "popular encyclopedia topic");
    for i in 0..400 {
        let p = b.add_node(&format!("h{i}"), &format!("encyclopedia entry {i}"));
        b.add_edge(p, mega, "instance of");
    }

    // The `data mining` topic node: a handful of same-labeled in-edges —
    // the "many edges, few labels" summary signature, scaled down.
    let topic = b.add_node("T", "data mining");
    for i in 0..5 {
        let p = b.add_node(&format!("t{i}"), &format!("archive record {i}"));
        b.add_edge(p, topic, "main topic");
    }
    // The topic node is the only connector between the two keywords.
    let k1 = b.add_node("K1", "clustering analysis paper");
    let k2 = b.add_node("K2", "retrieval evaluation paper");
    b.add_edge(k1, topic, "main topic");
    b.add_edge(k2, topic, "main topic");

    let graph = b.build();
    let w_topic = graph.weight(topic);
    println!(
        "'data mining': {} same-labeled in-edges, normalized degree-of-summary w = {w_topic:.2}\n",
        graph.in_degree(topic)
    );

    // Effect 1: the activation mapping (A fixed at 3, as a stand-in for
    // the dataset's sampled average distance).
    const A: f64 = 3.0;
    println!("minimum activation level of 'data mining' (Eqs. 3-5, A = {A}):");
    let mut levels = Vec::new();
    for alpha in [0.05f32, 0.1, 0.2, 0.4] {
        let cfg = ActivationConfig { alpha, average_distance: A };
        let a = cfg.level_for_weight(w_topic);
        println!("  α = {alpha:<5} ->  a = {a}");
        levels.push(a);
    }
    assert!(levels.windows(2).all(|w| w[1] <= w[0]), "activation must fall as α rises");
    assert!(levels[0] > levels[3], "the α sweep must actually move the level");

    // Effect 2: the answer through the summary node gets shallower.
    let ws = WikiSearch::build_with(graph, Backend::Sequential);
    let query = "clustering retrieval";
    println!("\nsearch {query:?} (the topic node is the only connector):");
    let mut depths = Vec::new();
    for alpha in [0.05f32, 0.4] {
        let params = ws.params().clone().with_alpha(alpha).with_average_distance(A).with_top_k(1);
        let result = ws.search_with(query, &params);
        let best = result.answers.first().expect("the connector answer exists");
        assert!(best.contains_node(topic));
        println!(
            "  α = {alpha:<5} ->  answer depth {} (central: {})",
            best.depth,
            ws.graph().node_text(best.central)
        );
        depths.push(best.depth);
    }
    assert!(depths[1] < depths[0], "larger α must shallow the summary answer");

    println!(
        "\nAt α = 0.05 the summary connector only becomes reachable around depth\n\
         {}, past the dataset's average distance — in a real KB, other answers\n\
         fill the top-(k,d) pool first and the summary node stays out of the\n\
         top answers. At α = 0.4 it is reachable at depth {}, inside the pool —\n\
         the paper's 'data mining appears when α = 0.4' effect.",
        depths[0], depths[1]
    );
}
