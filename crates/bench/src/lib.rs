//! # wikisearch-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table2_datasets` | Table II (dataset stats + sampled `A`) |
//! | `fig3_activation_dist` | Fig. 3 (activation-level distribution per α) |
//! | `exp1_vary_knum` | Figs. 6–7 (per-phase time vs `Knum`, + BANKS-II) |
//! | `exp2_vary_topk` | Fig. 8 row 1 (time vs `Topk`) |
//! | `exp3_vary_alpha` | Fig. 8 row 2 (time vs α) |
//! | `exp4_vary_threads` | Figs. 9–10 (per-phase time vs `Tnum`) |
//! | `table4_storage` | Table IV (pre/running storage) |
//! | `throughput` | service-level: queries/sec vs concurrent clients on one engine |
//! | `cache_hit_rate` | service-level: result-cache qps speedup + hit rate on a Zipf-skewed stream |
//! | `cold_start` | storage-level: open-to-first-answer latency, mmap snapshot vs in-RAM build (`BENCH_coldstart.json`) |
//! | `effectiveness` | Figs. 11–12 + Table V (top-k precision, kwf) |
//! | `run_all` | everything above in sequence |
//! | `blinks_index_cost` | appendix: the BLINKS feasibility argument, measured |
//! | `rclique_sensitivity` | appendix: the r-clique `R`/`r` parameter trap, measured |
//! | `gpu_projection` | appendix: bandwidth projection onto the paper's hardware |
//!
//! Every binary prints paper-style tables and writes a JSON record under
//! `target/experiments/`. Environment knobs:
//!
//! * `WIKISEARCH_SCALE` — dataset size multiplier (default 1.0);
//! * `WIKISEARCH_QUERIES` — queries per datapoint (default 10; the paper
//!   averages 50);
//! * `WIKISEARCH_THREADS` — comma-separated `Tnum` sweep for Exp-4
//!   (default `1,2,4,8`);
//! * `WIKISEARCH_CLIENTS` — comma-separated concurrent-client sweep for
//!   the `throughput` experiment (default `1,2,4,8`);
//! * `WIKISEARCH_BANKS_BUDGET` — BANKS pop budget standing in for the
//!   paper's 500 s timeout (default 500000).

#![warn(missing_docs)]

pub mod experiments;

use central::SearchParams;
use datagen::synthetic::{SyntheticConfig, SyntheticDataset};
use kgraph::sampling::estimate_average_distance_sources;
use kgraph::{DistanceEstimate, KnowledgeGraph};
use textindex::InvertedIndex;

/// A dataset prepared for searching: graph + index + sampled `A`.
pub struct PreparedDataset {
    /// Dataset display name (`wiki2017-sim` / `wiki2018-sim`).
    pub name: String,
    /// The graph.
    pub graph: KnowledgeGraph,
    /// Keyword index.
    pub index: InvertedIndex,
    /// Sampled average-distance estimate (Table II's `A`).
    pub distance: DistanceEstimate,
}

impl PreparedDataset {
    /// Generate and index a dataset, sampling `A` with shared-sweep BFS.
    pub fn prepare(config: &SyntheticConfig) -> Self {
        let SyntheticDataset { graph, config } = config.generate();
        let index = InvertedIndex::build(&graph);
        let distance = estimate_average_distance_sources(&graph, 24, 64, 32, config.seed);
        PreparedDataset { name: config.name.clone(), graph, index, distance }
    }

    /// Both paper datasets, smaller first.
    pub fn both() -> Vec<PreparedDataset> {
        vec![
            Self::prepare(&SyntheticConfig::wiki2017_sim()),
            Self::prepare(&SyntheticConfig::wiki2018_sim()),
        ]
    }

    /// Default search parameters for this dataset (Table III defaults with
    /// the dataset's sampled `A`).
    pub fn params(&self) -> SearchParams {
        SearchParams::default().with_average_distance(self.distance.mean)
    }
}

/// Queries per datapoint (`WIKISEARCH_QUERIES`, default 10).
pub fn queries_per_point() -> usize {
    env_usize("WIKISEARCH_QUERIES", 10)
}

/// BANKS pop budget (`WIKISEARCH_BANKS_BUDGET`, default 500000) — the
/// stand-in for the paper's 500 s timeout. When BANKS-II hits it, the
/// harness reports the truncation so budget-capped times are not read as
/// genuine wins.
pub fn banks_budget() -> usize {
    env_usize("WIKISEARCH_BANKS_BUDGET", 500_000)
}

/// The Exp-4 thread sweep (`WIKISEARCH_THREADS`, default `1,2,4,8`).
pub fn thread_sweep() -> Vec<usize> {
    env_usize_list("WIKISEARCH_THREADS")
}

/// The `throughput` experiment's concurrent-client sweep
/// (`WIKISEARCH_CLIENTS`, default `1,2,4,8`).
pub fn client_sweep() -> Vec<usize> {
    env_usize_list("WIKISEARCH_CLIENTS")
}

fn env_usize_list(key: &str) -> Vec<usize> {
    std::env::var(key)
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|x| x.trim().parse::<usize>().ok())
                .filter(|&t| t > 0)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

/// Default worker count for the "GPU-Par" and "CPU-Par" headline engines.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |p| p.get().max(2))
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_sweep_default() {
        std::env::remove_var("WIKISEARCH_THREADS");
        assert_eq!(thread_sweep(), vec![1, 2, 4, 8]);
    }

    #[test]
    fn prepare_tiny_dataset() {
        let ds = PreparedDataset::prepare(&SyntheticConfig::tiny(1));
        assert!(ds.distance.mean > 0.0);
        assert!(ds.index.num_terms() > 0);
        assert!(ds.params().average_distance > 0.0);
    }
}
