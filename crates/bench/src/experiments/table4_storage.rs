//! Table IV: pre-storage and maximum running storage of the matrix
//! engines (`Knum = 8`, `Topk = 50` — the largest configuration of the
//! paper's experiments).

use crate::PreparedDataset;
use eval::runner::ExperimentSink;
use eval::Table;
use kgraph::MemoryFootprint;
use serde_json::json;

/// Run the Table IV accounting on both datasets.
pub fn run() -> serde_json::Value {
    println!("== Table IV: running storage (Knum = 8, Topk = 50) ==");
    let mut table = Table::new(vec!["dataset", "pre-storage", "max. running storage"]);
    let mut records = Vec::new();
    for ds in PreparedDataset::both() {
        let f = MemoryFootprint::for_search(&ds.graph, 8);
        table.row(vec![
            ds.name.clone(),
            MemoryFootprint::human(f.pre_storage()),
            MemoryFootprint::human(f.max_running_storage()),
        ]);
        records.push(json!({
            "dataset": ds.name,
            "pre_storage_bytes": f.pre_storage(),
            "max_running_bytes": f.max_running_storage(),
            "csr_adjacency_bytes": f.csr_adjacency,
            "node_keyword_matrix_bytes": f.node_keyword_matrix,
        }));
    }
    table.print();
    println!("(paper: wiki2017 1.19GB / 1.46GB; wiki2018 2.41GB / 2.92GB on the full dumps)\n");
    let record = json!({ "experiment": "table4_storage", "datasets": records });
    if let Ok(path) = ExperimentSink::new().write("table4_storage", &record) {
        println!("json: {}", path.display());
    }
    record
}
