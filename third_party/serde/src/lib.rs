//! Minimal `serde` shim.
//!
//! Instead of the visitor-based serde data model, this shim serializes
//! directly into an owned JSON-like [`value::Value`] tree and
//! deserializes from it. That is exactly the power the workspace needs
//! (JSON round-trips via `serde_json`), at a fraction of the machinery.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{DeError, Value};

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// `serde::ser` compatibility alias.
pub mod ser {
    pub use crate::Serialize;
}

/// `serde::de` compatibility alias.
pub mod de {
    pub use crate::{DeError, Deserialize};
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_u64().ok_or_else(|| v.type_error("unsigned integer"))?;
                <$t>::try_from(raw).map_err(|_| DeError(format!(
                    "integer {raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i64().ok_or_else(|| v.type_error("integer"))?;
                <$t>::try_from(raw).map_err(|_| DeError(format!(
                    "integer {raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| v.type_error("number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64().ok_or_else(|| v.type_error("number"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| v.type_error("boolean"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_owned).ok_or_else(|| v.type_error("string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Deserialize for &'static str {
    /// Exists so derives on structs with `&'static str` fields compile
    /// (matching upstream serde); actually deserializing one is an error.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Err(v.type_error("owned string (&'static str cannot be deserialized)"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| v.type_error("array"))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| v.type_error("array"))?;
        if items.len() != N {
            return Err(DeError(format!("expected array of length {N}, got {}", items.len())));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(std::sync::Arc::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| v.type_error("array (tuple)"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError(format!(
                        "expected tuple of length {expected}, got {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v.as_object().ok_or_else(|| v.type_error("object"))?;
        fields.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic output
        Value::Object(entries)
    }
}
impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v.as_object().ok_or_else(|| v.type_error("object"))?;
        fields.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        // Matches serde's canonical {secs, nanos} encoding.
        Value::Object(vec![
            ("secs".to_owned(), Value::U64(self.as_secs())),
            ("nanos".to_owned(), Value::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}
impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs = v
            .get_field("secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| v.type_error("duration"))?;
        let nanos = v.get_field("nanos").and_then(Value::as_u64).unwrap_or(0);
        Ok(std::time::Duration::new(secs, nanos as u32))
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::String(self.display().to_string())
    }
}
impl Deserialize for std::path::PathBuf {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(std::path::PathBuf::from(v.as_str().ok_or_else(|| v.type_error("path string"))?))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Vec::<u8>::from_value(&vec![1u8, 2].to_value()).unwrap(), vec![1, 2]);
        let d = std::time::Duration::new(3, 500);
        assert_eq!(std::time::Duration::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::String("x".into())).is_err());
    }

    #[test]
    fn usize_max_survives() {
        let v = usize::MAX.to_value();
        assert_eq!(usize::from_value(&v).unwrap(), usize::MAX);
    }
}
