//! # banks — BANKS-I / BANKS-II keyword-search baselines
//!
//! The reproduced paper evaluates against **BANKS-II** (Kacholia et al.,
//! *Bidirectional Expansion for Keyword Search on Graph Databases*,
//! VLDB'05), the "established and widely used" Group-Steiner-Tree-style
//! baseline, and discusses **BANKS-I** (Aditya et al., VLDB'02, pure
//! backward search). This crate implements both from scratch with the
//! behaviours the paper's analysis depends on:
//!
//! * **single-threaded, priority-queue driven** — each expansion step pops
//!   the globally best node, creating the sequential dependency that (per
//!   the paper) prevents parallelization;
//! * **tree answers**: a root plus one shortest path to a leaf per keyword
//!   group; the score is the sum of root→leaf path weights (no keyword
//!   co-occurrence term — the effectiveness experiments hinge on this);
//! * **in-degree-based edge costs** `log2(1 + deg(v))`, which make
//!   expansion through summary hubs expensive and slow;
//! * for BANKS-II, **spreading-activation ordering** (not distance
//!   ordering) with decay per hop, which can settle a node at a
//!   non-minimal distance and then pay for recursive distance corrections
//!   — precisely the third slowness cause the paper identifies;
//! * a **conservative top-k termination test**: answers are only emitted
//!   once no undiscovered tree can beat them, which forces broad
//!   exploration (the second slowness cause).
//!
//! Both engines operate on the same bi-directed [`kgraph::KnowledgeGraph`]
//! view the Central Graph engines use, keeping the comparison fair.

#![warn(missing_docs)]

pub mod answer;
pub mod banks1;
pub mod banks2;
pub mod expansion;

pub use answer::{BanksOutcome, BanksParams, TreeAnswer};
pub use banks1::BanksI;
pub use banks2::BanksII;
