//! Reusable per-engine search sessions.
//!
//! Every search needs an `n × q` hitting-level matrix, frontier/central
//! flag arrays, and the driver's queue buffers. Allocating (and zeroing)
//! those per query dominates the paper's *Initialization* phase on warm
//! services — WikiSearch answers a stream of queries over one graph, so
//! the state should be paid for once. A [`SearchSession`] owns the
//! epoch-stamped [`SearchState`] plus all scratch buffers; "resetting" for
//! the next query is a single epoch increment
//! ([`SearchState::begin_query`]), making the warm path allocation-free.
//!
//! Sessions are engine-agnostic: the same session can be handed to any of
//! the four engines ([`crate::engine::KeywordSearchEngine::search_session`]).
//! The matrix engines (Seq, CPU-Par, GPU-Par) share the epoch-stamped
//! state; CPU-Par-d lazily materializes its lock-based [`DynState`] inside
//! the same session and reuses it the same way (per-node epoch stamps,
//! freshened under the node lock).
//!
//! A session is deliberately `!Sync`-shaped at the API level: searches
//! take `&mut self`, so one session serves one query at a time. To serve
//! concurrent request handlers, check sessions out of a
//! [`crate::pool::SessionPool`] (as `wikisearch-engine` does) or keep one
//! session per worker.

use crate::bottom_up::BottomUpScratch;
use crate::engine::par_dyn::DynState;
use crate::state::SearchState;

/// Reusable search state + scratch buffers for a stream of queries.
///
/// ```
/// use kgraph::GraphBuilder;
/// use textindex::{InvertedIndex, ParsedQuery};
/// use central::{engine::{KeywordSearchEngine, SeqEngine}, SearchParams, SearchSession};
///
/// let mut b = GraphBuilder::new();
/// let x = b.add_node("x", "XML");
/// let q = b.add_node("q", "query language");
/// let s = b.add_node("s", "SQL");
/// b.add_edge(x, q, "related");
/// b.add_edge(s, q, "instance of");
/// let g = b.build();
/// let idx = InvertedIndex::build(&g);
///
/// let engine = SeqEngine::new();
/// let mut session = SearchSession::new();
/// for raw in ["XML SQL", "SQL language", "XML SQL"] {
///     let query = ParsedQuery::parse(&idx, raw);
///     let out = engine.search_session(&mut session, &g, &query, &SearchParams::default());
///     assert!(!out.answers.is_empty());
/// }
/// assert_eq!(session.queries_run(), 3);
/// ```
#[derive(Default)]
pub struct SearchSession {
    /// Epoch-stamped matrix state shared by the three matrix engines.
    pub(crate) state: SearchState,
    /// Driver queue buffers (frontier queue, per-level identifications).
    pub(crate) scratch: BottomUpScratch,
    /// CPU-Par-d's lock-based state, materialized on first use.
    pub(crate) dyn_state: Option<DynState>,
    /// Number of queries answered through this session.
    pub(crate) queries_run: u64,
}

impl SearchSession {
    /// A fresh session holding no allocations; buffers grow to the working
    /// set over the first query and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queries answered through this session so far.
    pub fn queries_run(&self) -> u64 {
        self.queries_run
    }

    /// The matrix state (current as of the last matrix-engine query).
    /// Exposed for diagnostics and the test suite.
    pub fn state(&self) -> &SearchState {
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{KeywordSearchEngine, SeqEngine};
    use crate::SearchParams;
    use kgraph::GraphBuilder;
    use textindex::{InvertedIndex, ParsedQuery};

    #[test]
    fn session_counts_queries_and_reuses_state() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", "alpha");
        let y = b.add_node("y", "beta");
        let m = b.add_node("m", "middle");
        b.add_edge(x, m, "e");
        b.add_edge(y, m, "e");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let q = ParsedQuery::parse(&idx, "alpha beta");

        let engine = SeqEngine::new();
        let mut session = SearchSession::new();
        assert_eq!(session.queries_run(), 0);
        let first = engine.search_session(&mut session, &g, &q, &SearchParams::default());
        let epoch_after_first = session.state().epoch();
        let second = engine.search_session(&mut session, &g, &q, &SearchParams::default());
        assert_eq!(session.queries_run(), 2);
        assert_eq!(session.state().epoch(), epoch_after_first + 1);
        assert_eq!(first.answers.len(), second.answers.len());
        assert_eq!(first.answers[0].central, second.answers[0].central);
        assert_eq!(first.answers[0].nodes, second.answers[0].nodes);
    }

    #[test]
    fn empty_query_does_not_disturb_the_session() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", "alpha");
        let y = b.add_node("y", "beta");
        b.add_edge(x, y, "e");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let engine = SeqEngine::new();
        let mut session = SearchSession::new();
        let miss = ParsedQuery::parse(&idx, "zzz");
        let out = engine.search_session(&mut session, &g, &miss, &SearchParams::default());
        assert!(out.answers.is_empty());
        let hit = ParsedQuery::parse(&idx, "alpha beta");
        let out = engine.search_session(&mut session, &g, &hit, &SearchParams::default());
        assert!(!out.answers.is_empty());
    }
}
