//! Plain-text rendering of answer graphs (the service's result view).

use central::CentralGraph;
use kgraph::{KnowledgeGraph, NodeId};
use std::fmt::Write as _;

/// Render one Central Graph answer as indented text: the central node,
/// then every edge with its relationship label, then the keyword coverage.
pub fn render_answer(graph: &KnowledgeGraph, answer: &CentralGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Central Graph @ {} ({:?}) — depth {}, score {:.3}, {} nodes / {} edges",
        graph.node_text(answer.central),
        answer.central,
        answer.depth,
        answer.score,
        answer.num_nodes(),
        answer.num_edges(),
    );
    for &(a, b) in &answer.edges {
        let label = edge_label(graph, a, b).unwrap_or("?");
        let _ = writeln!(out, "  {} --[{}]-- {}", graph.node_text(a), label, graph.node_text(b));
    }
    for (i, kws) in answer.keyword_nodes.iter().enumerate() {
        let names: Vec<&str> = kws.iter().map(|&v| graph.node_text(v)).collect();
        let _ = writeln!(out, "  keyword {i}: {}", names.join(", "));
    }
    out
}

/// Render one answer as a Graphviz DOT graph (keyword nodes filled, the
/// central node double-circled, edges labeled with their relationship).
pub fn render_dot(graph: &KnowledgeGraph, answer: &CentralGraph) -> String {
    let mut out = String::from("graph answer {\n  rankdir=LR;\n");
    let keyword_nodes: std::collections::HashSet<NodeId> =
        answer.keyword_nodes.iter().flatten().copied().collect();
    for &v in &answer.nodes {
        let mut attrs = vec![format!("label=\"{}\"", escape(graph.node_text(v)))];
        if v == answer.central {
            attrs.push("shape=doublecircle".into());
        }
        if keyword_nodes.contains(&v) {
            attrs.push("style=filled".into());
            attrs.push("fillcolor=lightblue".into());
        }
        let _ = writeln!(out, "  n{} [{}];", v.0, attrs.join(", "));
    }
    for &(a, b) in &answer.edges {
        let label = edge_label(graph, a, b).unwrap_or("?");
        let _ = writeln!(out, "  n{} -- n{} [label=\"{}\"];", a.0, b.0, escape(label));
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The relationship label between two adjacent nodes (first match).
pub fn edge_label(graph: &KnowledgeGraph, a: NodeId, b: NodeId) -> Option<&str> {
    graph
        .neighbors(a)
        .iter()
        .find(|adj| adj.target() == b)
        .map(|adj| graph.label_name(adj.label()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;

    #[test]
    fn rendering_includes_labels_and_texts() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", "XML");
        let q = b.add_node("q", "query language");
        b.add_edge(x, q, "related to");
        let g = b.build();
        let answer = CentralGraph {
            central: q,
            depth: 1,
            nodes: vec![x, q],
            edges: vec![(x, q)],
            keyword_nodes: vec![vec![x]],
            keyword_edges: vec![vec![(x, q)]],
            score: 0.5,
        };
        let text = render_answer(&g, &answer);
        assert!(text.contains("query language"));
        assert!(text.contains("related to"));
        assert!(text.contains("XML"));
        assert!(text.contains("depth 1"));
    }

    #[test]
    fn dot_rendering_is_wellformed() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", "XML \"quoted\"");
        let q = b.add_node("q", "query language");
        b.add_edge(x, q, "related to");
        let g = b.build();
        let answer = CentralGraph {
            central: q,
            depth: 1,
            nodes: vec![x, q],
            edges: vec![(x, q)],
            keyword_nodes: vec![vec![x]],
            keyword_edges: vec![vec![(x, q)]],
            score: 0.5,
        };
        let dot = render_dot(&g, &answer);
        assert!(dot.starts_with("graph answer {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("doublecircle"), "central node marked");
        assert!(dot.contains("fillcolor=lightblue"), "keyword node marked");
        assert!(dot.contains("n0 -- n1"));
        assert!(dot.contains("\\\"quoted\\\""), "quotes escaped: {dot}");
    }

    #[test]
    fn edge_label_lookup() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", "a");
        let y = b.add_node("y", "b");
        let z = b.add_node("z", "c");
        b.add_edge(x, y, "p");
        let g = b.build();
        assert_eq!(edge_label(&g, x, y), Some("p"));
        assert_eq!(edge_label(&g, y, x), Some("p")); // bi-directed view
        assert_eq!(edge_label(&g, x, z), None);
    }
}
