//! # wikisearch-engine — the end-to-end WikiSearch facade
//!
//! The paper ships its algorithm as an online service ("WikiSearch") over
//! the Wikidata KB. This crate is that service's engine layer: it owns the
//! graph, the inverted keyword index, the dataset's sampled average
//! distance, and a pluggable search backend, and turns a raw keyword
//! string into ranked, renderable answer graphs.
//!
//! ```
//! use kgraph::GraphBuilder;
//! use wikisearch_engine::WikiSearch;
//!
//! let mut b = GraphBuilder::new();
//! let x = b.add_node("Q1", "XML");
//! let q = b.add_node("Q2", "query language");
//! let s = b.add_node("Q3", "SQL");
//! b.add_edge(x, q, "related to");
//! b.add_edge(s, q, "instance of");
//!
//! let ws = WikiSearch::build(b.build());
//! let result = ws.search("xml sql");
//! assert_eq!(result.answers.len(), 1);
//! println!("{}", ws.render_answer(&result.answers[0]));
//! ```

#![warn(missing_docs)]

pub mod render;

use central::engine::{
    DynParEngine, GpuStyleEngine, KeywordSearchEngine, ParCpuEngine, SearchOutcome, SearchStats,
    SeqEngine,
};
use central::{CentralGraph, PhaseProfile, SearchParams, SessionPool};
use kgraph::{estimate_average_distance, KnowledgeGraph};
use textindex::{InvertedIndex, ParsedQuery};

/// Which backend executes searches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Single-threaded reference engine.
    Sequential,
    /// Lock-free coarse-grained CPU engine with this many threads.
    ParCpu(usize),
    /// GPU-kernel-structured engine with this many threads.
    GpuStyle(usize),
    /// Lock-based dynamic-memory baseline with this many threads.
    DynPar(usize),
}

impl Backend {
    /// Thread count used when a backend spec names no explicit count
    /// (matches the CLI's `--threads` default).
    pub const DEFAULT_THREADS: usize = 4;

    /// Parse a backend name (`seq` | `cpu` | `gpu` | `dyn`) with an
    /// explicit thread count for the parallel engines. This is the one
    /// place backend strings are interpreted — the CLI's `search` and
    /// `serve` both route through it.
    pub fn parse(name: &str, threads: usize) -> Result<Backend, String> {
        if threads == 0 {
            return Err(format!("backend {name:?}: thread count must be >= 1"));
        }
        match name {
            "seq" => Ok(Backend::Sequential),
            "cpu" => Ok(Backend::ParCpu(threads)),
            "gpu" => Ok(Backend::GpuStyle(threads)),
            "dyn" => Ok(Backend::DynPar(threads)),
            other => Err(format!("unknown backend {other:?} (expected seq|cpu|gpu|dyn)")),
        }
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    /// Parse a `name[:threads]` spec: `"seq"`, `"cpu"`, `"gpu:8"`,
    /// `"dyn:2"`, … Without an explicit count, parallel backends get
    /// [`Backend::DEFAULT_THREADS`].
    fn from_str(spec: &str) -> Result<Backend, String> {
        match spec.split_once(':') {
            Some((name, t)) => {
                let threads = t
                    .parse::<usize>()
                    .map_err(|_| format!("backend {spec:?}: cannot parse thread count {t:?}"))?;
                Backend::parse(name, threads)
            }
            None => Backend::parse(spec, Backend::DEFAULT_THREADS),
        }
    }
}

/// One search's result: the parsed query, the ranked answers, and timing.
#[derive(Clone, Debug)]
pub struct WikiSearchResult {
    /// The analyzed query (matched groups + unmatched terms).
    pub query: ParsedQuery,
    /// Ranked Central Graph answers, best first.
    pub answers: Vec<CentralGraph>,
    /// Per-phase timings of the search.
    pub profile: PhaseProfile,
    /// Average keyword frequency of the query (Table V's `kwf`).
    pub kwf: f64,
    /// Search statistics, including the per-level progression trace.
    pub stats: SearchStats,
}

/// The WikiSearch engine: graph + index + backend + defaults.
///
/// The engine is `Send + Sync` and every search path takes `&self`, so
/// one `Arc<WikiSearch>` serves any number of threads concurrently (the
/// CLI's `serve --workers N` does exactly that). Warm per-query state
/// lives in a [`SessionPool`]: each search checks a [`central::SearchSession`]
/// out of the pool, so concurrent queries run on distinct sessions
/// without contending on a process-wide lock, while a sequential caller
/// keeps hitting the same warm session — the first query pays the
/// `n × q` state allocation, every later query re-arms it with a single
/// epoch bump (see `central::session` and `central::pool`). Sessions are
/// engine-agnostic, so swapping backends keeps the warm state.
pub struct WikiSearch {
    graph: KnowledgeGraph,
    index: InvertedIndex,
    params: SearchParams,
    backend: Box<dyn KeywordSearchEngine + Send + Sync>,
    sessions: SessionPool,
}

impl WikiSearch {
    /// Build over `graph` with the default (sequential) backend, Table III
    /// default parameters, and an average distance sampled from the graph
    /// itself (200 pairs — callers with a known `A` can override via
    /// [`WikiSearch::set_params`]).
    pub fn build(graph: KnowledgeGraph) -> Self {
        Self::build_with(graph, Backend::Sequential)
    }

    /// Build with an explicit backend.
    pub fn build_with(graph: KnowledgeGraph, backend: Backend) -> Self {
        let index = InvertedIndex::build(&graph);
        let est = estimate_average_distance(&graph, 200, 32, 0xA11CE);
        let a = if est.reachable_pairs == 0 {
            3.68
        } else {
            est.mean
        };
        let params = SearchParams::default().with_average_distance(a);
        WikiSearch {
            graph,
            index,
            params,
            backend: make_backend(backend),
            sessions: SessionPool::new(),
        }
    }

    /// Swap the search backend.
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = make_backend(backend);
    }

    /// Override the default search parameters (α, top-k, λ, `A`, …).
    pub fn set_params(&mut self, params: SearchParams) {
        self.params = params;
    }

    /// Current default parameters.
    pub fn params(&self) -> &SearchParams {
        &self.params
    }

    /// The underlying graph.
    pub fn graph(&self) -> &KnowledgeGraph {
        &self.graph
    }

    /// The keyword index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Search with the engine's default parameters.
    pub fn search(&self, raw_query: &str) -> WikiSearchResult {
        self.search_with_params(raw_query, &self.params)
    }

    /// Search with explicit per-request parameters (e.g. a different α or
    /// top-k) without touching the engine's defaults — callers holding
    /// only `&self` (a shared `Arc<WikiSearch>`, a server worker) override
    /// params per query through here. Runs through the session pool: the
    /// warm path for a sequential caller, a distinct session per query
    /// for concurrent ones.
    pub fn search_with_params(&self, raw_query: &str, params: &SearchParams) -> WikiSearchResult {
        let query = ParsedQuery::parse(&self.index, raw_query);
        let kwf = query.avg_keyword_frequency();
        let mut session = self.sessions.checkout();
        let SearchOutcome { answers, profile, stats } =
            self.backend.search_session(&mut session, &self.graph, &query, params);
        WikiSearchResult { query, answers, profile, kwf, stats }
    }

    /// Backwards-compatible alias of [`WikiSearch::search_with_params`].
    pub fn search_with(&self, raw_query: &str, params: &SearchParams) -> WikiSearchResult {
        self.search_with_params(raw_query, params)
    }

    /// Number of queries answered through the engine's session pool
    /// (checked-in sessions; a query in flight counts once it completes).
    pub fn session_queries_run(&self) -> u64 {
        self.sessions.queries_run()
    }

    /// The engine's session pool (diagnostics: idle/created/in-flight
    /// session counts).
    pub fn session_pool(&self) -> &SessionPool {
        &self.sessions
    }

    /// Parse a query without searching (used by harnesses for kwf stats).
    pub fn parse(&self, raw_query: &str) -> ParsedQuery {
        ParsedQuery::parse(&self.index, raw_query)
    }

    /// Human-readable rendering of one answer graph.
    pub fn render_answer(&self, answer: &CentralGraph) -> String {
        render::render_answer(&self.graph, answer)
    }
}

fn make_backend(backend: Backend) -> Box<dyn KeywordSearchEngine + Send + Sync> {
    match backend {
        Backend::Sequential => Box::new(SeqEngine::new()),
        Backend::ParCpu(t) => Box::new(ParCpuEngine::new(t)),
        Backend::GpuStyle(t) => Box::new(GpuStyleEngine::new(t)),
        Backend::DynPar(t) => Box::new(DynParEngine::new(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;

    fn small_engine(backend: Backend) -> WikiSearch {
        let mut b = GraphBuilder::new();
        let x = b.add_node("Q1", "XML");
        let q = b.add_node("Q2", "query language");
        let s = b.add_node("Q3", "SQL");
        let r = b.add_node("Q4", "RDF");
        b.add_edge(x, q, "related to");
        b.add_edge(s, q, "instance of");
        b.add_edge(r, q, "instance of");
        WikiSearch::build_with(b.build(), backend)
    }

    #[test]
    fn end_to_end_search_finds_the_hub() {
        let ws = small_engine(Backend::Sequential);
        let result = ws.search("xml sql rdf");
        assert_eq!(result.query.num_keywords(), 3);
        assert!(!result.answers.is_empty());
        let best = &result.answers[0];
        assert_eq!(ws.graph().node_text(best.central), "query language");
        assert!(result.kwf > 0.0);
    }

    #[test]
    fn backends_are_interchangeable() {
        let reference = small_engine(Backend::Sequential).search("xml sql");
        for backend in [Backend::ParCpu(2), Backend::GpuStyle(2), Backend::DynPar(2)] {
            let result = small_engine(backend).search("xml sql");
            assert_eq!(result.answers.len(), reference.answers.len(), "{backend:?}");
            assert_eq!(result.answers[0].nodes, reference.answers[0].nodes, "{backend:?}");
        }
    }

    #[test]
    fn unmatched_terms_are_surfaced() {
        let ws = small_engine(Backend::Sequential);
        let result = ws.search("xml warpdrive");
        assert_eq!(result.query.unmatched, vec!["warpdriv"]); // stemmed form
        assert_eq!(result.query.num_keywords(), 1);
    }

    #[test]
    fn stats_trace_records_level_progression() {
        let ws = small_engine(Backend::Sequential);
        let result = ws.search("xml sql rdf");
        let trace = &result.stats.trace;
        assert!(!trace.is_empty());
        // Levels are consecutive from 0 and the identified counts sum to
        // the candidate count.
        for (i, t) in trace.iter().enumerate() {
            assert_eq!(t.level as usize, i);
            assert!(t.frontier > 0);
        }
        let identified: usize = trace.iter().map(|t| t.identified).sum();
        assert_eq!(identified, result.stats.central_candidates);
    }

    #[test]
    fn repeated_searches_reuse_one_session() {
        let ws = small_engine(Backend::Sequential);
        assert_eq!(ws.session_queries_run(), 0);
        let first = ws.search("xml sql rdf");
        let second = ws.search("xml sql");
        let third = ws.search("xml sql rdf");
        assert_eq!(ws.session_queries_run(), 3);
        // A sequential caller keeps hitting one pooled session.
        assert_eq!(ws.session_pool().sessions_created(), 1);
        assert_eq!(ws.session_pool().idle_sessions(), 1);
        // Warm-path answers match the corresponding fresh ones.
        assert_eq!(first.answers[0].nodes, third.answers[0].nodes);
        assert_eq!(first.answers[0].edges, third.answers[0].edges);
        assert!(!second.answers.is_empty());
    }

    #[test]
    fn wikisearch_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WikiSearch>();
    }

    #[test]
    fn concurrent_searches_agree_with_sequential() {
        use std::sync::Arc;
        let ws = Arc::new(small_engine(Backend::Sequential));
        let reference = ws.search("xml sql rdf");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let ws = Arc::clone(&ws);
                let reference = &reference;
                scope.spawn(move || {
                    for _ in 0..8 {
                        let out = ws.search("xml sql rdf");
                        assert_eq!(out.answers.len(), reference.answers.len());
                        assert_eq!(out.answers[0].nodes, reference.answers[0].nodes);
                        assert_eq!(out.answers[0].edges, reference.answers[0].edges);
                    }
                });
            }
        });
        // 4 workers × 8 queries + the reference, all accounted pool-wide.
        assert_eq!(ws.session_queries_run(), 33);
        let pool = ws.session_pool();
        assert!(pool.sessions_created() <= 5, "pool capped by concurrency peak");
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn per_request_params_need_only_a_shared_reference() {
        let ws = small_engine(Backend::Sequential);
        let deep = ws.search("xml sql rdf");
        let narrow = ws.search_with_params("xml sql rdf", &ws.params().clone().with_top_k(1));
        assert!(narrow.answers.len() <= 1);
        assert!(deep.answers.len() >= narrow.answers.len());
        // The engine's defaults are untouched by the per-request override.
        let again = ws.search("xml sql rdf");
        assert_eq!(again.answers.len(), deep.answers.len());
    }

    #[test]
    fn backend_parse_accepts_the_cli_names() {
        assert_eq!(Backend::parse("seq", 3).unwrap(), Backend::Sequential);
        assert_eq!(Backend::parse("cpu", 3).unwrap(), Backend::ParCpu(3));
        assert_eq!(Backend::parse("gpu", 8).unwrap(), Backend::GpuStyle(8));
        assert_eq!(Backend::parse("dyn", 2).unwrap(), Backend::DynPar(2));
        assert!(Backend::parse("cuda", 2).unwrap_err().contains("unknown backend"));
        assert!(Backend::parse("cpu", 0).unwrap_err().contains(">= 1"));
    }

    #[test]
    fn backend_from_str_parses_specs() {
        assert_eq!("seq".parse::<Backend>().unwrap(), Backend::Sequential);
        assert_eq!("cpu".parse::<Backend>().unwrap(), Backend::ParCpu(Backend::DEFAULT_THREADS));
        assert_eq!("gpu:8".parse::<Backend>().unwrap(), Backend::GpuStyle(8));
        assert_eq!("dyn:2".parse::<Backend>().unwrap(), Backend::DynPar(2));
        assert!("cpu:many".parse::<Backend>().is_err());
        assert!("warp:4".parse::<Backend>().is_err());
    }

    #[test]
    fn backend_swap_keeps_the_warm_session() {
        let mut ws = small_engine(Backend::Sequential);
        let seq = ws.search("xml sql rdf");
        ws.set_backend(Backend::GpuStyle(2));
        let gpu = ws.search("xml sql rdf");
        assert_eq!(ws.session_queries_run(), 2);
        assert_eq!(seq.answers[0].nodes, gpu.answers[0].nodes);
        ws.set_backend(Backend::DynPar(2));
        let dy = ws.search("xml sql rdf");
        assert_eq!(seq.answers[0].nodes, dy.answers[0].nodes);
        assert_eq!(ws.session_queries_run(), 3);
    }

    #[test]
    fn params_override_applies() {
        let mut ws = small_engine(Backend::Sequential);
        let p = ws.params().clone().with_top_k(1);
        ws.set_params(p);
        let result = ws.search("xml sql rdf");
        assert!(result.answers.len() <= 1);
    }
}
