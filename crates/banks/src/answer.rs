//! Tree-shaped answers and parameters shared by BANKS-I and BANKS-II.

use kgraph::NodeId;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Parameters of a BANKS search.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BanksParams {
    /// Number of answer trees to return.
    pub top_k: usize,
    /// Activation decay per hop (BANKS-II; `μ` in the original paper).
    pub decay: f32,
    /// Hard budget on priority-queue pops — the stand-in for the paper's
    /// 500-second wall-clock cutoff.
    pub node_budget: usize,
}

impl Default for BanksParams {
    fn default() -> Self {
        BanksParams { top_k: 20, decay: 0.5, node_budget: 2_000_000 }
    }
}

impl BanksParams {
    /// Builder-style override of `top_k`.
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Builder-style override of the pop budget.
    pub fn with_node_budget(mut self, budget: usize) -> Self {
        self.node_budget = budget;
        self
    }
}

/// A tree answer: root plus one shortest path per keyword group.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TreeAnswer {
    /// The answer root (the connecting node).
    pub root: NodeId,
    /// Per keyword group: the path `root → … → leaf` (leaf ∈ `T_i`).
    pub paths: Vec<Vec<NodeId>>,
    /// Union of path nodes, sorted, unique.
    pub nodes: Vec<NodeId>,
    /// Union of path edges as `(min, max)` pairs, sorted, unique.
    pub edges: Vec<(NodeId, NodeId)>,
    /// Σ over groups of the root→leaf path weight; smaller is better.
    pub score: f64,
}

impl TreeAnswer {
    /// Assemble a tree answer from per-group root→leaf paths.
    pub fn from_paths(root: NodeId, paths: Vec<Vec<NodeId>>, score: f64) -> Self {
        let mut nodes: Vec<NodeId> = paths.iter().flatten().copied().collect();
        nodes.push(root);
        nodes.sort_unstable();
        nodes.dedup();
        let mut edges: Vec<(NodeId, NodeId)> = paths
            .iter()
            .flat_map(|p| p.windows(2))
            .map(|w| (w[0].min(w[1]), w[0].max(w[1])))
            .collect();
        edges.sort_unstable();
        edges.dedup();
        TreeAnswer { root, paths, nodes, edges, score }
    }

    /// `true` if the answer contains `v`.
    pub fn contains_node(&self, v: NodeId) -> bool {
        self.nodes.binary_search(&v).is_ok()
    }

    /// Structural invariants (tests): every path starts at the root; node
    /// and edge lists sorted and unique.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, p) in self.paths.iter().enumerate() {
            if p.first() != Some(&self.root) {
                return Err(format!("path {i} does not start at the root"));
            }
        }
        if !self.nodes.windows(2).all(|w| w[0] < w[1]) {
            return Err("nodes not sorted/unique".into());
        }
        if !self.edges.windows(2).all(|w| w[0] < w[1]) {
            return Err("edges not sorted/unique".into());
        }
        if !self.score.is_finite() || self.score < 0.0 {
            return Err(format!("bad score {}", self.score));
        }
        Ok(())
    }
}

/// Result of a BANKS search.
#[derive(Clone, Debug, Default)]
pub struct BanksOutcome {
    /// Emitted answers, best score first.
    pub answers: Vec<TreeAnswer>,
    /// Total priority-queue pops (the sequential work measure).
    pub pops: usize,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
    /// `true` if the pop budget cut the search short.
    pub budget_exhausted: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_paths_unions_nodes_and_edges() {
        let r = NodeId(5);
        let a = TreeAnswer::from_paths(
            r,
            vec![vec![NodeId(5), NodeId(3), NodeId(1)], vec![NodeId(5), NodeId(3), NodeId(2)]],
            4.0,
        );
        assert_eq!(a.nodes, vec![NodeId(1), NodeId(2), NodeId(3), NodeId(5)]);
        assert_eq!(a.edges.len(), 3); // (3,5) shared by both paths, deduped
        a.check_invariants().unwrap();
    }

    #[test]
    fn invariants_reject_path_not_rooted() {
        let mut a = TreeAnswer::from_paths(NodeId(1), vec![vec![NodeId(1), NodeId(2)]], 1.0);
        a.paths[0][0] = NodeId(9);
        assert!(a.check_invariants().is_err());
    }

    #[test]
    fn params_builders() {
        let p = BanksParams::default().with_top_k(5).with_node_budget(100);
        assert_eq!(p.top_k, 5);
        assert_eq!(p.node_budget, 100);
    }
}
