//! Minimal `rayon` shim: a real thread pool plus the indexed
//! parallel-iterator subset this workspace uses.
//!
//! Parallel iterators are *eagerly chunked*: the index space is split into
//! one contiguous block per pool thread, blocks run concurrently, and
//! ordered operations (`collect`) reassemble blocks in index order, so the
//! ordering guarantees match rayon's. There is no work stealing; the
//! workspace's level-synchronous workloads are uniform enough that block
//! scheduling is an adequate stand-in.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

pub mod iter;

/// `use rayon::prelude::*` — the parallel iterator traits.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Inner {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

impl Inner {
    fn submit(&self, job: Job) {
        self.queue.lock().unwrap().push_back(job);
        self.available.notify_one();
    }
}

/// A pool of worker threads.
pub struct ThreadPool {
    inner: Arc<Inner>,
    threads: usize,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// Error building a thread pool (the shim never fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker count (0 = one per logical CPU).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.num_threads
        };
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        // With a single thread every bridge runs inline on the caller, so
        // no workers are needed; more threads get `threads` real workers.
        let worker_count = if threads > 1 { threads } else { 0 };
        let workers = (0..worker_count)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        Ok(ThreadPool { inner, threads, workers })
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = inner.available.wait(queue).unwrap();
            }
        };
        // Panics are caught at the latch; the worker itself must survive.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

impl ThreadPool {
    /// Run `f` with this pool as the ambient pool: parallel iterators
    /// inside `f` distribute work over this pool's threads.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = CURRENT.with(|c| {
            c.replace(Some(Ambient { inner: Arc::clone(&self.inner), threads: self.threads }))
        });
        let result = catch_unwind(AssertUnwindSafe(f));
        CURRENT.with(|c| c.replace(previous));
        match result {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Number of worker threads.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[derive(Clone)]
struct Ambient {
    inner: Arc<Inner>,
    threads: usize,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Ambient>> = const { std::cell::RefCell::new(None) };
}

/// Worker count of the ambient pool (1 outside any `install`).
pub fn current_num_threads() -> usize {
    CURRENT.with(|c| c.borrow().as_ref().map_or(1, |a| a.threads))
}

/// Run two closures, returning both results. The shim runs them
/// sequentially — semantically equivalent, as rayon guarantees both have
/// completed on return.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Completion latch for one bridge invocation.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    poisoned: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            poisoned: AtomicBool::new(false),
        }
    }

    fn complete_one(&self, panicked: bool) {
        if panicked {
            self.poisoned.store(true, Ordering::Release);
        }
        let mut remaining = self.remaining.lock().unwrap();
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().unwrap();
        while *remaining > 0 {
            remaining = self.done.wait(remaining).unwrap();
        }
    }
}

/// Split `0..n` into one contiguous block per ambient pool thread and run
/// `body(lo, hi)` on each block concurrently. Blocks on completion of all
/// blocks before returning (also on panic), so `body` may borrow from the
/// caller's stack.
pub(crate) fn bridge(n: usize, body: &(dyn Fn(usize, usize) + Sync)) {
    if n == 0 {
        return;
    }
    let ambient = CURRENT.with(|c| c.borrow().clone());
    let Some(ambient) = ambient else {
        body(0, n);
        return;
    };
    let k = ambient.threads.min(n);
    if k <= 1 {
        body(0, n);
        return;
    }
    let chunk = n.div_ceil(k);
    let latch = Latch::new(k - 1);
    // SAFETY: every job signals `latch` when finished and `wait` below does
    // not return (even on panic in the caller's own block) until all jobs
    // have signalled, so the borrows of `body` and `latch` outlive all use.
    let body_static: &'static (dyn Fn(usize, usize) + Sync) = unsafe { std::mem::transmute(body) };
    let latch_static: &'static Latch = unsafe { &*std::ptr::from_ref(&latch) };
    for c in 1..k {
        let lo = c * chunk;
        let hi = ((c + 1) * chunk).min(n);
        ambient.inner.submit(Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(|| body_static(lo, hi)));
            latch_static.complete_one(result.is_err());
        }));
    }
    let own = catch_unwind(AssertUnwindSafe(|| body(0, chunk.min(n))));
    latch.wait();
    match own {
        Err(payload) => std::panic::resume_unwind(payload),
        Ok(()) if latch.poisoned.load(Ordering::Acquire) => {
            panic!("a parallel task panicked");
        }
        Ok(()) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_runs_work_on_workers() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let counter = AtomicUsize::new(0);
        pool.install(|| {
            (0..1000usize).into_par_iter().for_each(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn collect_preserves_order() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let data: Vec<usize> = (0..101).collect();
        let doubled: Vec<usize> = pool.install(|| data.par_iter().map(|&x| x * 2).collect());
        assert_eq!(doubled, (0..101).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_and_copied_compose() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let data: Vec<u32> = (0..50).collect();
        let even: Vec<u32> =
            pool.install(|| data.par_iter().copied().filter(|x| x % 2 == 0).collect());
        assert_eq!(even, (0..50).filter(|x| x % 2 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_without_install() {
        let total: Vec<usize> = (0..10usize).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(total, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn panics_propagate_to_caller() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                (0..64usize).into_par_iter().for_each(|i| {
                    if i == 63 {
                        panic!("boom");
                    }
                });
            });
        }));
        assert!(result.is_err());
        // The pool remains usable after a propagated panic.
        let sum: Vec<usize> = pool.install(|| (0..8usize).into_par_iter().collect());
        assert_eq!(sum.len(), 8);
    }
}
