//! Theorem V.4 extraction must respect central-node freezing.
//!
//! The paper's Theorem V.4 recovers hitting paths from the matrix `M` via
//! level arithmetic alone. One interaction its proof glosses over: a node
//! identified as central stops expanding ("becomes unavailable for future
//! expansion"), so it can satisfy the level equation for a later hit it
//! never actually produced. This workspace's extraction therefore rejects
//! predecessors whose identification depth precedes the hit
//! (`crates/central/src/top_down.rs`), keeping the matrix engines in
//! exact agreement with CPU-Par-d, which records the true paths during
//! search.
//!
//! The fixture below is the minimal trap:
//!
//! ```text
//!  a(alpha) — x — b1(beta)        x: central at depth 1, frozen
//!  a(alpha) — y — x               y: hit alpha from a at level 1
//!  b2(beta) — w — y               y: hit beta through w at level 2
//! ```
//!
//! Ungated extraction would attribute y's beta hit to the frozen x
//! (`1 + max(a_x, h_x^beta) = 2 = h_y^beta`) and drag `b1` into the
//! answer; the true path runs through `w` only.

use central::engine::{DynParEngine, KeywordSearchEngine, SeqEngine};
use central::SearchParams;
use kgraph::GraphBuilder;
use textindex::{InvertedIndex, ParsedQuery};

#[test]
fn frozen_central_nodes_are_not_fabricated_as_predecessors() {
    let mut b = GraphBuilder::new();
    let a = b.add_node("a", "alpha");
    let b1 = b.add_node("b1", "beta one");
    let b2 = b.add_node("b2", "beta two");
    let x = b.add_node("x", "bridge x");
    let y = b.add_node("y", "target y");
    let w = b.add_node("w", "bridge w");
    b.add_edge(a, x, "e");
    b.add_edge(b1, x, "e");
    b.add_edge(a, y, "e");
    b.add_edge(x, y, "e");
    b.add_edge(b2, w, "e");
    b.add_edge(w, y, "e");
    let g = b.build();

    let idx = InvertedIndex::build(&g);
    let query = ParsedQuery::parse(&idx, "alpha beta");
    assert_eq!(query.num_keywords(), 2);
    let params = SearchParams::default().with_top_k(3).with_explicit_activation(vec![0; 6]);

    let seq = SeqEngine::new().search(&g, &query, &params);
    // x is central at depth 1; y and w complete at depth 2.
    let y_answer = seq
        .answers
        .iter()
        .find(|ans| ans.central == y)
        .expect("y-centered answer exists");
    assert!(
        !y_answer.contains_node(b1),
        "b1 reachable only through the frozen x must not appear: {:?}",
        y_answer.nodes
    );
    assert!(
        !y_answer.contains_node(x),
        "the frozen x never expanded to y: {:?}",
        y_answer.nodes
    );
    assert!(y_answer.contains_node(w), "the true beta path runs through w");
    assert!(y_answer.contains_node(b2));

    // CPU-Par-d records the actual expansion paths; the matrix engines'
    // gated extraction must agree exactly.
    let dyn_ = DynParEngine::new(2).search(&g, &query, &params);
    assert_eq!(seq.answers.len(), dyn_.answers.len());
    for (m, d) in seq.answers.iter().zip(&dyn_.answers) {
        assert_eq!(m.central, d.central);
        assert_eq!(m.nodes, d.nodes);
        assert_eq!(m.edges, d.edges);
        assert_eq!(m.keyword_edges, d.keyword_edges);
    }
}
