//! Fig. 3: distribution of nodes over minimum activation levels for
//! α ∈ {0.05, 0.1, 0.4} on the larger dataset.

use central::activation::{level_distribution, ActivationConfig};
use datagen::synthetic::SyntheticConfig;
use eval::runner::ExperimentSink;
use eval::Table;
use serde_json::json;

/// The α values plotted in Fig. 3.
pub const ALPHAS: [f32; 3] = [0.05, 0.1, 0.4];

/// Print the Fig. 3 histogram and persist the JSON record.
pub fn run() -> serde_json::Value {
    println!("== Fig. 3: node distribution over minimum activation level ==");
    let ds = SyntheticConfig::wiki2018_sim().generate();
    let g = &ds.graph;
    let a = kgraph::sampling::estimate_average_distance_sources(g, 24, 64, 32, 3).mean;
    println!("dataset {} (estimated A = {a:.2}; paper used A = 3.68)", ds.config.name);

    let mut table = Table::new(vec!["alpha", "0", "1", "2", "3", ">=4"]);
    let mut series = Vec::new();
    let n = g.num_nodes() as f64;
    for alpha in ALPHAS {
        let cfg = ActivationConfig { alpha, average_distance: a };
        let levels: Vec<u8> = g.weights().iter().map(|&w| cfg.level_for_weight(w)).collect();
        let hist = level_distribution(&levels);
        let pct: Vec<f64> = hist.iter().map(|&c| 100.0 * c as f64 / n).collect();
        table.row(vec![
            format!("α-{alpha}"),
            format!("{:.1}%", pct[0]),
            format!("{:.1}%", pct[1]),
            format!("{:.1}%", pct[2]),
            format!("{:.1}%", pct[3]),
            format!("{:.1}%", pct[4]),
        ]);
        series.push(json!({ "alpha": alpha, "histogram": hist, "percent": pct }));
    }
    table.print();
    println!("(paper's shape: most nodes at small levels; larger α shifts mass lower)\n");
    let record = json!({
        "experiment": "fig3",
        "dataset": ds.config.name,
        "avg_distance": a,
        "nodes": g.num_nodes(),
        "series": series,
    });
    if let Ok(path) = ExperimentSink::new().write("fig3_activation_dist", &record) {
        println!("json: {}", path.display());
    }
    record
}
