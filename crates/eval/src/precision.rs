//! Top-k precision (paper Sec. VI-B): "the percentage of relevant answers
//! that appear in top-k results".

use datagen::{PlantedDataset, PlantedQuery};
use kgraph::NodeId;
use serde::Serialize;

/// Top-k precision of a ranked answer list: the fraction of the first `k`
/// answers judged relevant. With fewer than `k` answers, the denominator
/// is still `k` (missing answers count as misses, as in the paper's
/// evaluation where engines that time out score low).
pub fn top_k_precision<F>(answers: &[Vec<NodeId>], k: usize, judge: F) -> f64
where
    F: Fn(&[NodeId]) -> bool,
{
    if k == 0 {
        return 0.0;
    }
    let relevant = answers.iter().take(k).filter(|a| judge(a)).count();
    relevant as f64 / k as f64
}

/// Effectiveness results of one engine on one query: precision at 5/10/20,
/// matching the three panels of Figs. 11–12.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct EffectivenessReport {
    /// Precision over the top 5 answers.
    pub p_at_5: f64,
    /// Precision over the top 10 answers.
    pub p_at_10: f64,
    /// Precision over the top 20 answers.
    pub p_at_20: f64,
}

impl EffectivenessReport {
    /// Judge a ranked list of answer node sets against a planted query.
    pub fn evaluate(
        dataset: &PlantedDataset,
        query: &PlantedQuery,
        answers: &[Vec<NodeId>],
    ) -> Self {
        let judge = |nodes: &[NodeId]| dataset.judge(query, nodes);
        EffectivenessReport {
            p_at_5: top_k_precision(answers, 5, judge),
            p_at_10: top_k_precision(answers, 10, judge),
            p_at_20: top_k_precision(answers, 20, judge),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_counts_relevant_prefix() {
        let answers: Vec<Vec<NodeId>> = (0..10).map(|i| vec![NodeId(i)]).collect();
        // even node ids are "relevant"
        let judge = |a: &[NodeId]| a[0].0.is_multiple_of(2);
        assert_eq!(top_k_precision(&answers, 10, judge), 0.5);
        assert_eq!(top_k_precision(&answers, 1, judge), 1.0);
        assert_eq!(top_k_precision(&answers, 2, judge), 0.5);
    }

    #[test]
    fn missing_answers_count_as_misses() {
        let answers = vec![vec![NodeId(0)]];
        let judge = |_: &[NodeId]| true;
        assert_eq!(top_k_precision(&answers, 5, judge), 0.2);
        assert_eq!(top_k_precision(&[], 5, judge), 0.0);
        assert_eq!(top_k_precision(&answers, 0, judge), 0.0);
    }
}
