//! A sharded, byte-budgeted LRU result cache for the serving path.
//!
//! The paper's own workload statistics (Table V's `kwf` column) show
//! keyword frequency is heavily skewed — a hosted WikiSearch answers the
//! same few keyword sets over and over. This module lets the serving
//! layer answer a repeated query from memory instead of re-running the
//! two-stage search, without ever changing an answer:
//!
//! * **Keying** — a [`QueryKey`] pairs the *normalized* query (the
//!   sorted, deduplicated, analyzed term list produced by
//!   `textindex::normalize_query`) with a bit-exact
//!   [`ParamsFingerprint`](crate::config::ParamsFingerprint) of the
//!   [`SearchParams`]. Word order, capitalization, duplicates and
//!   stopwords collapse onto one slot; any α/k/λ/pruning difference keys
//!   a distinct slot, so cached answers can never alias across knobs.
//! * **Sharding** — [`ShardedLruCache`] splits the key space over `N`
//!   shards (default [`DEFAULT_SHARDS`]), each behind its own mutex, so
//!   the hit path of one query never contends with a hit on another
//!   shard; there is no global lock anywhere.
//! * **Budget & admission** — capacity is counted in (caller-estimated)
//!   bytes, split evenly across shards. An entry larger than one shard's
//!   budget is never admitted ([`CacheStats::bypasses`]) — a single
//!   pathological answer set cannot wipe out the working set.
//! * **Eviction** — least-recently-used per shard: every get/insert
//!   stamps the entry with the shard's logical clock; when a shard runs
//!   over budget, lowest stamps are evicted until it fits.
//! * **Accounting** — per-shard hit/miss/insert/eviction counters are
//!   maintained under the same lock as the map, so a [`CacheStats`]
//!   snapshot always satisfies `hits + misses == lookups`.
//!
//! The cache is value-generic (`V: Clone`); the serving layer stores
//! `Arc`-wrapped result payloads so a hit clones a pointer, not an
//! answer set.

use crate::config::{ParamsFingerprint, SearchParams};
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default shard count of [`ShardedLruCache::new`]. Eight shards keep
/// per-shard scans short while comfortably exceeding the concurrency of
/// the CLI's default 4-worker server.
pub const DEFAULT_SHARDS: usize = 8;

/// The cache key of one search: normalized query terms + parameter
/// fingerprint.
///
/// ```
/// use central::{cache::QueryKey, SearchParams};
/// use textindex::normalize_query;
///
/// let p = SearchParams::default();
/// let a = QueryKey::new(normalize_query("Einstein physics"), &p);
/// let b = QueryKey::new(normalize_query("the physics of EINSTEIN"), &p);
/// assert_eq!(a, b);
/// let narrow = QueryKey::new(normalize_query("Einstein physics"), &p.with_top_k(1));
/// assert_ne!(a, narrow);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryKey {
    terms: Vec<String>,
    params: ParamsFingerprint,
}

impl QueryKey {
    /// Build a key from analyzed query terms and the search parameters.
    /// `terms` is re-sorted and deduplicated defensively, so passing
    /// either `textindex::normalize_query` output (already canonical) or
    /// raw `analyze_unique` output (query order) yields the same key.
    pub fn new(mut terms: Vec<String>, params: &SearchParams) -> Self {
        terms.sort_unstable();
        terms.dedup();
        QueryKey { terms, params: params.fingerprint() }
    }

    /// `true` if the query normalized to no terms at all (stopword-only
    /// or empty input). Such queries must bypass the cache: the engine's
    /// empty-query behaviour is already O(1).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The normalized term list (sorted, deduplicated).
    pub fn terms(&self) -> &[String] {
        &self.terms
    }

    /// Approximate heap footprint of the key itself, charged to the
    /// entry it keys.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.terms.iter().map(|t| 24 + t.len()).sum::<usize>()
    }
}

/// A point-in-time snapshot of the cache's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Total `get` calls.
    pub lookups: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing (`hits + misses == lookups`).
    pub misses: u64,
    /// Entries admitted (including replacements of an existing key).
    pub inserts: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Inserts refused by the admission policy (entry larger than one
    /// shard's byte budget).
    pub bypasses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Estimated bytes currently resident.
    pub bytes: usize,
    /// Total configured byte budget.
    pub capacity_bytes: usize,
    /// Number of shards.
    pub shards: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// One cached entry: the value, its charged size, and its LRU stamp.
struct Entry<V> {
    value: V,
    bytes: usize,
    stamp: u64,
}

/// Mutable state of one shard. Counters live inside the mutex so every
/// snapshot is internally consistent (`hits + misses == lookups` holds
/// exactly, never transiently off by an in-flight increment).
struct ShardState<K, V> {
    entries: HashMap<K, Entry<V>>,
    bytes: usize,
    /// Logical clock: bumped on every get/insert, stamped onto the
    /// touched entry. Lowest stamp == least recently used.
    tick: u64,
    lookups: u64,
    hits: u64,
    misses: u64,
    inserts: u64,
    evictions: u64,
}

impl<K, V> Default for ShardState<K, V> {
    fn default() -> Self {
        ShardState {
            entries: HashMap::new(),
            bytes: 0,
            tick: 0,
            lookups: 0,
            hits: 0,
            misses: 0,
            inserts: 0,
            evictions: 0,
        }
    }
}

/// A sharded LRU cache with a byte budget. See the module docs for the
/// design; see [`QueryKey`] for the intended key type.
///
/// ```
/// use central::cache::ShardedLruCache;
///
/// let cache: ShardedLruCache<String, u32> = ShardedLruCache::new(1024);
/// assert_eq!(cache.get(&"q".to_string()), None);
/// cache.insert("q".to_string(), 7, 100);
/// assert_eq!(cache.get(&"q".to_string()), Some(7));
/// let stats = cache.stats();
/// assert_eq!((stats.lookups, stats.hits, stats.misses), (2, 1, 1));
/// ```
pub struct ShardedLruCache<K, V> {
    shards: Box<[Mutex<ShardState<K, V>>]>,
    hasher: RandomState,
    /// Per-shard byte budget (`capacity / shards`, at least 1).
    shard_budget: usize,
    /// Admission threshold: entries larger than this are never cached.
    max_entry_bytes: usize,
    capacity_bytes: usize,
    bypasses: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLruCache<K, V> {
    /// A cache with `capacity_bytes` total budget over
    /// [`DEFAULT_SHARDS`] shards. A zero capacity still constructs (one
    /// byte of budget, so effectively nothing is ever admitted) — the
    /// serving layer treats 0 as "disabled" and skips construction
    /// entirely.
    pub fn new(capacity_bytes: usize) -> Self {
        Self::with_shards(capacity_bytes, DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (rounded up to a power of
    /// two, minimum 1). The admission threshold is one shard's budget.
    pub fn with_shards(capacity_bytes: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let shard_budget = (capacity_bytes / shards).max(1);
        ShardedLruCache {
            shards: (0..shards).map(|_| Mutex::new(ShardState::default())).collect(),
            hasher: RandomState::new(),
            shard_budget,
            max_entry_bytes: shard_budget,
            capacity_bytes,
            bypasses: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &K) -> &Mutex<ShardState<K, V>> {
        // Shard count is a power of two, so the low hash bits select.
        let h = self.hasher.hash_one(key);
        &self.shards[(h as usize) & (self.shards.len() - 1)]
    }

    /// Look `key` up, refreshing its LRU stamp on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut shard = self.shard_for(key).lock();
        shard.tick += 1;
        shard.lookups += 1;
        let tick = shard.tick;
        match shard.entries.get_mut(key) {
            Some(entry) => {
                entry.stamp = tick;
                let value = entry.value.clone();
                shard.hits += 1;
                Some(value)
            }
            None => {
                shard.misses += 1;
                None
            }
        }
    }

    /// Insert `value` under `key`, charged as `bytes`. Returns `false`
    /// if the admission policy refused it (oversized). Replacing an
    /// existing key re-charges it. The shard evicts least-recently-used
    /// entries until it is back under budget; the entry just inserted
    /// carries the newest stamp and is evicted last.
    pub fn insert(&self, key: K, value: V, bytes: usize) -> bool {
        if bytes > self.max_entry_bytes {
            self.bypasses.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut shard = self.shard_for(&key).lock();
        shard.tick += 1;
        shard.inserts += 1;
        let stamp = shard.tick;
        if let Some(old) = shard.entries.insert(key, Entry { value, bytes, stamp }) {
            shard.bytes -= old.bytes;
        }
        shard.bytes += bytes;
        while shard.bytes > self.shard_budget && shard.entries.len() > 1 {
            // O(len) victim scan; shard budgets keep len small enough
            // that a linked-list LRU would cost more in bookkeeping.
            let victim = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
                .expect("non-empty shard");
            if let Some(evicted) = shard.entries.remove(&victim) {
                shard.bytes -= evicted.bytes;
                shard.evictions += 1;
            }
        }
        true
    }

    /// Aggregate the per-shard counters into one snapshot.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats {
            capacity_bytes: self.capacity_bytes,
            shards: self.shards.len(),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            ..CacheStats::default()
        };
        for shard in self.shards.iter() {
            let shard = shard.lock();
            stats.lookups += shard.lookups;
            stats.hits += shard.hits;
            stats.misses += shard.misses;
            stats.inserts += shard.inserts;
            stats.evictions += shard.evictions;
            stats.entries += shard.entries.len();
            stats.bytes += shard.bytes;
        }
        stats
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Drop every entry (counters are kept — they describe history, not
    /// contents).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            shard.entries.clear();
            shard.bytes = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use textindex::normalize_query;

    fn key(raw: &str, params: &SearchParams) -> QueryKey {
        QueryKey::new(normalize_query(raw), params)
    }

    #[test]
    fn normalized_keys_collide_across_case_order_and_stopwords() {
        let p = SearchParams::default();
        let base = key("Einstein physics", &p);
        assert_eq!(base, key("physics  EINSTEIN", &p), "order + case");
        assert_eq!(base, key("the physics of einstein", &p), "stopwords");
        assert_eq!(base, key("physics einstein physics", &p), "duplicates");
        assert_ne!(base, key("einstein", &p));
        assert_ne!(base, key("einstein physics relativity", &p));
    }

    #[test]
    fn same_terms_different_params_do_not_alias() {
        let p = SearchParams::default();
        let base = key("einstein physic", &p);
        assert_ne!(base, key("einstein physic", &p.clone().with_top_k(1)), "top-k in key");
        assert_ne!(base, key("einstein physic", &p.clone().with_alpha(0.4)), "alpha in key");
        assert_ne!(base, key("einstein physic", &p.clone().with_lambda(0.0)), "lambda in key");
        assert_ne!(base, key("einstein physic", &p.clone().with_average_distance(9.9)), "A in key");
    }

    #[test]
    fn empty_after_stopword_filtering_is_detectable_for_bypass() {
        let p = SearchParams::default();
        assert!(key("the of and", &p).is_empty());
        assert!(key("", &p).is_empty());
        assert!(!key("einstein", &p).is_empty());
    }

    #[test]
    fn get_insert_and_replace_round_trip() {
        let cache: ShardedLruCache<u32, &'static str> = ShardedLruCache::new(1 << 16);
        assert_eq!(cache.get(&1), None);
        assert!(cache.insert(1, "one", 10));
        assert!(cache.insert(2, "two", 10));
        assert_eq!(cache.get(&1), Some("one"));
        assert_eq!(cache.get(&2), Some("two"));
        assert!(cache.insert(1, "uno", 12), "replacement admitted");
        assert_eq!(cache.get(&1), Some("uno"));
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.bytes, 22, "replacement re-charges, no double count");
        assert_eq!(stats.inserts, 3);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.lookups, stats.hits + stats.misses);
    }

    #[test]
    fn lru_evicts_the_least_recently_touched_entry() {
        // One shard so eviction order is fully observable.
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::with_shards(100, 1);
        assert!(cache.insert(1, 10, 40));
        assert!(cache.insert(2, 20, 40));
        assert_eq!(cache.get(&1), Some(10), "touch 1 so 2 becomes LRU");
        assert!(cache.insert(3, 30, 40), "overflows the 100-byte budget");
        assert_eq!(cache.get(&2), None, "2 was least recently used");
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.get(&3), Some(30));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert!(stats.bytes <= 100);
    }

    #[test]
    fn oversized_entries_bypass_instead_of_wiping_the_shard() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::with_shards(80, 1);
        assert!(cache.insert(1, 10, 30));
        assert!(!cache.insert(2, 20, 200), "larger than the shard budget");
        assert_eq!(cache.get(&1), Some(10), "resident entry untouched");
        assert_eq!(cache.get(&2), None);
        let stats = cache.stats();
        assert_eq!(stats.bypasses, 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn eviction_never_removes_the_entry_being_inserted() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::with_shards(64, 1);
        for k in 0..10 {
            assert!(cache.insert(k, k, 60), "each entry nearly fills the shard");
            assert_eq!(cache.get(&k), Some(k), "the newest entry survives its own insert");
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 9);
    }

    #[test]
    fn shard_count_rounds_to_a_power_of_two() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::with_shards(1 << 12, 5);
        assert_eq!(cache.stats().shards, 8);
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::with_shards(1 << 12, 0);
        assert_eq!(cache.stats().shards, 1);
    }

    #[test]
    fn stats_add_up_under_concurrent_hammering() {
        let cache: ShardedLruCache<u64, u64> = ShardedLruCache::with_shards(1 << 10, 4);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let k = (t * 7 + i) % 32;
                        if cache.get(&k).is_none() {
                            cache.insert(k, k * 2, 16 + (k as usize % 48));
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.lookups, 8 * 200);
        assert_eq!(stats.hits + stats.misses, stats.lookups);
        assert!(stats.bytes <= stats.capacity_bytes);
        assert!(stats.hits > 0, "repeated keys must hit");
        assert_eq!(cache.len(), stats.entries);
    }

    #[test]
    fn hit_rate_is_well_defined() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(1 << 12);
        cache.insert(1, 1, 8);
        cache.get(&1);
        cache.get(&2);
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clear_empties_but_keeps_history() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(1 << 12);
        cache.insert(1, 1, 8);
        cache.get(&1);
        cache.clear();
        assert!(cache.is_empty());
        let stats = cache.stats();
        assert_eq!(stats.bytes, 0);
        assert_eq!(stats.hits, 1, "history survives clear");
    }
}
