//! GPU-Par (structural substitute): the paper's GPU kernel decomposition
//! executed on CPU threads.
//!
//! The paper's CUDA engine assigns **one warp per (frontier, BFS instance)
//! pair** and one warp lane per neighbor, and — unlike the CPU engine —
//! parallelizes the frontier enqueue, exploiting GDDR5X bandwidth. Without
//! the hardware we reproduce the *algorithmic structure* faithfully:
//!
//! * expansion fans out over flattened `(frontier, instance)` work items
//!   (the warp grid), with the per-neighbor inner loop kept sequential per
//!   item (a warp's lanes execute in lock step — on a CPU, a tight scalar
//!   loop is the honest analogue);
//! * frontier enqueue is a **parallel compaction**: per-block scan of
//!   `FIdentifier`, local buffers, then an ordered concatenation — the
//!   prefix-sum pattern of GPU BFS queue generation;
//! * identification is parallel over frontiers, as on the GPU.
//!
//! What this cannot reproduce is GDDR5X bandwidth and 10k-thread
//! occupancy; absolute GPU speedups are out of scope (see DESIGN.md §3).
//! What it does demonstrate — and what the test suite checks — is that the
//! fine-grained decomposition is race-free and returns the same answers.

use crate::bottom_up::{enqueue_parallel_compaction, expand_work_item, ExecStrategy, ExpandCtx};
use crate::budget::QueryBudget;
use crate::engine::{build_pool, run_matrix_search, KeywordSearchEngine, SearchOutcome};
use crate::error::SearchError;
use crate::session::SearchSession;
use crate::state::SearchState;
use crate::SearchParams;
use kgraph::KnowledgeGraph;
use rayon::prelude::*;
use textindex::ParsedQuery;

/// Fine-grained, GPU-kernel-shaped engine (the paper's **GPU-Par**,
/// structural reproduction).
pub struct GpuStyleEngine {
    pool: rayon::ThreadPool,
    threads: usize,
}

/// Block size of the parallel frontier compaction (a CUDA thread-block
/// analogue; the value only affects scheduling granularity).
const COMPACTION_BLOCK: usize = 4096;

struct GpuStrategy<'p> {
    pool: &'p rayon::ThreadPool,
}

impl ExecStrategy for GpuStrategy<'_> {
    fn enqueue(&self, state: &SearchState, out: &mut Vec<u32>) {
        // Parallel compaction — the GPU's scan + scatter, deterministic.
        enqueue_parallel_compaction(self.pool, state, out, COMPACTION_BLOCK);
    }

    fn identify(&self, state: &SearchState, frontiers: &[u32], level: u8, newly: &mut Vec<u32>) {
        newly.clear();
        let mut found: Vec<u32> = self.pool.install(|| {
            frontiers
                .par_iter()
                .copied()
                .filter(|&f| {
                    if !state.is_central(f) && state.row_complete(f) {
                        state.mark_central(f, level);
                        true
                    } else {
                        false
                    }
                })
                .collect()
        });
        found.sort_unstable();
        newly.extend(found);
    }

    fn expand(&self, ctx: &ExpandCtx<'_>, frontiers: &[u32], level: u8) {
        let q = ctx.state.num_keywords();
        // The warp grid: one work item per (frontier, BFS instance).
        self.pool.install(|| {
            (0..frontiers.len() * q).into_par_iter().for_each(|item| {
                let f = frontiers[item / q];
                let i = item % q;
                expand_work_item(ctx, f, i, level);
            });
        });
    }
}

impl GpuStyleEngine {
    /// Engine with `threads` workers standing in for the GPU's SMs.
    pub fn new(threads: usize) -> Self {
        GpuStyleEngine { pool: build_pool(threads), threads: threads.max(1) }
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl KeywordSearchEngine for GpuStyleEngine {
    fn name(&self) -> &'static str {
        "GPU-Par"
    }

    fn try_search_session(
        &self,
        session: &mut SearchSession,
        graph: &KnowledgeGraph,
        query: &ParsedQuery,
        params: &SearchParams,
        budget: &QueryBudget,
    ) -> Result<SearchOutcome, SearchError> {
        let strategy = GpuStrategy { pool: &self.pool };
        run_matrix_search(
            &strategy,
            self.name(),
            Some(&self.pool),
            session,
            graph,
            query,
            params,
            budget,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SeqEngine;
    use kgraph::GraphBuilder;
    use textindex::InvertedIndex;

    #[test]
    fn fine_grained_items_match_sequential() {
        // Star of hubs with three keyword clusters: stresses the
        // per-(frontier, instance) decomposition with shared frontiers.
        let mut b = GraphBuilder::new();
        let hub = b.add_node("hub", "junction");
        for i in 0..5 {
            let a = b.add_node(&format!("a{i}"), "alpha term");
            let x = b.add_node(&format!("x{i}"), "bridge");
            b.add_edge(a, x, "e");
            b.add_edge(x, hub, "e");
        }
        for i in 0..5 {
            let z = b.add_node(&format!("z{i}"), "omega term");
            b.add_edge(z, hub, "e");
        }
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let q = ParsedQuery::parse(&idx, "alpha omega");
        let params = SearchParams::default().with_average_distance(2.0);
        let seq = SeqEngine::new().search(&g, &q, &params);
        let gpu = GpuStyleEngine::new(4).search(&g, &q, &params);
        assert_eq!(seq.answers.len(), gpu.answers.len());
        for (a, b) in seq.answers.iter().zip(&gpu.answers) {
            assert_eq!(a.central, b.central);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.edges, b.edges);
        }
    }

    #[test]
    fn compaction_enqueue_preserves_order() {
        // Frontier order must be ascending node id, independent of block
        // boundaries — the ordered concatenation guarantees it.
        let mut b = GraphBuilder::new();
        let mut prev = b.add_node("n0", "alpha");
        for i in 1..50 {
            let v = b.add_node(&format!("n{i}"), if i == 49 { "omega" } else { "mid" });
            b.add_edge(prev, v, "e");
            prev = v;
        }
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let q = ParsedQuery::parse(&idx, "alpha omega");
        let params = SearchParams { max_level: 60, ..SearchParams::default() };
        let gpu = GpuStyleEngine::new(3).search(&g, &q, &params);
        let seq = SeqEngine::new().search(&g, &q, &params);
        assert_eq!(gpu.answers.len(), seq.answers.len());
        assert_eq!(gpu.stats.last_level, seq.stats.last_level);
    }
}
