//! Maximal r-radius subgraph index.
//!
//! EASE precomputes, for every candidate center, the subgraph within
//! radius `r`, and keeps only the **maximal** ones (balls not contained in
//! another ball). Containment filtering is what creates the
//! missed-answer anomaly the reproduced paper cites.

use kgraph::{KnowledgeGraph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One indexed r-radius subgraph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Ball {
    /// The center node.
    pub center: NodeId,
    /// Members sorted by node id, with hop distances from the center.
    pub members: Vec<(NodeId, u16)>,
}

impl Ball {
    /// Hop distance from the center to `v`, if `v` is in the ball.
    pub fn distance(&self, v: NodeId) -> Option<u16> {
        self.members
            .binary_search_by_key(&v, |&(m, _)| m)
            .ok()
            .map(|i| self.members[i].1)
    }

    /// `true` if this ball's member set is a subset of `other`'s.
    pub fn subset_of(&self, other: &Ball) -> bool {
        if self.members.len() > other.members.len() {
            return false;
        }
        self.members.iter().all(|&(m, _)| other.distance(m).is_some())
    }
}

/// The EASE index: maximal r-radius balls.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RadiusIndex {
    /// The index radius `r`.
    pub radius: u16,
    /// Maximal balls, ordered by center id.
    pub balls: Vec<Ball>,
    /// `true` if non-maximal balls were filtered (EASE's behaviour); the
    /// tests disable it to demonstrate the missed-answer anomaly.
    pub maximal_only: bool,
    /// Wall-clock build time.
    #[serde(skip)]
    pub build_time: std::time::Duration,
}

impl RadiusIndex {
    /// Build the index: one bounded BFS per node plus (when
    /// `maximal_only`) pairwise containment filtering — the O(|V|²)
    /// worst-case step behind "EASE is not scalable for large graphs".
    pub fn build(graph: &KnowledgeGraph, radius: u16, maximal_only: bool) -> Self {
        let start = std::time::Instant::now();
        let n = graph.num_nodes();
        let mut balls: Vec<Ball> = Vec::with_capacity(n);
        let mut dist = vec![u16::MAX; n];
        let mut touched: Vec<usize> = Vec::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        for c in graph.nodes() {
            queue.clear();
            touched.clear();
            dist[c.index()] = 0;
            touched.push(c.index());
            queue.push_back(c);
            let mut members: Vec<(NodeId, u16)> = vec![(c, 0)];
            while let Some(u) = queue.pop_front() {
                let d = dist[u.index()];
                if d >= radius {
                    continue;
                }
                for adj in graph.neighbors(u) {
                    let t = adj.target();
                    if dist[t.index()] == u16::MAX {
                        dist[t.index()] = d + 1;
                        touched.push(t.index());
                        members.push((t, d + 1));
                        queue.push_back(t);
                    }
                }
            }
            members.sort_unstable_by_key(|&(m, _)| m);
            balls.push(Ball { center: c, members });
            for &i in &touched {
                dist[i] = u16::MAX;
            }
        }
        if maximal_only {
            // Drop balls strictly contained in another ball (ties keep the
            // lower center id).
            let mut keep = vec![true; balls.len()];
            for i in 0..balls.len() {
                if !keep[i] {
                    continue;
                }
                for j in 0..balls.len() {
                    if i == j || !keep[j] {
                        continue;
                    }
                    let strict = balls[i].members.len() < balls[j].members.len()
                        || (balls[i].members.len() == balls[j].members.len() && j < i);
                    if strict && balls[i].subset_of(&balls[j]) {
                        keep[i] = false;
                        break;
                    }
                }
            }
            balls = balls.into_iter().zip(keep).filter_map(|(b, k)| k.then_some(b)).collect();
        }
        RadiusIndex { radius, balls, maximal_only, build_time: start.elapsed() }
    }

    /// Total member entries across balls (the storage measure).
    pub fn total_entries(&self) -> usize {
        self.balls.iter().map(|b| b.members.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;

    fn path(n: usize) -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let ids: Vec<_> = (0..n).map(|i| b.add_node(&format!("n{i}"), "x")).collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], "e");
        }
        b.build()
    }

    #[test]
    fn balls_contain_radius_neighborhoods() {
        let g = path(7);
        let idx = RadiusIndex::build(&g, 2, false);
        assert_eq!(idx.balls.len(), 7);
        let mid = &idx.balls[3];
        assert_eq!(mid.members.len(), 5); // n1..n5
        assert_eq!(mid.distance(NodeId(1)), Some(2));
        assert_eq!(mid.distance(NodeId(3)), Some(0));
        assert_eq!(mid.distance(NodeId(6)), None);
    }

    #[test]
    fn maximality_filter_drops_contained_balls() {
        // On a path, end balls are subsets of their inward neighbors'.
        let g = path(7);
        let all = RadiusIndex::build(&g, 2, false);
        let maximal = RadiusIndex::build(&g, 2, true);
        assert!(maximal.balls.len() < all.balls.len());
        // No remaining ball is contained in another.
        for a in &maximal.balls {
            for b in &maximal.balls {
                if a.center != b.center {
                    assert!(
                        !(a.members.len() < b.members.len() && a.subset_of(b)),
                        "{} still contained in {}",
                        a.center,
                        b.center
                    );
                }
            }
        }
    }

    #[test]
    fn subset_detection() {
        let g = path(5);
        let idx = RadiusIndex::build(&g, 1, false);
        let end = &idx.balls[0]; // {n0, n1}
        let inner = &idx.balls[1]; // {n0, n1, n2}
        assert!(end.subset_of(inner));
        assert!(!inner.subset_of(end));
    }

    #[test]
    fn entries_grow_with_radius() {
        let g = path(12);
        let r1 = RadiusIndex::build(&g, 1, false);
        let r3 = RadiusIndex::build(&g, 3, false);
        assert!(r3.total_entries() > r1.total_entries());
        assert!(r3.build_time.as_nanos() > 0);
    }
}
