//! Minimum activation levels — the Penalty-and-Reward mapping of
//! Sec. IV of the paper (Eqs. 3–5).
//!
//! An unweighted Central Graph search would reduce to arbitrary concurrent
//! BFS. The paper instead gives every node a **minimum activation level**
//! `a_i` derived from its degree-of-summary weight `w_i ∈ [0, 1]`: the node
//! only participates in search once the global BFS level reaches `a_i`.
//! Informative (low-weight) nodes activate early; summary hubs activate
//! late and therefore rarely enter compact answers.
//!
//! The mapping centers on the dataset's average shortest distance `A`
//! (Table II) and a user-tunable preference `α ∈ (0, 1)`:
//!
//! ```text
//! Penalty(v) = A · (w − α) / (1 − α)   if w > α        (Eq. 3)
//! Reward(v)  = A · (α − w) / α         if w < α        (Eq. 4)
//! a_v = round(A − Reward)   if w < α
//!     = round(A)            if w = α                   (Eq. 5)
//!     = round(A + Penalty)  if w > α
//! ```
//!
//! so `a_v` ranges from `0` (maximal reward) to `round(2A)` (maximal
//! penalty). A larger `α` maps more nodes below the average — the user's
//! lever for admitting summary nodes (the paper's `data mining` example).

use kgraph::{KnowledgeGraph, NodeId};
use serde::{Deserialize, Serialize};

/// Inputs of the Penalty-and-Reward mapping.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ActivationConfig {
    /// User preference `α ∈ (0, 1)`.
    pub alpha: f32,
    /// Dataset average shortest distance `A` (sampled, Table II).
    pub average_distance: f64,
}

impl ActivationConfig {
    /// Minimum activation level for a normalized weight `w ∈ [0, 1]`
    /// (Eqs. 3–5). The result is clamped to `[0, 254]` so that `255`
    /// remains the ∞ sentinel of the hitting-level matrix.
    pub fn level_for_weight(&self, w: f32) -> u8 {
        let a = self.average_distance;
        let alpha = self.alpha as f64;
        let w = w as f64;
        let value = if w > alpha {
            a + a * (w - alpha) / (1.0 - alpha) // penalty
        } else if w < alpha {
            a - a * (alpha - w) / alpha // reward
        } else {
            a
        };
        value.round().clamp(0.0, 254.0) as u8
    }
}

/// Per-query activation oracle: either computed on the fly from node
/// weights (the paper computes `a_f` from `w_f` and `α` inside the
/// expansion kernel, Alg. 2 line 4) or an explicit per-node table
/// (tests, ablations).
#[derive(Clone)]
pub enum ActivationMap<'g> {
    /// Compute from the graph's normalized weights.
    Computed {
        /// The graph whose weights are consulted.
        graph: &'g KnowledgeGraph,
        /// Mapping parameters.
        config: ActivationConfig,
    },
    /// Explicit per-node levels (length = number of nodes).
    Explicit(&'g [u8]),
}

impl<'g> ActivationMap<'g> {
    /// Minimum activation level of `v`.
    #[inline]
    pub fn level(&self, v: NodeId) -> u8 {
        match self {
            ActivationMap::Computed { graph, config } => config.level_for_weight(graph.weight(v)),
            ActivationMap::Explicit(levels) => levels[v.index()],
        }
    }

    /// Materialize all levels (used by the Fig. 3 distribution harness).
    pub fn table(&self, num_nodes: usize) -> Vec<u8> {
        (0..num_nodes).map(|i| self.level(NodeId::from_index(i))).collect()
    }
}

/// Histogram of activation levels: counts for levels `0, 1, 2, 3` and a
/// final bucket for `≥ 4`, exactly the x-axis of the paper's Fig. 3.
pub fn level_distribution(levels: &[u8]) -> [usize; 5] {
    let mut hist = [0usize; 5];
    for &l in levels {
        hist[(l as usize).min(4)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: f64 = 3.68; // the paper's wiki2018 estimate

    fn cfg(alpha: f32) -> ActivationConfig {
        ActivationConfig { alpha, average_distance: A }
    }

    #[test]
    fn weight_equal_alpha_maps_to_average() {
        assert_eq!(cfg(0.1).level_for_weight(0.1), A.round() as u8);
    }

    #[test]
    fn extremes_map_to_zero_and_double_average() {
        // w = 0: full reward ⇒ level 0.
        assert_eq!(cfg(0.1).level_for_weight(0.0), 0);
        // w = 1: full penalty ⇒ round(2A).
        assert_eq!(cfg(0.1).level_for_weight(1.0), (2.0 * A).round() as u8);
    }

    #[test]
    fn mapping_is_monotone_in_weight() {
        let c = cfg(0.1);
        let mut prev = 0u8;
        for i in 0..=100 {
            let w = i as f32 / 100.0;
            let l = c.level_for_weight(w);
            assert!(l >= prev, "activation must not decrease with weight");
            prev = l;
        }
    }

    #[test]
    fn larger_alpha_never_raises_a_nodes_level() {
        // Sec. IV-C: larger α "decreases" effective weights — every node's
        // activation level under α = 0.4 is ≤ its level under α = 0.05.
        let lo = cfg(0.05);
        let hi = cfg(0.4);
        for i in 0..=100 {
            let w = i as f32 / 100.0;
            assert!(
                hi.level_for_weight(w) <= lo.level_for_weight(w),
                "w = {w}: α = 0.4 gave a higher level than α = 0.05"
            );
        }
    }

    #[test]
    fn clamping_protects_the_infinity_sentinel() {
        let c = ActivationConfig { alpha: 0.01, average_distance: 1000.0 };
        assert!(c.level_for_weight(1.0) <= 254);
        assert_eq!(c.level_for_weight(0.0), 0);
    }

    #[test]
    fn closed_form_of_eqs_3_to_5_on_exact_inputs() {
        // A = 4, α = 0.5 keeps every intermediate value exact in binary
        // floating point, so the three branches can be checked against
        // hand-evaluated Eq. 3 (penalty), Eq. 4 (reward) and Eq. 5.
        let c = ActivationConfig { alpha: 0.5, average_distance: 4.0 };
        // Reward branch (w < α): a = A − A(α − w)/α = 4 − 4·0.25/0.5 = 2.
        assert_eq!(c.level_for_weight(0.25), 2);
        // Eq. 5 middle case (w = α): a = A = 4.
        assert_eq!(c.level_for_weight(0.5), 4);
        // Penalty branch (w > α): a = A + A(w − α)/(1 − α) = 4 + 4·0.25/0.5 = 6.
        assert_eq!(c.level_for_weight(0.75), 6);
    }

    #[test]
    fn levels_round_to_the_nearest_integer() {
        // Eq. 5 rounds, it does not truncate: A = 3.68 sits between
        // levels 3 and 4 and must land on 4 at w = α.
        assert_eq!(cfg(0.5).level_for_weight(0.5), 4);
        // A = 3.4 rounds down…
        let low = ActivationConfig { alpha: 0.5, average_distance: 3.4 };
        assert_eq!(low.level_for_weight(0.5), 3);
        // …and the half-way point 3.5 rounds away from zero, to 4.
        let half = ActivationConfig { alpha: 0.5, average_distance: 3.5 };
        assert_eq!(half.level_for_weight(0.5), 4);
    }

    #[test]
    fn boundary_alpha_values_stay_in_range() {
        // α near its open-interval boundaries must keep every level inside
        // [0, round(2A)] — no overflow, no sentinel collision.
        for alpha in [0.001f32, 0.01, 0.99, 0.999] {
            let c = cfg(alpha);
            let ceiling = (2.0 * A).round() as u8;
            for i in 0..=100 {
                let w = i as f32 / 100.0;
                let l = c.level_for_weight(w);
                assert!(l <= ceiling, "α = {alpha}, w = {w}: level {l} above 2A");
            }
            assert_eq!(c.level_for_weight(0.0), 0, "full reward at α = {alpha}");
            assert_eq!(c.level_for_weight(1.0), ceiling, "full penalty at α = {alpha}");
        }
    }

    #[test]
    fn mapping_is_continuous_across_the_alpha_pivot() {
        // Approaching w = α from either side converges to round(A): the
        // penalty and reward branches agree at the pivot (no jump in Eq. 5).
        let c = cfg(0.3);
        let at_pivot = c.level_for_weight(0.3);
        let below = c.level_for_weight(0.3 - 1e-6);
        let above = c.level_for_weight(0.3 + 1e-6);
        assert_eq!(at_pivot, A.round() as u8);
        assert_eq!(below, at_pivot);
        assert_eq!(above, at_pivot);
    }

    #[test]
    fn distribution_buckets_match_fig3_axes() {
        let hist = level_distribution(&[0, 0, 1, 2, 3, 4, 9, 200]);
        assert_eq!(hist, [2, 1, 1, 1, 3]);
    }

    #[test]
    fn explicit_map_reads_table() {
        let levels = vec![5u8, 7, 0];
        let m = ActivationMap::Explicit(&levels);
        assert_eq!(m.level(NodeId(1)), 7);
        assert_eq!(m.table(3), levels);
    }
}
