//! Error type for graph construction and I/O.

use std::fmt;

/// Errors produced by this crate.
#[derive(Debug)]
pub enum KgraphError {
    /// A node id referenced an index outside the graph.
    NodeOutOfBounds {
        /// The offending node id.
        id: u32,
        /// The graph's node count.
        num_nodes: usize,
    },
    /// A parse error while reading a text format (TSV or N-Triples).
    Parse {
        /// 1-based line number (0 when not line-oriented).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A JSON (de)serialization failure.
    Json(String),
    /// A malformed, truncated, corrupted or wrong-version `.wsnap`
    /// snapshot file.
    Snapshot {
        /// What failed validation.
        message: String,
    },
    /// The builder was asked to create a graph that exceeds `u32` ids.
    TooLarge {
        /// Which id space overflowed ("nodes" or "labels").
        what: &'static str,
        /// The offending count.
        count: usize,
    },
}

impl fmt::Display for KgraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KgraphError::NodeOutOfBounds { id, num_nodes } => {
                write!(f, "node id v{id} out of bounds for graph with {num_nodes} nodes")
            }
            KgraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            KgraphError::Io(e) => write!(f, "i/o error: {e}"),
            KgraphError::Snapshot { message } => write!(f, "snapshot error: {message}"),
            KgraphError::Json(e) => write!(f, "json error: {e}"),
            KgraphError::TooLarge { what, count } => {
                write!(f, "{what} count {count} exceeds u32 id space")
            }
        }
    }
}

impl std::error::Error for KgraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KgraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for KgraphError {
    fn from(e: std::io::Error) -> Self {
        KgraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = KgraphError::NodeOutOfBounds { id: 9, num_nodes: 3 };
        assert!(e.to_string().contains("v9"));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn io_error_converts_and_chains_source() {
        let e: KgraphError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
