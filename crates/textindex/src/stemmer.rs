//! A complete Porter stemmer (M.F. Porter, *An algorithm for suffix
//! stripping*, 1980) — the "word stemming" step the paper applies before
//! building its keyword lists (Sec. II).
//!
//! This is a faithful Rust port of the reference algorithm, including the
//! two widely adopted revisions (`bli → ble` replaced by `abli → able` is
//! *not* taken; `logi → log` *is* taken, as in the author's updated C
//! version). Only ASCII-lowercase words are stemmed; anything containing
//! non-ASCII bytes is returned unchanged (stemming rules are
//! English-specific).

/// Stem `word` with the Porter algorithm.
///
/// ```
/// use textindex::porter_stem;
/// assert_eq!(porter_stem("relational"), "relat");
/// assert_eq!(porter_stem("databases"), "databas");
/// assert_eq!(porter_stem("mining"), "mine");
/// ```
pub fn porter_stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut s = Stemmer { b: word.as_bytes().to_vec(), k: word.len() - 1, j: 0 };
    s.step1ab();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5();
    String::from_utf8(s.b[..=s.k].to_vec()).expect("ascii in, ascii out")
}

struct Stemmer {
    /// The word buffer (only `b[..=k]` is live).
    b: Vec<u8>,
    /// Index of the last live byte.
    k: usize,
    /// Stem length set by `ends`: the number of bytes preceding the
    /// matched suffix (may be 0 when the suffix is the whole word).
    j: usize,
}

impl Stemmer {
    /// Is `b[i]` a consonant? (`y` counts as a consonant at position 0 or
    /// after a vowel.)
    fn cons(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.cons(i - 1)
                }
            }
            _ => true,
        }
    }

    /// The *measure* of the stem `b[..j]`: the number of
    /// vowel–consonant sequences `m` in `[C](VC)^m[V]`.
    fn measure(&self) -> usize {
        let mut n = 0;
        let mut i = 0;
        let end = self.j; // measure the stem b[..end]
        loop {
            if i >= end {
                return n;
            }
            if !self.cons(i) {
                break;
            }
            i += 1;
        }
        i += 1;
        loop {
            loop {
                if i >= end {
                    return n;
                }
                if self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
            n += 1;
            loop {
                if i >= end {
                    return n;
                }
                if !self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
        }
    }

    /// Does the stem `b[..j]` contain a vowel?
    fn vowel_in_stem(&self) -> bool {
        (0..self.j).any(|i| !self.cons(i))
    }

    /// Does `b[..=i]` end with a double consonant?
    fn double_cons(&self, i: usize) -> bool {
        i >= 1 && self.b[i] == self.b[i - 1] && self.cons(i)
    }

    /// Does `b[..=i]` end consonant–vowel–consonant, with the final
    /// consonant not `w`, `x` or `y`? (Restores a trailing `e`, as in
    /// `cav(e)`, `lov(e)`.)
    fn cvc(&self, i: usize) -> bool {
        if i < 2 || !self.cons(i) || self.cons(i - 1) || !self.cons(i - 2) {
            return false;
        }
        !matches!(self.b[i], b'w' | b'x' | b'y')
    }

    /// Does the live buffer end with `suffix`? Sets `j` on success.
    fn ends(&mut self, suffix: &[u8]) -> bool {
        let len = suffix.len();
        if len > self.k + 1 {
            return false;
        }
        if &self.b[self.k + 1 - len..=self.k] != suffix {
            return false;
        }
        self.j = self.k + 1 - len;
        true
    }

    /// Replace the suffix matched by `ends` with `s` and update `k`.
    /// Callers guarantee the result is non-empty.
    fn set_to(&mut self, s: &[u8]) {
        debug_assert!(self.j + s.len() > 0, "set_to would empty the word");
        self.b.truncate(self.j);
        self.b.extend_from_slice(s);
        self.k = self.j + s.len() - 1;
    }

    /// `set_to` guarded by `measure() > 0`.
    fn replace_if_m_gt_0(&mut self, s: &[u8]) {
        if self.measure() > 0 {
            self.set_to(s);
        }
    }

    /// Step 1a (plurals) and 1b (-ed, -ing).
    fn step1ab(&mut self) {
        if self.b[self.k] == b's' {
            if self.ends(b"sses") {
                self.k -= 2;
            } else if self.ends(b"ies") {
                self.set_to(b"i");
            } else if self.b[self.k - 1] != b's' {
                self.k -= 1;
            }
        }
        if self.ends(b"eed") {
            if self.measure() > 0 {
                self.k -= 1;
            }
        } else if (self.ends(b"ed") || self.ends(b"ing")) && self.vowel_in_stem() {
            // vowel_in_stem ⇒ the stem is non-empty, so `j - 1` is safe.
            self.k = self.j - 1;
            self.b.truncate(self.k + 1);
            if self.ends(b"at") {
                self.set_to(b"ate");
            } else if self.ends(b"bl") {
                self.set_to(b"ble");
            } else if self.ends(b"iz") {
                self.set_to(b"ize");
            } else if self.double_cons(self.k) {
                if !matches!(self.b[self.k], b'l' | b's' | b'z') {
                    self.k -= 1;
                }
            } else if self.measure_at_k() == 1 && self.cvc(self.k) {
                self.j = self.k + 1;
                self.set_to(b"e");
            }
        }
        self.b.truncate(self.k + 1);
    }

    /// Measure of the whole live word, used inside step 1b.
    fn measure_at_k(&mut self) -> usize {
        let saved = self.j;
        self.j = self.k + 1;
        let m = self.measure();
        self.j = saved;
        m
    }

    /// Step 1c: terminal `y` → `i` when there is another vowel in the stem.
    fn step1c(&mut self) {
        if self.ends(b"y") && self.vowel_in_stem() {
            self.b[self.k] = b'i';
        }
    }

    /// Step 2: double/triple suffixes mapped to single ones (m > 0).
    // The single-arm matches mirror Porter's reference switch table.
    #[allow(clippy::collapsible_match)]
    fn step2(&mut self) {
        if self.k == 0 {
            return;
        }
        match self.b[self.k - 1] {
            b'a' => {
                if self.ends(b"ational") {
                    self.replace_if_m_gt_0(b"ate");
                } else if self.ends(b"tional") {
                    self.replace_if_m_gt_0(b"tion");
                }
            }
            b'c' => {
                if self.ends(b"enci") {
                    self.replace_if_m_gt_0(b"ence");
                } else if self.ends(b"anci") {
                    self.replace_if_m_gt_0(b"ance");
                }
            }
            b'e' => {
                if self.ends(b"izer") {
                    self.replace_if_m_gt_0(b"ize");
                }
            }
            b'l' => {
                if self.ends(b"bli") {
                    self.replace_if_m_gt_0(b"ble");
                } else if self.ends(b"alli") {
                    self.replace_if_m_gt_0(b"al");
                } else if self.ends(b"entli") {
                    self.replace_if_m_gt_0(b"ent");
                } else if self.ends(b"eli") {
                    self.replace_if_m_gt_0(b"e");
                } else if self.ends(b"ousli") {
                    self.replace_if_m_gt_0(b"ous");
                }
            }
            b'o' => {
                if self.ends(b"ization") {
                    self.replace_if_m_gt_0(b"ize");
                } else if self.ends(b"ation") || self.ends(b"ator") {
                    // both map to -ate in Porter's table
                    self.replace_if_m_gt_0(b"ate");
                }
            }
            b's' => {
                if self.ends(b"alism") {
                    self.replace_if_m_gt_0(b"al");
                } else if self.ends(b"iveness") {
                    self.replace_if_m_gt_0(b"ive");
                } else if self.ends(b"fulness") {
                    self.replace_if_m_gt_0(b"ful");
                } else if self.ends(b"ousness") {
                    self.replace_if_m_gt_0(b"ous");
                }
            }
            b't' => {
                if self.ends(b"aliti") {
                    self.replace_if_m_gt_0(b"al");
                } else if self.ends(b"iviti") {
                    self.replace_if_m_gt_0(b"ive");
                } else if self.ends(b"biliti") {
                    self.replace_if_m_gt_0(b"ble");
                }
            }
            b'g' => {
                if self.ends(b"logi") {
                    self.replace_if_m_gt_0(b"log");
                }
            }
            _ => {}
        }
    }

    /// Step 3: -icate, -ative, -alize, -iciti, -ical, -ful, -ness (m > 0).
    #[allow(clippy::collapsible_match)]
    fn step3(&mut self) {
        match self.b[self.k] {
            b'e' => {
                if self.ends(b"icate") {
                    self.replace_if_m_gt_0(b"ic");
                } else if self.ends(b"ative") {
                    self.replace_if_m_gt_0(b"");
                } else if self.ends(b"alize") {
                    self.replace_if_m_gt_0(b"al");
                }
            }
            b'i' => {
                if self.ends(b"iciti") {
                    self.replace_if_m_gt_0(b"ic");
                }
            }
            b'l' => {
                if self.ends(b"ical") {
                    self.replace_if_m_gt_0(b"ic");
                } else if self.ends(b"ful") {
                    self.replace_if_m_gt_0(b"");
                }
            }
            b's' => {
                if self.ends(b"ness") {
                    self.replace_if_m_gt_0(b"");
                }
            }
            _ => {}
        }
    }

    /// Step 4: strip residual suffixes when m > 1.
    fn step4(&mut self) {
        if self.k == 0 {
            return;
        }
        let matched = match self.b[self.k - 1] {
            b'a' => self.ends(b"al"),
            b'c' => self.ends(b"ance") || self.ends(b"ence"),
            b'e' => self.ends(b"er"),
            b'i' => self.ends(b"ic"),
            b'l' => self.ends(b"able") || self.ends(b"ible"),
            b'n' => {
                self.ends(b"ant") || self.ends(b"ement") || self.ends(b"ment") || self.ends(b"ent")
            }
            b'o' => {
                (self.ends(b"ion") && self.j > 0 && matches!(self.b[self.j - 1], b's' | b't'))
                    || self.ends(b"ou")
            }
            b's' => self.ends(b"ism"),
            b't' => self.ends(b"ate") || self.ends(b"iti"),
            b'u' => self.ends(b"ous"),
            b'v' => self.ends(b"ive"),
            b'z' => self.ends(b"ize"),
            _ => false,
        };
        if matched && self.measure() > 1 {
            // m > 1 guarantees a non-empty stem (j ≥ 1).
            self.k = self.j - 1;
            self.b.truncate(self.k + 1);
        }
    }

    /// Step 5: drop a final `e` (m > 1, or m = 1 and not *cvc) and map
    /// a final double `l` to single (m > 1).
    fn step5(&mut self) {
        self.j = self.k + 1;
        if self.b[self.k] == b'e' {
            let m = self.measure();
            if m > 1 || (m == 1 && !self.cvc(self.k - 1)) {
                self.k -= 1;
            }
        }
        if self.b[self.k] == b'l' && self.double_cons(self.k) {
            self.j = self.k + 1;
            if self.measure() > 1 {
                self.k -= 1;
            }
        }
        self.b.truncate(self.k + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic vocabulary from Porter's paper and reference test set.
    #[test]
    fn reference_pairs() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(porter_stem(input), expected, "stem({input:?})");
        }
    }

    #[test]
    fn query_vocabulary_conflates() {
        // The behaviour the search engine relies on: morphological variants
        // of query keywords map to the same term.
        for group in [
            &["connect", "connected", "connecting", "connection", "connections"][..],
            &["index", "indexes"][..],
            &["mining", "mined", "mines"][..],
            &["relations", "relational"][..],
        ] {
            let stems: std::collections::HashSet<_> =
                group.iter().map(|w| porter_stem(w)).collect();
            assert_eq!(stems.len(), 1, "{group:?} must share a stem, got {stems:?}");
        }
    }

    #[test]
    fn short_and_non_ascii_words_pass_through() {
        assert_eq!(porter_stem("go"), "go");
        assert_eq!(porter_stem("ai"), "ai");
        assert_eq!(porter_stem("gödel"), "gödel");
        assert_eq!(porter_stem("sql3"), "sql3"); // digit: not ascii-lowercase-only
    }

    #[test]
    fn stems_are_nonempty_and_never_longer_than_input() {
        // Porter is not idempotent in general (stem("database") = "databas",
        // stem("databas") = "databa"), but a stem is never empty and never
        // grows beyond input length + 1 (the restored trailing 'e').
        for w in [
            "database",
            "retrieval",
            "parallel",
            "keyword",
            "graph",
            "learning",
            "a",
            "is",
            "sses",
            "ies",
            "ed",
            "ing",
            "eed",
            "ion",
            "ational",
        ] {
            let s = porter_stem(w);
            assert!(!s.is_empty(), "stem({w:?}) must be non-empty");
            assert!(s.len() <= w.len() + 1, "stem({w:?}) = {s:?} grew too much");
        }
    }
}
