//! Per-query execution traces: what [`crate::profile::PhaseProfile`] is to
//! wall-clock phases, [`QueryTrace`] is to the *shape* of a search — one
//! record per BFS level of Algorithm 1/2 (frontier size, expansion work,
//! newly covered keywords, activation gating, budget headroom) plus the
//! cache and session-pool events around it.
//!
//! Tracing is opt-in via [`TraceLevel`] on `SearchParams` and is designed
//! to be zero-cost when disabled: every collection site is gated on
//! `params.trace.enabled()`, the budget tracker only arms its expansion
//! counter in tracing (or capped) mode, and `SearchOutcome` carries the
//! trace as `Option<Box<QueryTrace>>` so the disabled path moves one null
//! pointer. A differential test asserts that enabling tracing leaves
//! search results byte-for-byte identical.

use crate::profile::PhaseProfile;
use serde::{DeError, Deserialize, Serialize, Value};

/// How much per-query trace detail to collect.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceLevel {
    /// No trace (the default): collection sites compile down to a
    /// predictable branch, and no allocation happens on the query path.
    #[default]
    Off,
    /// Collect the full per-level trace.
    Full,
}

impl TraceLevel {
    /// Whether any trace should be collected.
    #[inline]
    pub fn enabled(self) -> bool {
        !matches!(self, TraceLevel::Off)
    }
}

// The vendored serde shim derives structs only; enums carry hand-written
// impls. `TraceLevel` encodes as `"off"` / `"full"`, and an absent field
// (`null`) reads as the default, matching `#[serde(default)]`.
impl Serialize for TraceLevel {
    fn to_value(&self) -> Value {
        Value::String(match self {
            TraceLevel::Off => "off".to_owned(),
            TraceLevel::Full => "full".to_owned(),
        })
    }
}

impl Deserialize for TraceLevel {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(TraceLevel::default()),
            _ => match v.as_str() {
                Some("off") => Ok(TraceLevel::Off),
                Some("full") => Ok(TraceLevel::Full),
                _ => Err(v.type_error("trace level (\"off\" or \"full\")")),
            },
        }
    }
}

/// One bottom-up BFS level as the search engine saw it.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceLevelRecord {
    /// BFS level (0 = the keyword hit nodes themselves).
    pub level: u32,
    /// Nodes in the frontier entering this level.
    pub frontier: usize,
    /// Central nodes identified (all `q` keywords covered) at this level.
    pub identified: usize,
    /// Keyword-hit cells `(node, keyword)` first covered at this level —
    /// how much new keyword coverage the level bought.
    pub new_hits: usize,
    /// Frontier nodes whose activation level exceeds this level: they are
    /// carried in the frontier but not yet allowed to identify (the
    /// paper's activation-level pruning in action).
    pub activation_deferred: usize,
    /// Budget units charged while expanding this frontier (Algorithm 2
    /// work items, weighted by keyword count).
    pub expansions: u64,
    /// Budget units remaining after this level (`None` when the query
    /// ran without an expansion cap).
    pub budget_remaining: Option<u64>,
}

/// How the result cache participated in a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache; no search ran.
    Hit,
    /// Looked up, not found; the search ran and the result was inserted.
    Miss,
    /// The cache was not consulted (disabled, or an EXPLAIN query).
    Bypass,
}

impl Serialize for CacheOutcome {
    fn to_value(&self) -> Value {
        Value::String(
            match self {
                CacheOutcome::Hit => "hit",
                CacheOutcome::Miss => "miss",
                CacheOutcome::Bypass => "bypass",
            }
            .to_owned(),
        )
    }
}

impl Deserialize for CacheOutcome {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_str() {
            Some("hit") => Ok(CacheOutcome::Hit),
            Some("miss") => Ok(CacheOutcome::Miss),
            Some("bypass") => Ok(CacheOutcome::Bypass),
            _ => Err(v.type_error("cache outcome (\"hit\", \"miss\" or \"bypass\")")),
        }
    }
}

/// Phase wall-times in milliseconds, the serialization-friendly face of
/// [`PhaseProfile`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseMillis {
    /// State initialisation / epoch bump.
    pub init_ms: f64,
    /// Frontier enqueue (Algorithm 1 lines 3–5).
    pub enqueue_ms: f64,
    /// Central-node identification.
    pub identify_ms: f64,
    /// Frontier expansion (Algorithm 2).
    pub expansion_ms: f64,
    /// Top-down extraction, pruning and ranking (Algorithm 3).
    pub top_down_ms: f64,
}

impl From<&PhaseProfile> for PhaseMillis {
    fn from(p: &PhaseProfile) -> Self {
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        PhaseMillis {
            init_ms: ms(p.init),
            enqueue_ms: ms(p.enqueue),
            identify_ms: ms(p.identify),
            expansion_ms: ms(p.expansion),
            top_down_ms: ms(p.top_down),
        }
    }
}

/// The full execution trace of one query, carried on `SearchOutcome`
/// when [`TraceLevel::Full`] is requested and surfaced verbatim by the
/// server's `EXPLAIN` verb and the slow-query log.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryTrace {
    /// Engine that executed the search (`"Seq"`, `"CPU-Par"`,
    /// `"GPU-Par"`, `"CPU-Par-d"`), or `"cache"` for a cache hit.
    pub engine: String,
    /// Number of query keywords after index lookup.
    pub keywords: usize,
    /// One record per bottom-up BFS level, in level order.
    pub levels: Vec<TraceLevelRecord>,
    /// Total budget units charged across the whole search.
    pub total_expansions: u64,
    /// Whether the bottom-up stage was stopped by the `lmax` level cap
    /// rather than finding enough answers or exhausting the frontier.
    /// (Budget/deadline trips surface as errors, never as a trace.)
    pub terminated: bool,
    /// How the result cache participated, if it was on the path
    /// (serialized as `null` when the query never saw a cache).
    pub cache: Option<CacheOutcome>,
    /// Pool session that executed the search.
    pub session_id: Option<u64>,
    /// Queries that session had run before this one (warmth indicator).
    pub session_queries: Option<u64>,
    /// Micro-batch this query was fused into (`None` when it ran alone
    /// through the unbatched path).
    pub batch_id: Option<u64>,
    /// Total queries sharing that batch, including this one.
    pub co_batched: Option<usize>,
    /// Phase wall-times in milliseconds.
    pub phase_ms: PhaseMillis,
}

impl QueryTrace {
    /// Total wall time across all profiled phases, in milliseconds.
    pub fn total_phase_ms(&self) -> f64 {
        self.phase_ms.init_ms
            + self.phase_ms.enqueue_ms
            + self.phase_ms.identify_ms
            + self.phase_ms.expansion_ms
            + self.phase_ms.top_down_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_level_default_is_off() {
        assert_eq!(TraceLevel::default(), TraceLevel::Off);
        assert!(!TraceLevel::Off.enabled());
        assert!(TraceLevel::Full.enabled());
    }

    #[test]
    fn query_trace_round_trips_through_serde() {
        let t = QueryTrace {
            engine: "CPU-Seq".into(),
            keywords: 2,
            levels: vec![TraceLevelRecord {
                level: 0,
                frontier: 10,
                identified: 1,
                new_hits: 12,
                activation_deferred: 3,
                expansions: 20,
                budget_remaining: Some(980),
            }],
            total_expansions: 20,
            terminated: false,
            cache: Some(CacheOutcome::Miss),
            session_id: Some(4),
            session_queries: Some(7),
            batch_id: Some(11),
            co_batched: Some(3),
            phase_ms: PhaseMillis::default(),
        };
        let json = serde_json::to_string(&t).unwrap();
        assert!(json.contains("\"cache\":\"miss\""));
        let back: QueryTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn absent_events_read_back_as_none() {
        let json = serde_json::to_string(&QueryTrace::default()).unwrap();
        let back: QueryTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.session_id, None);
        assert_eq!(back.cache, None);
        assert_eq!(back.batch_id, None);
        assert_eq!(back.co_batched, None);
    }
}
