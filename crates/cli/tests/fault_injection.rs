//! Fault-isolation suite: proves one misbehaving client cannot perturb
//! another client's answers or take the server down.
//!
//! Requires the `fault-inject` feature, which teaches the engine to
//! recognize magic query tokens (`fault0panic`, `fault0sleepNNN`,
//! `fault0alloc`) that misbehave on purpose. Run with:
//!
//! ```text
//! cargo test -p wikisearch-cli --features fault-inject --test fault_injection
//! ```

#![cfg(feature = "fault-inject")]

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

fn free_port() -> u16 {
    let probe = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = probe.local_addr().unwrap().port();
    drop(probe);
    port
}

fn graph_file(tag: &str) -> String {
    let path = std::env::temp_dir()
        .join(format!("ws-fault-{}-{tag}.tsv", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let mut b = kgraph::GraphBuilder::new();
    let x = b.add_node("x", "xml");
    let q = b.add_node("q", "query language");
    let s = b.add_node("s", "sql");
    let r = b.add_node("r", "rdf");
    b.add_edge(x, q, "rel");
    b.add_edge(s, q, "rel");
    b.add_edge(r, q, "rel");
    std::fs::write(&path, kgraph::io::to_tsv(&b.build())).unwrap();
    path
}

/// Start `wikisearch serve` on a background thread; returns the join
/// handle yielding the server log.
fn spawn_server(argv_line: String) -> std::thread::JoinHandle<String> {
    std::thread::spawn(move || {
        let argv: Vec<String> = argv_line.split_whitespace().map(String::from).collect();
        let args = wikisearch_cli::args::parse(&argv).unwrap();
        let mut out = Vec::new();
        wikisearch_cli::serve::serve(&args, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    })
}

fn connect(port: u16) -> TcpStream {
    for _ in 0..150 {
        if let Ok(s) = TcpStream::connect(("127.0.0.1", port)) {
            s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            return s;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("server not reachable on port {port}");
}

/// One request, one response line.
fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, request: &str) -> String {
    writeln!(stream, "{request}").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.ends_with('\n'), "truncated response to {request:?}: {line:?}");
    line.trim_end().to_string()
}

/// A query response with its volatile fields removed — the wall-clock
/// `ms` and the fleet-wide `qid`, which depends on how many queries any
/// other client slipped in first — re-serialized deterministically
/// (objects keep insertion order, and both runs build the response
/// through the same code), so two runs of the same query can be
/// compared byte for byte.
fn normalized(response: &str) -> String {
    let mut doc: serde_json::Value =
        serde_json::from_str(response).unwrap_or_else(|e| panic!("bad JSON {response:?}: {e}"));
    let serde_json::Value::Object(entries) = &mut doc else {
        panic!("non-object response {response:?}");
    };
    entries.retain(|(key, _)| key != "ms" && key != "qid");
    serde_json::to_string(&doc).unwrap()
}

const GOOD_QUERIES: [&str; 5] = ["xml sql", "rdf query", "sql rdf", "xml", "xml sql"];

/// Run the good client's query sequence alone and collect its normalized
/// responses — the reference the perturbed run must match byte for byte.
fn baseline_responses(path: &str) -> Vec<String> {
    let port = free_port();
    let server = spawn_server(format!(
        "serve --graph {path} --port {port} --backend seq --workers 4 \
         --timeout-ms 200 --max-requests {}",
        GOOD_QUERIES.len()
    ));
    let mut stream = connect(port);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let responses: Vec<String> = GOOD_QUERIES
        .iter()
        .map(|q| normalized(&roundtrip(&mut stream, &mut reader, &format!("QUERY {q}"))))
        .collect();
    server.join().unwrap();
    responses
}

/// The acceptance scenario: a bad client (panicking and
/// deadline-exceeding queries) runs concurrently with a good client on a
/// 4-worker server. The good client's answers must be byte-identical to
/// an unperturbed run, the bad queries must come back as structured JSON
/// errors, STATS must account for every fault, and the server must still
/// drain gracefully via --max-requests.
#[test]
fn bad_client_never_perturbs_a_good_client() {
    let path = graph_file("isolation");
    let expected = baseline_responses(&path);

    let port = free_port();
    let server = spawn_server(format!(
        "serve --graph {path} --port {port} --backend seq --workers 4 \
         --timeout-ms 200 --max-requests {}",
        GOOD_QUERIES.len()
    ));

    // Bad client: three panicking queries and three that blow the 200 ms
    // deadline, interleaved, on its own connection.
    let bad = std::thread::spawn(move || {
        let mut stream = connect(port);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut errors = Vec::new();
        for _ in 0..3 {
            errors.push(roundtrip(&mut stream, &mut reader, "QUERY fault0panic xml sql"));
            errors.push(roundtrip(&mut stream, &mut reader, "QUERY fault0sleep5000 xml sql"));
        }
        writeln!(stream, "QUIT").unwrap();
        errors
    });

    // Good client: the same query sequence as the baseline run,
    // concurrent with the bad client. The last query is sent only after
    // the bad client finishes, so STATS can be checked pre-drain.
    let mut stream = connect(port);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut got = Vec::new();
    for q in &GOOD_QUERIES[..GOOD_QUERIES.len() - 1] {
        got.push(normalized(&roundtrip(&mut stream, &mut reader, &format!("QUERY {q}"))));
    }

    let bad_responses = bad.join().unwrap();
    for (i, line) in bad_responses.iter().enumerate() {
        let doc: serde_json::Value = serde_json::from_str(line).unwrap();
        let expected_error = if i % 2 == 0 {
            "internal"
        } else {
            "deadline_exceeded"
        };
        assert_eq!(doc["error"], expected_error, "bad response #{i}: {line}");
    }

    // Every fault is accounted for: three quarantined sessions (the pool
    // never recycles a panicked session), three timeouts, nothing shed.
    let stats: serde_json::Value =
        serde_json::from_str(&roundtrip(&mut stream, &mut reader, "STATS")).unwrap();
    assert_eq!(stats["panics"], 3u64, "{stats}");
    assert_eq!(stats["timeouts"], 3u64, "{stats}");
    assert_eq!(stats["shed"], 0u64, "{stats}");
    assert_eq!(stats["pool"]["quarantined"], 3u64, "{stats}");
    assert_eq!(stats["served"], (GOOD_QUERIES.len() - 1) as u64, "{stats}");

    let last = GOOD_QUERIES[GOOD_QUERIES.len() - 1];
    got.push(normalized(&roundtrip(&mut stream, &mut reader, &format!("QUERY {last}"))));

    assert_eq!(got, expected, "good client's answers changed under fault load");

    let log = server.join().unwrap();
    assert!(log.contains(&format!("served {} queries", GOOD_QUERIES.len())), "{log}");
    let _ = std::fs::remove_file(path);
}

/// Load shedding: with one worker and a one-slot queue, a third
/// concurrent connection is refused immediately with `overloaded`
/// instead of queueing without bound — and the refusal shows up in STATS.
#[test]
fn full_queue_sheds_new_connections() {
    let path = graph_file("shed");
    let port = free_port();
    let server = spawn_server(format!(
        "serve --graph {path} --port {port} --backend seq --workers 1 \
         --max-queue 1 --max-requests 2"
    ));

    // Connection A occupies the only worker with a deliberately slow
    // query (fault0sleep with no deadline configured: stalls, then
    // completes normally).
    let mut slow = connect(port);
    let mut slow_reader = BufReader::new(slow.try_clone().unwrap());
    writeln!(slow, "QUERY fault0sleep1500 xml sql").unwrap();
    std::thread::sleep(Duration::from_millis(300)); // worker has surely dequeued A

    // Connection B parks in the queue's single slot.
    let parked = connect(port);
    std::thread::sleep(Duration::from_millis(100));

    // Connection C finds the queue full: one `overloaded` line, then EOF.
    let shed = connect(port);
    let mut shed_reader = BufReader::new(shed);
    let mut line = String::new();
    shed_reader.read_line(&mut line).unwrap();
    let doc: serde_json::Value = serde_json::from_str(&line).unwrap();
    assert_eq!(doc["error"], "overloaded", "{line}");
    line.clear();
    assert_eq!(shed_reader.read_line(&mut line).unwrap(), 0, "shed connection not closed");

    // A's slow query still completes (success #1), and its connection
    // can see the shed in STATS.
    let slow_response = {
        let mut line = String::new();
        slow_reader.read_line(&mut line).unwrap();
        line
    };
    assert!(slow_response.contains("answers"), "{slow_response}");
    writeln!(slow, "STATS").unwrap();
    let mut stats_line = String::new();
    slow_reader.read_line(&mut stats_line).unwrap();
    let stats: serde_json::Value = serde_json::from_str(&stats_line).unwrap();
    assert_eq!(stats["shed"], 1u64, "{stats}");
    writeln!(slow, "QUIT").unwrap();
    drop(slow);

    // B finally reaches the freed worker and is served (success #2),
    // which drains the server.
    let mut parked = parked;
    let mut parked_reader = BufReader::new(parked.try_clone().unwrap());
    let response = roundtrip(&mut parked, &mut parked_reader, "QUERY xml sql");
    assert!(response.contains("answers"), "{response}");

    let log = server.join().unwrap();
    assert!(log.contains("served 2 queries"), "{log}");
    let _ = std::fs::remove_file(path);
}

/// The batched soak: good clients co-batched with a client that panics
/// and one that stalls inside the collection window. Panics are demoted
/// to their own lane (the pre-flight runs under a per-lane
/// `catch_unwind`), stalls only delay co-batched peers, and every good
/// answer stays byte-identical to an unbatched, unperturbed baseline.
///
/// Deliberately run without `--timeout-ms`: a stalling lane delays its
/// co-batched peers' already-armed deadline clocks, so a wall-clock
/// budget would (correctly) trip on victims — graceful degradation, but
/// not the byte-identity this test pins.
#[test]
fn batched_soak_keeps_good_answers_byte_identical() {
    let path = graph_file("batched-soak");
    const GOOD_CLIENTS: usize = 4;

    // Baseline: the good sequence alone, unbatched, no faults.
    let expected: Vec<String> = {
        let port = free_port();
        let server = spawn_server(format!(
            "serve --graph {path} --port {port} --backend seq --workers 4 --max-requests {}",
            GOOD_QUERIES.len()
        ));
        let mut stream = connect(port);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let responses = GOOD_QUERIES
            .iter()
            .map(|q| normalized(&roundtrip(&mut stream, &mut reader, &format!("QUERY {q}"))))
            .collect();
        server.join().unwrap();
        responses
    };

    // 3 stalls succeed (no deadline), 3 panics do not; one extra good
    // query after the accounting check drains the server.
    let total_served = GOOD_CLIENTS * GOOD_QUERIES.len() + 3 + 1;
    let port = free_port();
    let server = spawn_server(format!(
        "serve --graph {path} --port {port} --backend seq --workers 6 \
         --batch-window-us 5000 --batch-max 4 --max-requests {total_served}"
    ));

    // Fault client: panicking queries and 200 ms stalls (the stall fires
    // inside the batch pre-flight, holding the whole batch open),
    // interleaved, concurrent with the good clients.
    let bad = std::thread::spawn(move || {
        let mut stream = connect(port);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut responses = Vec::new();
        for _ in 0..3 {
            responses.push(roundtrip(&mut stream, &mut reader, "QUERY fault0panic xml sql"));
            responses.push(roundtrip(&mut stream, &mut reader, "QUERY fault0sleep200 rdf sql"));
        }
        writeln!(stream, "QUIT").unwrap();
        responses
    });
    let good: Vec<std::thread::JoinHandle<Vec<String>>> = (0..GOOD_CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut stream = connect(port);
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let got: Vec<String> = GOOD_QUERIES
                    .iter()
                    .map(|q| {
                        normalized(&roundtrip(&mut stream, &mut reader, &format!("QUERY {q}")))
                    })
                    .collect();
                writeln!(stream, "QUIT").unwrap();
                got
            })
        })
        .collect();

    for (i, line) in bad.join().unwrap().iter().enumerate() {
        let doc: serde_json::Value = serde_json::from_str(line).unwrap();
        if i % 2 == 0 {
            assert_eq!(doc["error"], "internal", "bad response #{i}: {line}");
        } else {
            assert!(line.contains("answers"), "stalled query #{i} failed: {line}");
        }
    }
    for (c, client) in good.into_iter().enumerate() {
        assert_eq!(
            client.join().unwrap(),
            expected,
            "good client #{c}'s answers changed under batched fault load"
        );
    }

    // Exact accounting, checked pre-drain on a fresh connection: three
    // panics, each demoted to its own lane — the facade session pool is
    // bypassed on the batched path, so nothing is quarantined there —
    // no timeouts (no deadline configured), nothing shed, and the
    // batcher handed back every lane it accepted.
    let mut stream = connect(port);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let stats: serde_json::Value =
        serde_json::from_str(&roundtrip(&mut stream, &mut reader, "STATS")).unwrap();
    assert_eq!(stats["panics"], 3u64, "{stats}");
    assert_eq!(stats["timeouts"], 0u64, "{stats}");
    assert_eq!(stats["shed"], 0u64, "{stats}");
    assert_eq!(stats["pool"]["quarantined"], 0u64, "{stats}");
    assert_eq!(stats["pool"]["queries_run"], 0u64, "{stats}");
    assert_eq!(stats["served"], (total_served - 1) as u64, "{stats}");
    assert_eq!(stats["batch"]["enqueued"], stats["batch"]["delivered"], "{stats}");
    assert_eq!(stats["batch"]["size"]["count"], stats["batch"]["batches"], "{stats}");
    assert!(stats["batch"]["queries"].as_u64().unwrap() >= 1, "{stats}");

    // One more good query reaches --max-requests and drains the server
    // gracefully, closing any open batch window on the way out.
    let answer = roundtrip(&mut stream, &mut reader, "QUERY xml sql");
    assert!(answer.contains("answers"), "{answer}");
    let log = server.join().unwrap();
    assert!(log.contains(&format!("served {total_served} queries")), "{log}");
    assert!(log.contains("batching 5000us x4"), "{log}");
    let _ = std::fs::remove_file(path);
}
