//! Lock-free soak test: on a synthetic KB three orders of magnitude
//! larger than the proptest graphs, the parallel engines must agree with
//! the sequential reference answer-for-answer, across repeated runs and
//! thread counts. This is Theorem V.2 under real contention: thousands of
//! frontier tasks racing on the shared matrix.

use central::engine::{
    DynParEngine, GpuStyleEngine, KeywordSearchEngine, ParCpuEngine, SeqEngine,
};
use central::SearchParams;
use datagen::synthetic::SyntheticConfig;
use datagen::QueryWorkload;
use textindex::{InvertedIndex, ParsedQuery};

#[test]
fn parallel_engines_agree_on_a_large_graph_under_contention() {
    let mut cfg = SyntheticConfig::tiny(1234);
    cfg.num_entities = 2500;
    let ds = cfg.generate();
    let index = InvertedIndex::build(&ds.graph);
    let params = SearchParams::default()
        .with_average_distance(2.5)
        .with_top_k(10);

    let mut workload = QueryWorkload::new(9);
    let queries: Vec<ParsedQuery> = workload
        .batch(5, 3)
        .iter()
        .map(|q| ParsedQuery::parse(&index, q))
        .collect();

    let seq = SeqEngine::new();
    let engines: Vec<Box<dyn KeywordSearchEngine>> = vec![
        Box::new(ParCpuEngine::new(8)),
        Box::new(GpuStyleEngine::new(8)),
        Box::new(DynParEngine::new(8)),
    ];
    for (qi, query) in queries.iter().enumerate() {
        let reference = seq.search(&ds.graph, query, &params);
        for answer in &reference.answers {
            answer.check_invariants().unwrap();
        }
        for engine in &engines {
            // Two runs each: agreement and determinism under contention.
            for round in 0..2 {
                let out = engine.search(&ds.graph, query, &params);
                assert_eq!(
                    out.answers.len(),
                    reference.answers.len(),
                    "query {qi} round {round}: answer count for {}",
                    engine.name()
                );
                for (a, b) in out.answers.iter().zip(&reference.answers) {
                    assert_eq!(a.central, b.central, "query {qi}: {}", engine.name());
                    assert_eq!(a.nodes, b.nodes, "query {qi}: {}", engine.name());
                    assert_eq!(a.edges, b.edges, "query {qi}: {}", engine.name());
                    assert_eq!(
                        a.keyword_edges, b.keyword_edges,
                        "query {qi}: {}",
                        engine.name()
                    );
                }
                assert_eq!(
                    out.stats.central_candidates, reference.stats.central_candidates,
                    "query {qi}: top-(k,d) cohort for {}",
                    engine.name()
                );
                assert_eq!(out.stats.last_level, reference.stats.last_level);
            }
        }
    }
}
