//! The worker-fleet supervisor behind `serve --shard-workers N`.
//!
//! Spawns one `wikisearch shard-worker` process per shard over the same
//! dataset the server loaded, babysits them — a monitor thread sweeps
//! the fleet with `try_wait`, respawning any worker that died and
//! bumping that shard's *generation* so the coordinator discards
//! connections dialed to the previous incarnation — and reaps the whole
//! fleet on drop. Two belts against orphaned processes:
//!
//! * the supervisor kills and `wait()`s every child when it drops
//!   (normal drain and error paths alike), and
//! * each worker runs with `--watch-stdin true` on a pipe whose write
//!   end the supervisor holds, so even a SIGKILLed server leaves
//!   workers that exit on their own at stdin EOF.
//!
//! The fleet's address table implements [`ShardAddrs`], which is how
//! the remote coordinator (`central::remote`) sees respawns: a dead
//! shard's `addr()` turns `None` (breaker-visible), a respawned one
//! comes back on a fresh ephemeral port under a bumped generation.

use central::ShardAddrs;
use parking_lot::Mutex;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often the monitor sweeps the fleet for dead workers.
const MONITOR_POLL: Duration = Duration::from_millis(50);

/// How long a spawned worker gets to print its `READY` line (covers
/// loading the dataset and cutting its partition).
const READY_TIMEOUT: Duration = Duration::from_secs(60);

/// One worker slot: the live child, its current address, and its
/// incarnation counter.
struct Slot {
    /// The live child process. Holding it keeps the write end of its
    /// stdin pipe open — dropping (or killing) it is the worker's
    /// signal to exit.
    child: Mutex<Option<Child>>,
    /// Current listener address; `None` while the worker is down.
    addr: Mutex<Option<SocketAddr>>,
    /// Bumped on every respawn.
    generation: AtomicU64,
}

/// The fleet's live address table, shared with the remote coordinator.
struct Fleet {
    slots: Vec<Slot>,
    respawns: AtomicU64,
}

impl ShardAddrs for Fleet {
    fn addr(&self, shard: usize) -> Option<SocketAddr> {
        self.slots.get(shard).and_then(|s| *s.addr.lock())
    }

    fn generation(&self, shard: usize) -> u64 {
        self.slots.get(shard).map_or(0, |s| s.generation.load(Ordering::SeqCst))
    }
}

/// Everything needed to (re)spawn one worker: the binary and the
/// graph-source flag pair, identical across the fleet.
#[derive(Clone)]
struct Spec {
    bin: PathBuf,
    /// `("--graph", path)` or `("--mmap", path)`.
    source: (String, String),
    shards: usize,
}

/// The binary to spawn workers from: the `WIKISEARCH_BIN` override
/// (tests point it at the built binary; their own executable is the
/// test harness), else this very executable.
fn worker_binary() -> Result<PathBuf, String> {
    if let Some(bin) = std::env::var_os("WIKISEARCH_BIN") {
        return Ok(bin.into());
    }
    std::env::current_exe().map_err(|e| format!("cannot locate the wikisearch binary: {e}"))
}

/// Spawn one `shard-worker` process and wait (bounded) for its
/// `READY <addr> …` line. On any failure the child is killed and
/// reaped before the error returns.
fn spawn_worker(spec: &Spec, index: usize) -> Result<(Child, SocketAddr), String> {
    let mut child = Command::new(&spec.bin)
        .arg("shard-worker")
        .arg(&spec.source.0)
        .arg(&spec.source.1)
        .arg("--shards")
        .arg(spec.shards.to_string())
        .arg("--shard-index")
        .arg(index.to_string())
        .arg("--port")
        .arg("0")
        .arg("--watch-stdin")
        .arg("true")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn shard-worker {index}: {e}"))?;
    let fail = |mut child: Child, msg: String| -> Result<(Child, SocketAddr), String> {
        let _ = child.kill();
        let _ = child.wait();
        Err(msg)
    };
    let Some(stdout) = child.stdout.take() else {
        return fail(child, format!("shard-worker {index}: stdout not captured"));
    };
    // The READY read happens on a helper thread so the wait can be
    // bounded; afterwards the thread keeps draining stdout so the
    // worker can never block on a full pipe.
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    std::thread::Builder::new()
        .name(format!("shard-worker-{index}-stdout"))
        .spawn(move || {
            let mut reader = BufReader::new(stdout);
            let mut line = String::new();
            let _ = reader.read_line(&mut line);
            let _ = tx.send(line);
            let mut sink = String::new();
            while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
                sink.clear();
            }
        })
        .map_err(|e| format!("spawning the shard-worker {index} stdout reader: {e}"))?;
    let line = match rx.recv_timeout(READY_TIMEOUT) {
        Ok(line) => line,
        Err(_) => {
            return fail(
                child,
                format!("shard-worker {index}: no READY line within {READY_TIMEOUT:?}"),
            )
        }
    };
    let addr = line
        .strip_prefix("READY ")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|a| a.parse::<SocketAddr>().ok());
    match addr {
        Some(addr) => Ok((child, addr)),
        None => fail(
            child,
            format!("shard-worker {index}: expected `READY <addr>`, got {:?}", line.trim()),
        ),
    }
}

/// A supervised fleet of `shard-worker` processes: spawn-on-launch,
/// respawn-on-death, reap-on-drop.
pub struct Supervisor {
    fleet: Arc<Fleet>,
    stop: Arc<AtomicBool>,
    monitor: Option<std::thread::JoinHandle<()>>,
}

impl Supervisor {
    /// Spawn `shards` workers over the graph source in `(flag, path)`
    /// form (`("--graph", …)` or `("--mmap", …)`) and start the
    /// monitor. Any worker failing to come up tears the whole launch
    /// down — no half-fleets, no leaked processes.
    pub fn launch(source: (String, String), shards: usize) -> Result<Supervisor, String> {
        let spec = Spec { bin: worker_binary()?, source, shards };
        let fleet = Arc::new(Fleet {
            slots: (0..shards)
                .map(|_| Slot {
                    child: Mutex::new(None),
                    addr: Mutex::new(None),
                    generation: AtomicU64::new(0),
                })
                .collect(),
            respawns: AtomicU64::new(0),
        });
        for i in 0..shards {
            match spawn_worker(&spec, i) {
                Ok((child, addr)) => {
                    *fleet.slots[i].child.lock() = Some(child);
                    *fleet.slots[i].addr.lock() = Some(addr);
                }
                Err(e) => {
                    reap_fleet(&fleet);
                    return Err(e);
                }
            }
        }
        let stop = Arc::new(AtomicBool::new(false));
        let monitor = {
            let fleet = Arc::clone(&fleet);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("shard-supervisor".into())
                .spawn(move || monitor_fleet(&fleet, &stop, &spec))
                .map_err(|e| format!("spawning the fleet monitor: {e}"))?
        };
        Ok(Supervisor { fleet, stop, monitor: Some(monitor) })
    }

    /// The fleet's live address table, for
    /// `WikiSearch::set_remote_shards`.
    pub fn addrs(&self) -> Arc<dyn ShardAddrs> {
        Arc::clone(&self.fleet) as Arc<dyn ShardAddrs>
    }

    /// PIDs of the currently live workers (a respawning slot is
    /// momentarily absent).
    pub fn pids(&self) -> Vec<u32> {
        self.fleet
            .slots
            .iter()
            .filter_map(|s| s.child.lock().as_ref().map(Child::id))
            .collect()
    }

    /// Workers respawned since launch.
    pub fn respawns(&self) -> u64 {
        self.fleet.respawns.load(Ordering::SeqCst)
    }
}

/// The monitor loop: sweep for dead children, respawn them under a
/// bumped generation.
fn monitor_fleet(fleet: &Fleet, stop: &AtomicBool, spec: &Spec) {
    while !stop.load(Ordering::SeqCst) {
        for (i, slot) in fleet.slots.iter().enumerate() {
            let died = {
                let mut guard = slot.child.lock();
                match guard.as_mut() {
                    Some(child) => match child.try_wait() {
                        Ok(Some(_status)) => {
                            // Reaped by try_wait; the slot is empty until
                            // the respawn lands.
                            *guard = None;
                            true
                        }
                        Ok(None) => false,
                        Err(_) => false,
                    },
                    None => true,
                }
            };
            if !died || stop.load(Ordering::SeqCst) {
                continue;
            }
            // Down: the coordinator sees `addr() == None` while the
            // replacement boots.
            *slot.addr.lock() = None;
            if let Ok((child, addr)) = spawn_worker(spec, i) {
                *slot.child.lock() = Some(child);
                slot.generation.fetch_add(1, Ordering::SeqCst);
                *slot.addr.lock() = Some(addr);
                fleet.respawns.fetch_add(1, Ordering::SeqCst);
            }
        }
        std::thread::sleep(MONITOR_POLL);
    }
}

/// Kill and `wait()` every live child: no zombies, no orphans.
fn reap_fleet(fleet: &Fleet) {
    for slot in &fleet.slots {
        if let Some(mut child) = slot.child.lock().take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        *slot.addr.lock() = None;
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(monitor) = self.monitor.take() {
            let _ = monitor.join();
        }
        reap_fleet(&self.fleet);
    }
}
