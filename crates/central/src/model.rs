//! The Central Graph answer model (paper Definitions 1–4).

use kgraph::NodeId;
use serde::{Deserialize, Serialize};

/// The ∞ sentinel in the node–keyword hitting-level matrix `M`. One byte
/// per entry is the paper's explicit storage choice (Sec. V-B: "one byte is
/// all we need to record a hitting level").
pub const INFINITE_LEVEL: u8 = u8::MAX;

/// A Central Graph answer: the union of all hitting paths from every
/// keyword's node set to one **central node** (Def. 3), after level-cover
/// pruning and scoring.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CentralGraph {
    /// The central node `v_c` the answer is centered at.
    pub central: NodeId,
    /// Depth `d(C)`: the maximum hitting level of the central node over all
    /// keywords (Eq. 1) — equal to the BFS level at which it was
    /// identified (Lemma V.1).
    pub depth: u8,
    /// All nodes of the (pruned) answer graph, sorted by id.
    pub nodes: Vec<NodeId>,
    /// Undirected answer edges as `(min, max)` node pairs, sorted, unique.
    /// These are hitting-path expansion steps, so each is also an edge of
    /// the data graph.
    pub edges: Vec<(NodeId, NodeId)>,
    /// For each query keyword (query order), the keyword nodes of this
    /// answer that contain it after pruning. Non-empty for every keyword —
    /// an answer covers the whole query.
    pub keyword_nodes: Vec<Vec<NodeId>>,
    /// For each query keyword, the hitting-path edges of its BFS instance
    /// that survive pruning — Def. 3's per-keyword path sets `P_i`, whose
    /// union is [`CentralGraph::edges`]. Sorted `(min, max)` pairs.
    pub keyword_edges: Vec<Vec<(NodeId, NodeId)>>,
    /// Ranking score `S(C) = d(C)^λ · Σ_{v ∈ C} w_v` (Eq. 6); smaller is
    /// better.
    pub score: f64,
}

impl CentralGraph {
    /// Number of nodes in the answer.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges in the answer.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// `true` if this answer's node set strictly contains `other`'s —
    /// the repetition-removal condition of Sec. VI-B (the container is the
    /// one to drop). Both node lists are sorted, so this is a linear merge.
    pub fn strictly_contains(&self, other: &CentralGraph) -> bool {
        if self.nodes.len() <= other.nodes.len() {
            return false;
        }
        let mut i = 0;
        for &n in &other.nodes {
            while i < self.nodes.len() && self.nodes[i] < n {
                i += 1;
            }
            if i >= self.nodes.len() || self.nodes[i] != n {
                return false;
            }
            i += 1;
        }
        true
    }

    /// `true` if the answer contains `v`.
    pub fn contains_node(&self, v: NodeId) -> bool {
        self.nodes.binary_search(&v).is_ok()
    }

    /// Check the answer's structural invariants (used by tests):
    /// sorted unique nodes/edges, edges within the node set, every keyword
    /// covered, central node present.
    pub fn check_invariants(&self) -> Result<(), String> {
        if !self.nodes.windows(2).all(|w| w[0] < w[1]) {
            return Err("nodes not sorted/unique".into());
        }
        if !self.edges.windows(2).all(|w| w[0] < w[1]) {
            return Err("edges not sorted/unique".into());
        }
        if !self.contains_node(self.central) {
            return Err("central node missing from node set".into());
        }
        for &(a, b) in &self.edges {
            if a > b {
                return Err(format!("edge ({a}, {b}) not normalized"));
            }
            if !self.contains_node(a) || !self.contains_node(b) {
                return Err(format!("edge ({a}, {b}) endpoint outside node set"));
            }
        }
        for (i, kws) in self.keyword_nodes.iter().enumerate() {
            if kws.is_empty() {
                return Err(format!("keyword {i} uncovered"));
            }
            for &v in kws {
                if !self.contains_node(v) {
                    return Err(format!("keyword node {v} outside node set"));
                }
            }
        }
        // Per-keyword edge sets union to the answer's edges.
        if !self.keyword_edges.is_empty() {
            let mut union: Vec<(NodeId, NodeId)> =
                self.keyword_edges.iter().flatten().copied().collect();
            union.sort_unstable();
            union.dedup();
            if union != self.edges {
                return Err("keyword edge union differs from answer edges".into());
            }
        }
        if !self.score.is_finite() || self.score < 0.0 {
            return Err(format!("score {} not a finite non-negative value", self.score));
        }
        Ok(())
    }
}

/// Ordering used for final ranking: ascending score, then shallower, then
/// smaller, then by central-node id for determinism.
pub fn answer_order(a: &CentralGraph, b: &CentralGraph) -> std::cmp::Ordering {
    a.score
        .partial_cmp(&b.score)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.depth.cmp(&b.depth))
        .then(a.nodes.len().cmp(&b.nodes.len()))
        .then(a.central.cmp(&b.central))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(central: u32, nodes: &[u32], score: f64) -> CentralGraph {
        CentralGraph {
            central: NodeId(central),
            depth: 1,
            nodes: nodes.iter().map(|&n| NodeId(n)).collect(),
            edges: vec![],
            keyword_nodes: vec![vec![NodeId(nodes[0])]],
            keyword_edges: vec![vec![]],
            score,
        }
    }

    #[test]
    fn strict_containment_is_proper_superset() {
        let big = answer(1, &[1, 2, 3, 4], 1.0);
        let small = answer(1, &[2, 3], 1.0);
        let other = answer(1, &[2, 5], 1.0);
        assert!(big.strictly_contains(&small));
        assert!(!small.strictly_contains(&big));
        assert!(!big.strictly_contains(&other));
        assert!(!big.strictly_contains(&big), "equal sets are not strict");
    }

    #[test]
    fn invariants_catch_malformed_answers() {
        let mut a = answer(1, &[1, 2, 3], 0.5);
        assert!(a.check_invariants().is_ok());
        a.central = NodeId(9);
        assert!(a.check_invariants().is_err());
        let mut b = answer(1, &[1, 2], 0.5);
        b.edges = vec![(NodeId(2), NodeId(1))];
        assert!(b.check_invariants().is_err(), "unnormalized edge");
        let mut c = answer(1, &[1, 2], 0.5);
        c.keyword_nodes = vec![vec![]];
        assert!(c.check_invariants().is_err(), "uncovered keyword");
        let mut d = answer(1, &[1, 2], f64::NAN);
        d.score = f64::NAN;
        assert!(d.check_invariants().is_err());
    }

    #[test]
    fn ordering_prefers_score_then_depth_then_size() {
        let a = answer(1, &[1], 0.5);
        let mut b = answer(2, &[2], 0.5);
        b.depth = 2;
        let c = answer(3, &[3], 0.1);
        let mut v = [a.clone(), b.clone(), c.clone()];
        v.sort_by(answer_order);
        assert_eq!(v[0].central, c.central);
        assert_eq!(v[1].central, a.central, "same score: shallower first");
        assert_eq!(v[2].central, b.central);
    }
}
