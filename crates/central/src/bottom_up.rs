//! Stage 1: bottom-up search (paper Algorithm 1 lines 1–7 and
//! Algorithm 2), solving the top-(k,d) Central Graph problem.
//!
//! The driver is level-synchronous: per level it (1) drains `FIdentifier`
//! into the joint frontier queue, (2) identifies Central Nodes among the
//! frontiers (Lemma V.1), (3) stops if `k` central nodes exist (Def. 4 —
//! the current level is then the minimal depth `d`), and otherwise
//! (4) runs the expansion procedure. How each step is scheduled (sequential,
//! coarse-grained rayon, or GPU-kernel-style fine-grained) is delegated to
//! an [`ExecStrategy`]; the *semantics* are identical across strategies,
//! which the property suite verifies.

use crate::activation::ActivationMap;
use crate::budget::BudgetTracker;
use crate::error::SearchError;
use crate::profile::PhaseProfile;
use crate::state::SearchState;
use crate::trace::TraceLevelRecord;
use crate::{model::INFINITE_LEVEL, SearchParams};
use kgraph::{KnowledgeGraph, NodeId};
use std::time::Instant;

/// Everything an expansion step needs (read-only except for `state`'s
/// atomics).
#[derive(Clone, Copy)]
pub struct ExpandCtx<'a> {
    /// The data graph.
    pub graph: &'a KnowledgeGraph,
    /// Activation oracle (`a_v` from `w_v` and `α`, or explicit).
    pub act: &'a ActivationMap<'a>,
    /// Shared lock-free search state.
    pub state: &'a SearchState,
    /// Budget accounting: every expansion unit is charged here, and a
    /// tripped budget makes further expansion a no-op (the driver then
    /// surfaces the error at its next level checkpoint).
    pub budget: &'a BudgetTracker,
}

/// Expand one frontier node across **all** BFS instances — the body of
/// Algorithm 2's outer loop. This is the unit of work of the coarse-grained
/// CPU strategy (one OpenMP/rayon task per frontier, dynamically
/// scheduled).
#[inline]
pub fn expand_frontier(ctx: &ExpandCtx<'_>, f: u32, level: u8) {
    let state = ctx.state;
    if ctx.budget.cancelled() {
        return;
    }
    ctx.budget.charge(state.num_keywords() as u64);
    // Central Nodes are unavailable for expansion (Alg. 2 lines 2–3).
    if state.is_central(f) {
        return;
    }
    let vf = NodeId(f);
    // A node expands only once the level reaches its activation (lines 4–7);
    // until then it stays a frontier.
    if ctx.act.level(vf) > level {
        state.mark_frontier(f);
        return;
    }
    for i in 0..state.num_keywords() {
        expand_instance(ctx, f, vf, i, level);
    }
}

/// Expand one `(frontier, BFS instance)` pair — the body of Algorithm 2's
/// middle loop, and the warp-level work item of the GPU strategy.
#[inline]
pub fn expand_work_item(ctx: &ExpandCtx<'_>, f: u32, i: usize, level: u8) {
    let state = ctx.state;
    if ctx.budget.cancelled() {
        return;
    }
    ctx.budget.charge(1);
    if state.is_central(f) {
        return;
    }
    let vf = NodeId(f);
    if ctx.act.level(vf) > level {
        state.mark_frontier(f);
        return;
    }
    expand_instance(ctx, f, vf, i, level);
}

/// Inner loop shared by both granularities: push instance `i` of frontier
/// `f` one step (Alg. 2 lines 8–22).
#[inline]
fn expand_instance(ctx: &ExpandCtx<'_>, f: u32, vf: NodeId, i: usize, level: u8) {
    let state = ctx.state;
    // The frontier must already be hit in this instance (line 9–11).
    let hf = state.hit(f, i);
    if hf > level {
        return; // includes the ∞ sentinel
    }
    for adj in ctx.graph.neighbors(vf) {
        let n = adj.target().0;
        // Visited in B_i already (lines 13–15): both ∞→l+1 races and
        // stale reads are benign — any finite value means "skip".
        if state.hit(n, i) != INFINITE_LEVEL {
            continue;
        }
        // Non-keyword nodes cannot be hit before their activation allows
        // (lines 16–20); the frontier stays alive to retry next level.
        if !state.is_keyword_node(n) && ctx.act.level(adj.target()) > level + 1 {
            state.mark_frontier(f);
            continue;
        }
        state.set_hit(n, i, level + 1); // line 21
        state.mark_frontier(n); // line 22
    }
}

/// Sequential frontier enqueue: scan `FIdentifier`, clearing flags and
/// appending set nodes. The paper found sequential enqueue fastest on CPU
/// (locked parallel writes are slower than one linear scan).
pub fn enqueue_sequential(state: &SearchState, out: &mut Vec<u32>) {
    out.clear();
    for v in 0..state.num_nodes() as u32 {
        if state.take_frontier_flag(v) {
            out.push(v);
        }
    }
}

/// Parallel frontier enqueue by block compaction — the GPU-style variant
/// (the paper parallelizes enqueue only on the GPU; on CPU it found the
/// sequential scan faster, which the `enqueue` Criterion bench confirms).
/// Each block drains its slice of `FIdentifier` into a local buffer;
/// blocks concatenate in order, so the result equals the sequential scan.
pub fn enqueue_parallel_compaction(
    pool: &rayon::ThreadPool,
    state: &SearchState,
    out: &mut Vec<u32>,
    block: usize,
) {
    use rayon::prelude::*;
    out.clear();
    let n = state.num_nodes();
    let blocks: Vec<Vec<u32>> = pool.install(|| {
        (0..n.div_ceil(block))
            .into_par_iter()
            .map(|blk| {
                let lo = blk * block;
                let hi = (lo + block).min(n);
                let mut local = Vec::new();
                for v in lo as u32..hi as u32 {
                    if state.take_frontier_flag(v) {
                        local.push(v);
                    }
                }
                local
            })
            .collect()
    });
    for b in blocks {
        out.extend(b);
    }
}

/// Sequential Central Node identification over the current frontiers:
/// a frontier whose `M` row is complete is newly central, with depth =
/// current level (Lemma V.1). Returns the newly identified nodes (sorted,
/// since frontiers are produced in id order).
pub fn identify_sequential(
    state: &SearchState,
    frontiers: &[u32],
    level: u8,
    newly: &mut Vec<u32>,
) {
    newly.clear();
    for &f in frontiers {
        if !state.is_central(f) && state.row_complete(f) {
            state.mark_central(f, level);
            newly.push(f);
        }
    }
}

/// How each phase of one level executes. Implementations live in
/// [`crate::engine`].
pub trait ExecStrategy {
    /// Drain `FIdentifier` into `out`.
    fn enqueue(&self, state: &SearchState, out: &mut Vec<u32>);
    /// Identify new Central Nodes among `frontiers` at `level` (their
    /// depth, per Lemma V.1), appending them to `newly`.
    fn identify(&self, state: &SearchState, frontiers: &[u32], level: u8, newly: &mut Vec<u32>);
    /// Run the expansion procedure for one level.
    fn expand(&self, ctx: &ExpandCtx<'_>, frontiers: &[u32], level: u8);
}

/// Why the bottom-up stage stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TerminationReason {
    /// At least `top_k` Central Nodes exist — depth `d` is minimal (Def. 4).
    EnoughCentralNodes,
    /// The joint frontier queue drained before `k` answers appeared.
    FrontierExhausted,
    /// The `lmax` level cap was reached.
    LevelCap,
}

/// Per-level trace entry: how the level-synchronous search progressed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelTrace {
    /// BFS expansion level.
    pub level: u8,
    /// Joint frontier size at this level.
    pub frontier: usize,
    /// Central Nodes newly identified at this level.
    pub identified: usize,
}

/// Reusable scratch buffers of the level-synchronous driver: the joint
/// frontier queue and the per-level identification buffer. A
/// [`crate::session::SearchSession`] keeps one across queries so the warm
/// path re-enters [`run`] with capacity already grown to the working set.
#[derive(Default)]
pub struct BottomUpScratch {
    /// Joint frontier queue, refilled per level by `ExecStrategy::enqueue`.
    pub frontiers: Vec<u32>,
    /// Central Nodes newly identified at the current level.
    pub newly: Vec<u32>,
}

/// Result of the bottom-up stage.
#[derive(Debug)]
pub struct BottomUpOutcome {
    /// Identified Central Nodes with their depths, in identification order
    /// (ascending depth, then node id).
    pub central_nodes: Vec<(NodeId, u8)>,
    /// The last BFS level processed.
    pub last_level: u8,
    /// Why the search stopped.
    pub terminated: TerminationReason,
    /// Peak size of the joint frontier queue (reported by experiments).
    pub peak_frontier: usize,
    /// One entry per processed level (frontier size, identifications).
    pub trace: Vec<LevelTrace>,
    /// Rich per-level records, collected only when the query asked for
    /// tracing (`params.trace`); `None` on the untraced path.
    pub records: Option<Vec<TraceLevelRecord>>,
}

/// Run the bottom-up stage with the given strategy. `ctx.state` must be
/// freshly armed for the query (sources seeded); `scratch` may carry
/// capacity from earlier queries. Phase timings are accumulated into
/// `profile`. The `ctx.budget` tracker is checkpointed at every level
/// boundary and charged inside the expansion procedure; a tripped budget
/// aborts the stage with the corresponding [`SearchError`].
pub fn run<S: ExecStrategy>(
    strategy: &S,
    ctx: &ExpandCtx<'_>,
    scratch: &mut BottomUpScratch,
    params: &SearchParams,
    profile: &mut PhaseProfile,
) -> Result<BottomUpOutcome, SearchError> {
    let ExpandCtx { state, budget, .. } = *ctx;
    let max_level = params.max_level.min(254);
    let BottomUpScratch { frontiers, newly } = scratch;
    let mut central_nodes: Vec<(NodeId, u8)> = Vec::new();
    let mut peak_frontier = 0usize;
    let mut trace: Vec<LevelTrace> = Vec::new();
    let mut records: Option<Vec<TraceLevelRecord>> = params.trace.enabled().then(Vec::new);
    let mut level: u8 = 0;
    let terminated = loop {
        budget.checkpoint()?;
        let t = Instant::now();
        strategy.enqueue(state, frontiers);
        profile.enqueue += t.elapsed();
        peak_frontier = peak_frontier.max(frontiers.len());
        if frontiers.is_empty() {
            break TerminationReason::FrontierExhausted;
        }

        let t = Instant::now();
        strategy.identify(state, frontiers, level, newly);
        profile.identify += t.elapsed();
        trace.push(LevelTrace { level, frontier: frontiers.len(), identified: newly.len() });
        if let Some(recs) = records.as_mut() {
            recs.push(observe_level(ctx, frontiers, newly, level));
        }
        central_nodes.extend(newly.iter().map(|&f| (NodeId(f), level)));
        if central_nodes.len() >= params.top_k {
            break TerminationReason::EnoughCentralNodes;
        }
        if level >= max_level {
            break TerminationReason::LevelCap;
        }

        let charged_before = if records.is_some() {
            budget.expansions()
        } else {
            0
        };
        let t = Instant::now();
        strategy.expand(ctx, frontiers, level);
        profile.expansion += t.elapsed();
        if let Some(last) = records.as_mut().and_then(|r| r.last_mut()) {
            last.expansions = budget.expansions() - charged_before;
            last.budget_remaining = budget.remaining();
        }
        level += 1;
    };
    Ok(BottomUpOutcome {
        central_nodes,
        last_level: level,
        terminated,
        peak_frontier,
        trace,
        records,
    })
}

/// Build the rich trace record for one level: how many keyword-hit cells
/// were first covered here and how many frontier nodes are still gated by
/// their activation level. O(frontier · q) scans, paid only on traced
/// queries.
fn observe_level(
    ctx: &ExpandCtx<'_>,
    frontiers: &[u32],
    newly: &[u32],
    level: u8,
) -> TraceLevelRecord {
    let state = ctx.state;
    let q = state.num_keywords();
    let mut new_hits = 0usize;
    let mut activation_deferred = 0usize;
    for &f in frontiers {
        for i in 0..q {
            if state.hit(f, i) == level {
                new_hits += 1;
            }
        }
        if ctx.act.level(NodeId(f)) > level {
            activation_deferred += 1;
        }
    }
    TraceLevelRecord {
        level: u32::from(level),
        frontier: frontiers.len(),
        identified: newly.len(),
        new_hits,
        activation_deferred,
        expansions: 0, // filled in after this level's expansion runs
        budget_remaining: ctx.budget.remaining(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::ActivationMap;
    use crate::budget::QueryBudget;
    use kgraph::GraphBuilder;
    use std::time::Duration;
    use textindex::{InvertedIndex, ParsedQuery};

    /// Sequential strategy for driver tests (the engines define their own).
    struct Seq;
    impl ExecStrategy for Seq {
        fn enqueue(&self, state: &SearchState, out: &mut Vec<u32>) {
            enqueue_sequential(state, out);
        }
        fn identify(
            &self,
            state: &SearchState,
            frontiers: &[u32],
            level: u8,
            newly: &mut Vec<u32>,
        ) {
            identify_sequential(state, frontiers, level, newly);
        }
        fn expand(&self, ctx: &ExpandCtx<'_>, frontiers: &[u32], level: u8) {
            for &f in frontiers {
                expand_frontier(ctx, f, level);
            }
        }
    }

    fn run_on(
        g: &KnowledgeGraph,
        raw_query: &str,
        activation: Vec<u8>,
        top_k: usize,
    ) -> (BottomUpOutcome, SearchState) {
        let idx = InvertedIndex::build(g);
        let q = ParsedQuery::parse(&idx, raw_query);
        let state = SearchState::new(g.num_nodes(), &q);
        let act = ActivationMap::Explicit(&activation);
        let params = SearchParams::default().with_top_k(top_k);
        let mut profile = PhaseProfile::default();
        let budget = QueryBudget::unlimited().start();
        let ctx = ExpandCtx { graph: g, act: &act, state: &state, budget: &budget };
        let out = run(&Seq, &ctx, &mut BottomUpScratch::default(), &params, &mut profile)
            .expect("unlimited budget");
        (out, state)
    }

    /// The paper's Fig. 2: B0 from v0, B1 from {v1, v2}; v3 central at
    /// depth 1, v4 central at depth 2.
    fn fig2_graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let v0 = b.add_node("v0", "alpha");
        let v1 = b.add_node("v1", "beta");
        let v2 = b.add_node("v2", "beta");
        let v3 = b.add_node("v3", "mid");
        let v4 = b.add_node("v4", "far");
        b.add_edge(v0, v3, "e");
        b.add_edge(v1, v3, "e");
        b.add_edge(v3, v4, "e");
        b.add_edge(v1, v4, "e");
        b.add_edge(v2, v4, "e");
        b.build()
    }

    #[test]
    fn fig2_hitting_levels_and_central_nodes() {
        let g = fig2_graph();
        let (out, state) = run_on(&g, "alpha beta", vec![0; 5], 10);
        // Hitting levels per Example 1: h(v3, B0) = h(v3, B1) = 1 and
        // h(v4, B1) = 1 (v1→v4 directly).
        assert_eq!(state.hit(3, 0), 1);
        assert_eq!(state.hit(3, 1), 1);
        assert_eq!(state.hit(4, 1), 1);
        // v3 is central at depth 1. Definition 3 alone would also make v4
        // central at depth 2 (Example 3), but the algorithm's repetition
        // rule — "once a node is identified as a Central Node, it becomes
        // unavailable for future expansion" — stops B0 at v3, so B0 never
        // reaches v4 and the answer at v4 (a strict extension of v3's) is
        // deliberately not produced.
        assert_eq!(state.hit(4, 0), INFINITE_LEVEL);
        assert_eq!(out.central_nodes, vec![(NodeId(3), 1)]);
        assert_eq!(out.terminated, TerminationReason::FrontierExhausted);
    }

    #[test]
    fn top_k_terminates_at_minimal_depth() {
        let g = fig2_graph();
        let (out, _) = run_on(&g, "alpha beta", vec![0; 5], 1);
        // k = 1 ⇒ stop at depth 1 with only v3.
        assert_eq!(out.central_nodes, vec![(NodeId(3), 1)]);
        assert_eq!(out.terminated, TerminationReason::EnoughCentralNodes);
        assert_eq!(out.last_level, 1);
    }

    #[test]
    fn activation_delays_hits() {
        let g = fig2_graph();
        // v3 requires level 2 to accept expansion: the B0/B1 hits on v3 are
        // postponed (a_3 = 2 > l+1 until l = 1), and v4 is then reached
        // through v1/v2 directly for B1 and through v3 late for B0.
        let (out, state) = run_on(&g, "alpha beta", vec![0, 0, 0, 2, 0], 10);
        assert_eq!(state.hit(3, 0), 2, "v3 hit by B0 postponed to level 2");
        assert_eq!(state.hit(3, 1), 2);
        assert_eq!(state.hit(4, 1), 1, "v4 unaffected: direct from v1/v2");
        // With the delay, v3 completes its row at level 2 instead of 1.
        assert_eq!(out.central_nodes, vec![(NodeId(3), 2)]);
    }

    #[test]
    fn keyword_nodes_are_hit_regardless_of_activation() {
        // Sec. IV-B compromise: keyword nodes may be HIT at any level but
        // only EXPAND once active.
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", "alpha");
        let k = b.add_node("k", "beta hub"); // keyword node with huge activation
        let c = b.add_node("c", "alpha");
        b.add_edge(a, k, "e");
        b.add_edge(k, c, "e");
        let g = b.build();
        let (out, state) = run_on(&g, "alpha beta", vec![0, 5, 0], 10);
        // k is hit by B0 at level 1 despite a_k = 5…
        assert_eq!(state.hit(1, 0), 1);
        assert_eq!(out.central_nodes[0], (NodeId(1), 1));
        // …and, being identified as central right away, never expands, so
        // c is never hit by B1 (it would also have been gated by a_k = 5).
        assert_eq!(state.hit(2, 1), INFINITE_LEVEL);
    }

    #[test]
    fn sources_covering_all_keywords_are_depth_zero_central() {
        let mut b = GraphBuilder::new();
        b.add_node("x", "apple banana");
        b.add_node("y", "apple");
        let g = b.build();
        let (out, _) = run_on(&g, "apple banana", vec![0; 2], 10);
        assert_eq!(out.central_nodes[0], (NodeId(0), 0));
    }

    #[test]
    fn disconnected_keywords_exhaust_frontier() {
        let mut b = GraphBuilder::new();
        b.add_node("x", "apple");
        b.add_node("y", "banana");
        let g = b.build();
        let (out, _) = run_on(&g, "apple banana", vec![0; 2], 10);
        assert!(out.central_nodes.is_empty());
        assert_eq!(out.terminated, TerminationReason::FrontierExhausted);
    }

    #[test]
    fn level_cap_stops_runaway_search() {
        // A long path between the two keywords; cap the level below the
        // distance.
        let mut b = GraphBuilder::new();
        let first = b.add_node("n0", "apple");
        let mut prev = first;
        for i in 1..40 {
            let v = b.add_node(&format!("n{i}"), "mid");
            b.add_edge(prev, v, "e");
            prev = v;
        }
        let last = b.add_node("z", "banana");
        b.add_edge(prev, last, "e");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let q = ParsedQuery::parse(&idx, "apple banana");
        let state = SearchState::new(g.num_nodes(), &q);
        let activation = vec![0u8; g.num_nodes()];
        let act = ActivationMap::Explicit(&activation);
        let params = SearchParams::default().with_top_k(5);
        let params = SearchParams { max_level: 6, ..params };
        let mut profile = PhaseProfile::default();
        let budget = QueryBudget::unlimited().start();
        let ctx = ExpandCtx { graph: &g, act: &act, state: &state, budget: &budget };
        let out = run(&Seq, &ctx, &mut BottomUpScratch::default(), &params, &mut profile)
            .expect("unlimited budget");
        assert_eq!(out.terminated, TerminationReason::LevelCap);
        assert!(out.central_nodes.is_empty());
        assert_eq!(out.last_level, 6);
    }

    /// Run the driver on the Fig. 2 graph under `budget` and return the
    /// result.
    fn run_budgeted(budget: QueryBudget) -> Result<BottomUpOutcome, SearchError> {
        let g = fig2_graph();
        let idx = InvertedIndex::build(&g);
        let q = ParsedQuery::parse(&idx, "alpha beta");
        let state = SearchState::new(g.num_nodes(), &q);
        let activation = vec![0u8; g.num_nodes()];
        let act = ActivationMap::Explicit(&activation);
        let params = SearchParams::default().with_top_k(10);
        let mut profile = PhaseProfile::default();
        let tracker = budget.start();
        let ctx = ExpandCtx { graph: &g, act: &act, state: &state, budget: &tracker };
        run(&Seq, &ctx, &mut BottomUpScratch::default(), &params, &mut profile)
    }

    #[test]
    fn expired_deadline_aborts_before_any_level() {
        let err = run_budgeted(QueryBudget::unlimited().with_timeout(Duration::ZERO)).unwrap_err();
        assert_eq!(err, SearchError::DeadlineExceeded { limit: Duration::ZERO });
    }

    #[test]
    fn tiny_expansion_cap_aborts_the_search() {
        // Every frontier expansion charges q = 2 units; a 1-unit budget
        // trips during level 0 and surfaces at the level-1 checkpoint.
        let err = run_budgeted(QueryBudget::unlimited().with_max_expansions(1)).unwrap_err();
        assert_eq!(err, SearchError::BudgetExhausted { limit: 1 });
    }

    #[test]
    fn generous_budget_changes_nothing() {
        let out = run_budgeted(
            QueryBudget::unlimited()
                .with_timeout(Duration::from_secs(60))
                .with_max_expansions(1_000_000),
        )
        .expect("generous budget must not trip");
        assert_eq!(out.central_nodes, vec![(NodeId(3), 1)]);
    }

    /// Paper Fig. 4 running example: keywords XML (T = {v9}),
    /// RDF (T = {v4, v5}), SQL (T = {v1}); activations as drawn; v2 is
    /// identified as the Central Node with depth 4.
    #[test]
    fn fig4_running_example() {
        let mut b = GraphBuilder::new();
        // Fig. 1 topology (edges as drawn, direction irrelevant to BFS).
        let texts: [(&str, &str); 10] = [
            ("v0", "Facebook Query Language"),
            ("v1", "SQL"),
            ("v2", "Query language"),
            ("v3", "XPath"),
            ("v4", "SPARQL query language for RDF"),
            ("v5", "RDF query language"),
            ("v6", "XPath 2"),
            ("v7", "XPath 3"),
            ("v8", "XQuery"),
            ("v9", "XML"),
        ];
        let ids: Vec<_> = texts.iter().map(|(k, t)| b.add_node(k, t)).collect();
        // v2 is the hub the keyword paths converge on; v9 (XML) reaches it
        // through the XPath family and XQuery, v4/v5 (RDF) both directly
        // and through XPath, v1 (SQL) directly — multi-paths per keyword,
        // as in Fig. 1.
        for (s, d) in [
            (0, 2),
            (1, 2),
            (3, 2),
            (8, 2),
            (4, 2),
            (5, 2),
            (4, 3),
            (5, 3),
            (6, 3),
            (7, 3),
            (9, 6),
            (9, 7),
            (9, 8),
        ] {
            b.add_edge(ids[s], ids[d], "e");
        }
        let g = b.build();
        // Activations from Fig. 4: v0:2, v1:1, v2:4, v3:2, v4:0, v5:1,
        // v6:0, v7:1, v8:0, v9:1. (Query terms: XML, RDF, SQL.)
        let activation = vec![2, 1, 4, 2, 0, 1, 0, 1, 0, 1];
        let idx = InvertedIndex::build(&g);
        let q = ParsedQuery::parse(&idx, "XML RDF SQL");
        assert_eq!(q.num_keywords(), 3);
        let state = SearchState::new(g.num_nodes(), &q);
        let act = ActivationMap::Explicit(&activation);
        let params = SearchParams::default().with_top_k(1);
        let mut profile = PhaseProfile::default();
        let budget = QueryBudget::unlimited().start();
        let ctx = ExpandCtx { graph: &g, act: &act, state: &state, budget: &budget };
        let out = run(&Seq, &ctx, &mut BottomUpScratch::default(), &params, &mut profile)
            .expect("unlimited budget");
        assert_eq!(out.central_nodes.len(), 1);
        let (central, depth) = out.central_nodes[0];
        assert_eq!(central, ids[2], "v2 is the Central Node");
        assert_eq!(depth, 4, "identified in the iteration after level 3");
        // Example 4's intermediate hitting levels: h6^0 = h7^0 = h8^0 = 2
        // via v9's expansion at level 1 — v9's BFS is instance 0 (XML).
        assert_eq!(state.hit(6, 0), 2);
        assert_eq!(state.hit(7, 0), 2);
        assert_eq!(state.hit(8, 0), 2);
        // h3^1 = 2: v3 accepts RDF expansion at level 1 (a3 = 2 ≤ l+1).
        assert_eq!(state.hit(3, 1), 2);
    }
}
