//! `wikisearch serve` — a line-protocol TCP query service, the offline
//! analogue of the paper's hosted WikiSearch endpoint.
//!
//! Protocol: one UTF-8 line per request, one line per response.
//!
//! * `QUERY <keywords…>` → one JSON line with the ranked answers;
//! * `PING` → `PONG`;
//! * `STATS` → one JSON line with serving counters: queries served, the
//!   session-pool snapshot, and the result-cache snapshot (`null` when
//!   the cache is disabled). Diagnostic — does not count toward
//!   `--max-requests`;
//! * `QUIT` → closes the connection;
//! * anything else — an unknown command, an empty line, or a `QUERY`
//!   with no keywords — is answered with a one-line JSON error
//!   (`{"error": …}`) on the same connection; no request is ever
//!   silently dropped.
//!
//! Connections are handled by a bounded worker pool (`--workers N`,
//! default 4): the acceptor hands each connection to an idle worker, and
//! all workers share one `Arc<WikiSearch>`, so inter-query concurrency
//! composes with the intra-query parallelism of the engine backends —
//! each in-flight query checks a warm session out of the engine's
//! session pool instead of contending on a process-wide lock.
//! `--max-requests N` makes the server drain gracefully after `N`
//! queries (in-flight connections finish, then the listener closes),
//! which is how the tests and demo scripts drive it.
//!
//! A sharded result cache (see `central::cache`) sits in front of the
//! session pool; `--cache-capacity BYTES` sizes it (suffixes `k`/`m`/`g`
//! accepted, default 64m, `0` disables). Repeated queries — including
//! reorderings, case changes, and stopword variations of one another —
//! are answered from the cache without touching a session.

use crate::args::ParsedArgs;
use crate::commands::read_graph;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use wikisearch_engine::{Backend, WikiSearch};

/// How often a blocked worker wakes up to check for drain.
const DRAIN_POLL: Duration = Duration::from_millis(50);

/// Run the server until `max_requests` queries have been answered (or
/// forever when it is 0).
pub fn serve(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), String> {
    args.allow_only(&[
        "graph",
        "port",
        "backend",
        "threads",
        "top-k",
        "max-requests",
        "workers",
        "cache-capacity",
    ])?;
    let port: u16 = args.get_or("port", 7878)?;
    let threads: usize = args.get_or("threads", 4)?;
    let max_requests: usize = args.get_or("max-requests", 0)?;
    let workers: usize = args.get_or("workers", 4)?;
    let cache_capacity = args.get_bytes("cache-capacity", 64 << 20)?;
    if workers == 0 {
        return Err("--workers must be >= 1".into());
    }
    let backend = Backend::parse(args.optional("backend").unwrap_or("cpu"), threads)?;
    let graph = read_graph(args.required("graph")?)?;
    let mut ws = WikiSearch::build_with(graph, backend);
    let mut params = ws.params().clone();
    params.top_k = args.get_or("top-k", params.top_k)?;
    ws.set_params(params);
    ws.set_cache_capacity(cache_capacity);
    let ws = Arc::new(ws);

    let listener = TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("bind 127.0.0.1:{port}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    writeln!(
        out,
        "wikisearch serving on 127.0.0.1:{} ({} nodes indexed, {workers} workers)",
        addr.port(),
        ws.graph().num_nodes()
    )
    .map_err(|e| e.to_string())?;

    let served = AtomicUsize::new(0);
    let draining = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Mutex::new(rx);
    let mut accept_error = None;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Hold the receiver lock only while dequeuing, so idle
                // workers take turns; a closed channel means the acceptor
                // is done and the queue is drained.
                let next = rx.lock().expect("receiver lock").recv();
                let Ok(stream) = next else { break };
                handle_connection(stream, &ws, &served, max_requests, &draining, addr);
            });
        }
        for stream in listener.incoming() {
            if draining.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(e) => {
                    accept_error = Some(format!("accept: {e}"));
                    break;
                }
            };
            if tx.send(stream).is_err() {
                break;
            }
        }
        // Closing the channel lets workers finish queued connections and
        // exit; the scope joins them before returning.
        drop(tx);
    });

    if let Some(e) = accept_error {
        return Err(e);
    }
    writeln!(out, "served {} queries, shutting down", served.load(Ordering::SeqCst))
        .map_err(|e| e.to_string())
}

/// Serve one connection until the peer quits, hangs up, or the server
/// drains. Increments `served` per answered query; the query that
/// reaches `max_requests` flips `draining` and dials the listener once
/// to wake the blocked acceptor.
fn handle_connection(
    stream: TcpStream,
    ws: &WikiSearch,
    served: &AtomicUsize,
    max_requests: usize,
    draining: &AtomicBool,
    addr: SocketAddr,
) {
    // A finite read timeout lets the worker notice a drain even while its
    // client sits idle on an open connection.
    let _ = stream.set_read_timeout(Some(DRAIN_POLL));
    let Ok(peer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(peer);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        // `read_line` appends, so a line split across timeout wakeups
        // accumulates until its newline arrives; `line` is only cleared
        // after a complete request was handled.
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if draining.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        }
        let request = line.trim();
        if request.eq_ignore_ascii_case("QUIT") {
            break;
        }
        let mut done = false;
        if request.eq_ignore_ascii_case("PING") {
            if writeln!(writer, "PONG").is_err() {
                break;
            }
        } else if request.eq_ignore_ascii_case("STATS") {
            let doc = stats_snapshot(ws, served.load(Ordering::SeqCst));
            if writeln!(writer, "{doc}").is_err() {
                break;
            }
        } else if let Some(keywords) = query_keywords(request) {
            if keywords.is_empty() {
                if writeln!(writer, r#"{{"error":"empty query"}}"#).is_err() {
                    break;
                }
            } else {
                let doc = answer_query(ws, keywords);
                let n = served.fetch_add(1, Ordering::SeqCst) + 1;
                if max_requests > 0 && n >= max_requests && !draining.swap(true, Ordering::SeqCst) {
                    // Wake the acceptor blocked in accept() so it can
                    // observe the drain; the throwaway connection is
                    // dropped by whichever worker receives it.
                    let _ = TcpStream::connect(addr);
                    done = true;
                }
                if writeln!(writer, "{doc}").is_err() {
                    break;
                }
            }
        } else if writeln!(writer, r#"{{"error":"expected QUERY/PING/STATS/QUIT"}}"#).is_err() {
            break;
        }
        if done {
            break;
        }
        line.clear();
    }
}

/// The keyword part of a `QUERY …` request, or `None` if the line is not
/// a QUERY at all. `QUERY` with nothing after it parses as an empty
/// keyword list (answered with an error, not ignored).
fn query_keywords(request: &str) -> Option<&str> {
    let rest = request.strip_prefix("QUERY")?;
    if !rest.is_empty() && !rest.starts_with(char::is_whitespace) {
        return None; // e.g. "QUERYX" — an unknown command, not a query
    }
    Some(rest.trim())
}

/// One `STATS` response line: queries served so far plus live pool and
/// cache counters. `cache` is JSON `null` when `--cache-capacity 0`.
fn stats_snapshot(ws: &WikiSearch, served: usize) -> serde_json::Value {
    serde_json::json!({
        "served": served,
        "pool": ws.session_pool().stats(),
        "cache": ws.cache_stats(),
    })
}

/// One response line for one query.
fn answer_query(ws: &WikiSearch, q: &str) -> serde_json::Value {
    let result = ws.search(q);
    let answers: Vec<serde_json::Value> = result
        .answers
        .iter()
        .map(|a| {
            serde_json::json!({
                "central": ws.graph().node_text(a.central),
                "depth": a.depth,
                "score": a.score,
                "nodes": a.nodes.len(),
                "edges": a.edges.len(),
            })
        })
        .collect();
    serde_json::json!({
        "query": q,
        "answers": answers,
        "unmatched": result.query.unmatched,
        "ms": result.profile.total().as_secs_f64() * 1e3,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;

    fn free_port() -> u16 {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = probe.local_addr().unwrap().port();
        drop(probe);
        port
    }

    fn tiny_graph_file(tag: &str) -> String {
        let path = std::env::temp_dir()
            .join(format!("ws-serve-{}-{tag}.tsv", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let mut b = kgraph::GraphBuilder::new();
        let x = b.add_node("x", "xml");
        let q = b.add_node("q", "query language");
        let s = b.add_node("s", "sql");
        b.add_edge(x, q, "rel");
        b.add_edge(s, q, "rel");
        std::fs::write(&path, kgraph::io::to_tsv(&b.build())).unwrap();
        path
    }

    fn connect(port: u16) -> TcpStream {
        for _ in 0..100 {
            if let Ok(s) = TcpStream::connect(("127.0.0.1", port)) {
                return s;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        panic!("server not reachable on port {port}");
    }

    #[test]
    fn serves_queries_over_tcp() {
        let path = tiny_graph_file("basic");
        let port = free_port();
        let argv: Vec<String> =
            format!("serve --graph {path} --port {port} --backend seq --max-requests 2")
                .split_whitespace()
                .map(String::from)
                .collect();
        let args = parse(&argv).unwrap();
        let server = std::thread::spawn(move || {
            let mut out = Vec::new();
            serve(&args, &mut out).unwrap();
            String::from_utf8(out).unwrap()
        });

        let mut stream = connect(port);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();

        writeln!(stream, "PING").unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "PONG");

        line.clear();
        writeln!(stream, "QUERY xml sql").unwrap();
        reader.read_line(&mut line).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(doc["answers"][0]["central"], "query language");

        line.clear();
        writeln!(stream, "nonsense protocol line").unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("error"));

        line.clear();
        writeln!(stream, "QUERY").unwrap();
        reader.read_line(&mut line).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(doc["error"], "empty query", "{line}");

        line.clear();
        writeln!(stream).unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("error"), "empty line answered, not ignored: {line}");

        line.clear();
        writeln!(stream, "QUERY sql").unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("answers"));
        writeln!(stream, "QUIT").unwrap();

        let log = server.join().unwrap();
        assert!(log.contains("served 2 queries"), "{log}");
        assert!(log.contains("4 workers"), "{log}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn drains_even_when_another_connection_stays_open() {
        // A second client holds its connection open without ever sending
        // QUIT; reaching --max-requests on the first must still shut the
        // server down (workers poll the drain flag on read timeout).
        let path = tiny_graph_file("drain");
        let port = free_port();
        let argv: Vec<String> = format!(
            "serve --graph {path} --port {port} --backend seq --workers 2 --max-requests 1"
        )
        .split_whitespace()
        .map(String::from)
        .collect();
        let args = parse(&argv).unwrap();
        let server = std::thread::spawn(move || {
            let mut out = Vec::new();
            serve(&args, &mut out).unwrap();
            String::from_utf8(out).unwrap()
        });

        let idle = connect(port); // parked on a worker, never speaks
        let mut stream = connect(port);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        writeln!(stream, "QUERY xml sql").unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("answers"), "{line}");

        let log = server.join().unwrap();
        assert!(log.contains("served 1 queries"), "{log}");
        drop(idle);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_zero_workers() {
        let argv: Vec<String> = "serve --graph kb.tsv --workers 0"
            .split_whitespace()
            .map(String::from)
            .collect();
        let args = parse(&argv).unwrap();
        let mut out = Vec::new();
        let err = serve(&args, &mut out).unwrap_err();
        assert!(err.contains("--workers"), "{err}");
    }

    #[test]
    fn query_keyword_extraction_is_strict() {
        assert_eq!(query_keywords("QUERY xml sql"), Some("xml sql"));
        assert_eq!(query_keywords("QUERY"), Some(""));
        assert_eq!(query_keywords("QUERY   "), Some(""));
        assert_eq!(query_keywords("QUERYX xml"), None);
        assert_eq!(query_keywords("PING"), None);
        assert_eq!(query_keywords(""), None);
    }
}
