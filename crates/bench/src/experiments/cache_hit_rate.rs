//! Result-cache effectiveness: queries/sec with and without the sharded
//! result cache under a Zipf-skewed query stream, vs concurrent clients.
//!
//! Real keyword-search traffic is heavily repeated — a few popular
//! queries dominate — which is the workload the serving path's result
//! cache (`central::cache`, `serve --cache-capacity`) exists for. This
//! experiment samples each client's stream from a Zipf(s=2) distribution
//! over a pool of distinct queries (the top 8 of 64 carry ~94% of the
//! mass), runs the identical streams against one engine with the cache
//! enabled and one with it disabled, and reports the measured hit rate
//! and the qps speedup for `C` clients in `WIKISEARCH_CLIENTS` (default
//! `1,2,4,8`).
//!
//! Expectation: the stream is >90% repeats, a hit skips the session pool
//! and the whole two-stage search, so cached qps should exceed uncached
//! qps by well over 5x at every client count; hit rate approaches the
//! repeat fraction as the stream warms the cache.

use crate::{client_sweep, queries_per_point};
use datagen::synthetic::SyntheticConfig;
use datagen::QueryWorkload;
use eval::runner::ExperimentSink;
use eval::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;
use std::sync::Arc;
use std::time::Instant;
use wikisearch_engine::{Backend, WikiSearch};

/// Distinct queries in the pool.
const POOL: usize = 64;
/// Zipf exponent; s=2 concentrates ~94% of mass on the top 8 ranks.
const ZIPF_S: f64 = 2.0;

/// One measured datapoint.
struct Point {
    clients: usize,
    total_queries: usize,
    repeat_fraction: f64,
    uncached_qps: f64,
    cached_qps: f64,
    speedup: f64,
    hit_rate: f64,
}

/// Precomputed Zipf CDF over ranks `0..POOL`.
fn zipf_cdf() -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf = Vec::with_capacity(POOL);
    for k in 1..=POOL {
        acc += 1.0 / (k as f64).powf(ZIPF_S);
        cdf.push(acc);
    }
    let total = acc;
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

/// A client's query stream: `len` Zipf-ranked pool indices, seeded per
/// client so cached and uncached runs replay the identical stream.
fn zipf_stream(cdf: &[f64], client: usize, len: usize) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(0xCAFE + client as u64);
    (0..len)
        .map(|_| {
            let u: f64 = rng.random();
            cdf.iter().position(|&c| u <= c).unwrap_or(POOL - 1)
        })
        .collect()
}

/// Run every client's stream concurrently against `ws`; wall seconds.
fn volley(ws: &Arc<WikiSearch>, queries: &[String], streams: &[Vec<usize>]) -> f64 {
    let t = Instant::now();
    std::thread::scope(|scope| {
        for stream in streams {
            let ws = Arc::clone(ws);
            scope.spawn(move || {
                for &qi in stream {
                    let result = ws.search(&queries[qi]);
                    std::hint::black_box(result.answers.len());
                }
            });
        }
    });
    t.elapsed().as_secs_f64()
}

/// Run the cache-hit-rate sweep.
pub fn run() -> serde_json::Value {
    let sweep = client_sweep();
    let per_client = queries_per_point().max(200);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "== cache_hit_rate: Zipf(s={ZIPF_S}) stream over {POOL} queries, cached vs uncached =="
    );
    println!(
        "   clients {sweep:?} x {per_client} queries | dataset wiki2017-sim | {cores} core(s)"
    );

    let ds = SyntheticConfig::wiki2017_sim().generate();
    let name = ds.config.name.clone();
    let mut workload = QueryWorkload::new(5150);
    let queries: Vec<String> = workload.batch(3, POOL);
    let cdf = zipf_cdf();

    let mut points: Vec<Point> = Vec::new();
    for &clients in &sweep {
        let streams: Vec<Vec<usize>> =
            (0..clients).map(|c| zipf_stream(&cdf, c, per_client)).collect();
        let total_queries = clients * per_client;
        let distinct: std::collections::HashSet<usize> =
            streams.iter().flatten().copied().collect();
        let repeat_fraction = 1.0 - distinct.len() as f64 / total_queries as f64;

        let uncached = Arc::new(WikiSearch::build_with(ds.graph.clone(), Backend::ParCpu(2)));
        let mut cached = WikiSearch::build_with(ds.graph.clone(), Backend::ParCpu(2));
        cached.set_cache_capacity(64 << 20);
        let cached = Arc::new(cached);

        // Session-pool warmup only (two queries per client); the cache
        // itself starts cold so misses are part of the measurement.
        let warm: Vec<Vec<usize>> = (0..clients).map(|c| vec![c % POOL, (c + 1) % POOL]).collect();
        volley(&uncached, &queries, &warm);

        let uncached_wall = volley(&uncached, &queries, &streams);
        let cached_wall = volley(&cached, &queries, &streams);
        let stats = cached.cache_stats().expect("cache enabled");

        points.push(Point {
            clients,
            total_queries,
            repeat_fraction,
            uncached_qps: total_queries as f64 / uncached_wall,
            cached_qps: total_queries as f64 / cached_wall,
            speedup: uncached_wall / cached_wall,
            hit_rate: stats.hit_rate(),
        });
    }

    let mut table = Table::new(vec![
        "clients",
        "queries",
        "repeat%",
        "uncached qps",
        "cached qps",
        "speedup",
        "hit rate",
    ]);
    for p in &points {
        table.row(vec![
            p.clients.to_string(),
            p.total_queries.to_string(),
            format!("{:.1}", p.repeat_fraction * 100.0),
            format!("{:.1}", p.uncached_qps),
            format!("{:.1}", p.cached_qps),
            format!("{:.2}x", p.speedup),
            format!("{:.3}", p.hit_rate),
        ]);
    }
    table.print();

    let record = json!({
        "experiment": "cache_hit_rate",
        "dataset": name,
        "cores": cores,
        "pool": POOL,
        "zipf_s": ZIPF_S,
        "queries_per_client": per_client,
        "points": points
            .iter()
            .map(|p| {
                json!({
                    "clients": p.clients,
                    "total_queries": p.total_queries,
                    "repeat_fraction": p.repeat_fraction,
                    "uncached_qps": p.uncached_qps,
                    "cached_qps": p.cached_qps,
                    "speedup": p.speedup,
                    "hit_rate": p.hit_rate,
                })
            })
            .collect::<Vec<_>>(),
    });
    if let Ok(path) = ExperimentSink::new().write("cache_hit_rate", &record) {
        println!("json: {}", path.display());
    }
    record
}
