//! # rclique — the r-clique keyword-search baseline
//!
//! Kargar & An (*Keyword Search in Graphs: Finding r-cliques*, VLDB'11)
//! model an answer as an **r-clique**: one content node per query keyword
//! such that every pair lies within distance `r`; answers are ranked by
//! the sum of pairwise distances. The reproduced paper discusses this
//! model at length (Sec. II) and raises three criticisms, each of which
//! this crate makes concrete and measurable:
//!
//! 1. *"r-clique is not efficient if keywords correspond to large numbers
//!    of nodes"* — [`search::RCliqueSearch`] implements the authors' own
//!    2-approximation, which anchors on every node of one keyword group;
//!    its cost grows with `|T_a| × q` index probes.
//! 2. *"instead of maintaining a distance matrix, it maintains a
//!    neighbor index that records shortest distances smaller than R,
//!    where R should be larger than r. These parameters may be difficult
//!    to fix"* — [`index::NeighborIndex`] is exactly that structure, and
//!    the `rclique_sensitivity` harness in `wikisearch-bench` sweeps `r`
//!    to show the coverage/cost cliff the parameters sit on.
//! 3. *"the output … is a set of keyword nodes"*, with Steiner trees
//!    extracted afterwards and "may not be global optimal" —
//!    [`search::extract_tree`] performs that post-hoc extraction, so the
//!    two-phase cost is visible in benchmarks.

#![warn(missing_docs)]

pub mod index;
pub mod search;

pub use index::NeighborIndex;
pub use search::{CliqueAnswer, RCliqueParams, RCliqueSearch};
