//! Minimal dependency-free argument parsing for the `wikisearch` CLI.
//!
//! The grammar is `wikisearch <command> [--flag value]...`; flags may
//! appear in any order, unknown flags are errors, and every command has a
//! usage string surfaced by `wikisearch help`.

use std::collections::HashMap;

/// A parsed command line: the command word plus its `--flag value` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The command word (`generate`, `search`, …).
    pub command: String,
    flags: HashMap<String, String>,
}

/// Parse `argv` (without the program name).
pub fn parse(argv: &[String]) -> Result<ParsedArgs, String> {
    let mut it = argv.iter();
    let command = it
        .next()
        .ok_or_else(|| "missing command; try `wikisearch help`".to_string())?
        .clone();
    let mut flags = HashMap::new();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected positional argument {arg:?}"));
        };
        let value = it.next().ok_or_else(|| format!("flag --{name} is missing its value"))?.clone();
        if flags.insert(name.to_string(), value).is_some() {
            return Err(format!("flag --{name} given twice"));
        }
    }
    Ok(ParsedArgs { command, flags })
}

impl ParsedArgs {
    /// Required string flag.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Optional string flag.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Optional flag parsed to a type, with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse::<T>().map_err(|_| format!("flag --{name}: cannot parse {v:?}")),
        }
    }

    /// Reject flags outside the allowed set (typo protection).
    pub fn allow_only(&self, allowed: &[&str]) -> Result<(), String> {
        for k in self.flags.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(format!(
                    "unknown flag --{k} for `{}` (allowed: {})",
                    self.command,
                    allowed.iter().map(|a| format!("--{a}")).collect::<Vec<_>>().join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse(&argv("search --query xml --top-k 5")).unwrap();
        assert_eq!(a.command, "search");
        assert_eq!(a.required("query").unwrap(), "xml");
        assert_eq!(a.get_or::<usize>("top-k", 20).unwrap(), 5);
        assert_eq!(a.get_or::<usize>("absent", 20).unwrap(), 20);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&argv("")).is_err());
        assert!(parse(&argv("search query")).is_err(), "positional rejected");
        assert!(parse(&argv("search --query")).is_err(), "dangling flag");
        assert!(parse(&argv("search --q a --q b")).is_err(), "duplicate flag");
    }

    #[test]
    fn allow_only_catches_typos() {
        let a = parse(&argv("generate --dataste tiny")).unwrap();
        let err = a.allow_only(&["dataset", "out"]).unwrap_err();
        assert!(err.contains("--dataste"));
        assert!(err.contains("--dataset"));
    }

    #[test]
    fn typed_parse_errors_are_informative() {
        let a = parse(&argv("search --top-k five")).unwrap();
        let err = a.get_or::<usize>("top-k", 20).unwrap_err();
        assert!(err.contains("five"));
    }
}
