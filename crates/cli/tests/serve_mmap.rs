//! Cold-start smoke test for `serve --mmap`: a server pointed at a
//! compiled `.wsnap` snapshot answers its first query without rebuilding
//! the index or re-reading the dataset — the snapshot is compiled once
//! by `build-snapshot`, then served straight from the mapping — and its
//! answers match a heap-backed server over the same graph byte for byte.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

fn run_cli(line: &str) -> (i32, String) {
    let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
    let mut out = Vec::new();
    let code = wikisearch_cli::run(&argv, &mut out);
    (code, String::from_utf8(out).unwrap())
}

fn free_port() -> u16 {
    let probe = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = probe.local_addr().unwrap().port();
    drop(probe);
    port
}

/// Start `serve` with the given source flag in a background thread and
/// wait for it to accept connections. `--max-requests` bounds its life.
fn spawn_server(source: &str, max_requests: usize) -> u16 {
    let port = free_port();
    let line = format!(
        "serve {source} --port {port} --backend seq --workers 2 --max-requests {max_requests}"
    );
    std::thread::spawn(move || {
        let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
        let args = wikisearch_cli::args::parse(&argv).unwrap();
        let mut out = Vec::new();
        let _ = wikisearch_cli::serve::serve(&args, &mut out);
    });
    for _ in 0..250 {
        if TcpStream::connect(("127.0.0.1", port)).is_ok() {
            return port;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("server never came up on port {port}");
}

fn request_line(port: u16, line: &str) -> String {
    let stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{line}").unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    response
}

fn tmp(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("ws-serve-mmap-{}-{name}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

#[test]
fn mmap_server_cold_starts_and_matches_the_heap_server() {
    // Compile the dataset once.
    let tsv = tmp("kb.tsv");
    let snap = tmp("kb.wsnap");
    let (code, out) =
        run_cli(&format!("generate --dataset tiny --entities 250 --seed 11 --out {tsv}"));
    assert_eq!(code, 0, "{out}");
    let (code, out) = run_cli(&format!("build-snapshot --in {tsv} --out {snap}"));
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("compiled"), "{out}");

    // Cold start: the mmap server's very first request is a query, and
    // it must be answered (no warm-up, no rebuild step in between).
    let mmap_port = spawn_server(&format!("--mmap {snap}"), 3);
    let first = request_line(mmap_port, "QUERY learning");
    let first_doc: serde_json::Value = serde_json::from_str(&first).unwrap();
    assert!(first_doc["answers"].is_array(), "first answer straight from the map: {first}");

    // STATS reports the backing.
    let stats = request_line(mmap_port, "STATS");
    let stats_doc: serde_json::Value = serde_json::from_str(&stats).unwrap();
    assert_eq!(stats_doc["memory_mapped"], serde_json::json!(true), "{stats}");

    // A heap server over the same dataset answers identically.
    let heap_port = spawn_server(&format!("--graph {tsv}"), 2);
    let heap_stats = request_line(heap_port, "STATS");
    let heap_doc: serde_json::Value = serde_json::from_str(&heap_stats).unwrap();
    assert_eq!(heap_doc["memory_mapped"], serde_json::json!(false), "{heap_stats}");
    for query in ["QUERY learning", "QUERY network language"] {
        let mut a: serde_json::Value =
            serde_json::from_str(&request_line(mmap_port, query)).unwrap();
        let mut b: serde_json::Value =
            serde_json::from_str(&request_line(heap_port, query)).unwrap();
        // Wall-clock and per-server query ids legitimately differ; every
        // answer byte must not.
        for doc in [&mut a, &mut b] {
            if let serde_json::Value::Object(entries) = doc {
                entries.retain(|(k, _)| k != "ms" && k != "qid");
            }
        }
        assert_eq!(a, b, "{query} diverged between backings");
    }

    let _ = std::fs::remove_file(tsv);
    let _ = std::fs::remove_file(snap);
}

#[test]
fn mmap_and_graph_flags_are_mutually_exclusive() {
    let (code, out) = run_cli("search --graph a.tsv --mmap b.wsnap --query x");
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("mutually exclusive"), "{out}");
}

#[test]
fn build_snapshot_requires_the_wsnap_extension() {
    let (code, out) = run_cli("build-snapshot --in a.tsv --out b.bin");
    assert_eq!(code, 1, "{out}");
    assert!(out.contains(".wsnap"), "{out}");
}

#[test]
fn search_answers_identically_from_the_snapshot() {
    let tsv = tmp("kb2.tsv");
    let snap = tmp("kb2.wsnap");
    run_cli(&format!("generate --dataset tiny --entities 200 --seed 3 --out {tsv}"));
    let (code, out) = run_cli(&format!("build-snapshot --in {tsv} --out {snap}"));
    assert_eq!(code, 0, "{out}");
    let (code, heap_out) =
        run_cli(&format!("search --graph {tsv} --query learning --backend seq --json true"));
    assert_eq!(code, 0, "{heap_out}");
    let (code, mmap_out) =
        run_cli(&format!("search --mmap {snap} --query learning --backend seq --json true"));
    assert_eq!(code, 0, "{mmap_out}");
    let mut heap_doc: serde_json::Value = serde_json::from_str(&heap_out).unwrap();
    let mut mmap_doc: serde_json::Value = serde_json::from_str(&mmap_out).unwrap();
    // Timings legitimately differ; everything else must not.
    let strip_timing = |doc: &mut serde_json::Value| {
        if let serde_json::Value::Object(entries) = doc {
            entries.retain(|(k, _)| k != "total_ms");
        }
    };
    strip_timing(&mut heap_doc);
    strip_timing(&mut mmap_doc);
    assert_eq!(heap_doc, mmap_doc);
    let _ = std::fs::remove_file(tsv);
    let _ = std::fs::remove_file(snap);
}
