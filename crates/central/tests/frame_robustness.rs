//! Frame-codec robustness: the wire decoder fed *arbitrary* bytes under
//! *arbitrary* chunking must never panic, never allocate past the frame
//! cap on behalf of a peer-supplied length, and always land in one of
//! two states — well-formed frames out, or exactly one structured
//! [`FrameError`] that poisons the connection. A worker parses these
//! bytes off the public network side of the protocol, so this suite is
//! the memory-safety and availability contract for a hostile peer.

use central::remote::frame::{read_frame, write_frame, FrameDecoder, HEADER_LEN};
use central::remote::MAX_FRAME;
use proptest::prelude::*;

/// Frame streams a hostile peer might send: raw noise, or valid frames
/// with noise or a deliberately oversized header spliced after them
/// (exercises error-after-valid and starve-after-valid orderings).
#[derive(Debug, Clone)]
enum Stream {
    /// Arbitrary bytes, structure purely accidental.
    Noise(Vec<u8>),
    /// Well-formed frames followed by arbitrary trailing bytes.
    FramesThenNoise(Vec<(u8, Vec<u8>)>, Vec<u8>),
    /// A deliberately oversized header after valid frames.
    FramesThenOversized(Vec<(u8, Vec<u8>)>, u32),
}

/// The vendored proptest shim has no `prop_oneof`: draw every component
/// and pick the variant with a selector byte inside `prop_map`.
fn stream_strategy() -> impl Strategy<Value = Stream> {
    let frames =
        proptest::collection::vec((0u8..=255, proptest::collection::vec(0u8..=255, 0..64)), 0..4);
    let noise = proptest::collection::vec(0u8..=255, 0..256);
    let oversized = (MAX_FRAME as u32 + 1)..=u32::MAX;
    (0u8..3, frames, noise, oversized).prop_map(|(kind, frames, noise, len)| match kind {
        0 => Stream::Noise(noise),
        1 => Stream::FramesThenNoise(frames, noise),
        _ => Stream::FramesThenOversized(frames, len),
    })
}

/// Render a stream to wire bytes, returning the frames a correct decoder
/// must produce before anything else happens.
fn render(stream: &Stream) -> (Vec<u8>, Vec<(u8, Vec<u8>)>) {
    match stream {
        Stream::Noise(bytes) => (bytes.clone(), Vec::new()),
        Stream::FramesThenNoise(frames, noise) => {
            let mut wire = Vec::new();
            for (op, payload) in frames {
                write_frame(&mut wire, *op, payload).unwrap();
            }
            wire.extend_from_slice(noise);
            (wire, frames.clone())
        }
        Stream::FramesThenOversized(frames, len) => {
            let mut wire = Vec::new();
            for (op, payload) in frames {
                write_frame(&mut wire, *op, payload).unwrap();
            }
            wire.extend_from_slice(&len.to_le_bytes());
            wire.push(0);
            (wire, frames.clone())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Arbitrary bytes under arbitrary chunking: the incremental decoder
    /// never panics, its buffer never exceeds cap + header + one chunk,
    /// every valid leading frame is decoded byte-exactly, and an error
    /// is terminal (poisoned forever, buffer dropped).
    #[test]
    fn decoder_survives_arbitrary_bytes(
        stream in stream_strategy(),
        chunk in 1usize..64,
    ) {
        let (wire, expected) = render(&stream);
        let mut d = FrameDecoder::new();
        let mut got = Vec::new();
        let mut error = None;
        'outer: for piece in wire.chunks(chunk) {
            d.push(piece);
            // The buffering bound: the peer cannot make the decoder hold
            // more than one capped frame plus the chunk it just pushed.
            prop_assert!(
                d.buffered() <= MAX_FRAME + HEADER_LEN + piece.len(),
                "decoder buffered {} bytes", d.buffered()
            );
            loop {
                match d.next_frame() {
                    Ok(Some(frame)) => got.push(frame),
                    Ok(None) => break,
                    Err(e) => {
                        // Terminal: the same error repeats and the buffer
                        // is gone, no matter what arrives afterwards.
                        d.push(b"garbage after the error");
                        prop_assert_eq!(d.next_frame().unwrap_err(), e.clone());
                        prop_assert_eq!(d.buffered(), 0);
                        error = Some(e);
                        break 'outer;
                    }
                }
            }
        }
        // Every decoded frame respects the cap, whatever the input was.
        for (_, payload) in &got {
            prop_assert!(payload.len() <= MAX_FRAME);
        }
        // The valid leading frames come out byte-exactly before any
        // trailing noise or poison header can matter (the noise is
        // *after* them on the wire, so it cannot reorder or corrupt).
        if let Stream::FramesThenNoise(_, _) | Stream::FramesThenOversized(_, _) = &stream {
            prop_assert!(
                got.len() >= expected.len(),
                "valid frames lost: got {} of {}", got.len(), expected.len()
            );
            for (i, (a, b)) in got.iter().zip(&expected).enumerate() {
                prop_assert_eq!(a, b, "frame {} corrupted", i);
            }
        }
        if let Stream::FramesThenOversized(_, _) = &stream {
            prop_assert!(error.is_some(), "an over-cap header must surface a FrameError");
        }
    }

    /// The blocking reader path under the same hostility: arbitrary
    /// bytes never panic it — every outcome is a clean EOF, a capped
    /// frame, or a structured io::Error.
    #[test]
    fn blocking_reader_survives_arbitrary_bytes(
        bytes in proptest::collection::vec(0u8..=255, 0..512),
    ) {
        let mut r = std::io::Cursor::new(bytes);
        loop {
            match read_frame(&mut r) {
                Ok(Some((_op, payload))) => prop_assert!(payload.len() <= MAX_FRAME),
                Ok(None) => break,
                Err(e) => {
                    prop_assert!(
                        matches!(
                            e.kind(),
                            std::io::ErrorKind::InvalidData | std::io::ErrorKind::UnexpectedEof
                        ),
                        "unexpected error kind {:?}", e.kind()
                    );
                    break;
                }
            }
        }
    }
}
