//! Multi-process sharded search: shard-worker processes speaking a
//! length-prefixed binary frame protocol, driven by a supervised
//! coordinator behind the same seam as the in-process sharded engine.
//!
//! This is phase 2 of the DKWS-style distributed design
//! (arXiv:2309.01199): [`crate::shard`] proved the round protocol
//! (scatter → local BFS rounds → boundary-notification exchange → merge)
//! answer-identical to the monolithic engines inside one process; this
//! module splits the same protocol across processes without changing a
//! byte of the answers. The layers:
//!
//! * [`frame`] — the wire framing: `[u32 len LE][u8 opcode][payload]`,
//!   hard-capped, with an incremental decoder hardened against arbitrary
//!   byte streams;
//! * [`wire`] — the JSON message schema, one request/response pair per
//!   round-protocol phase;
//! * [`worker`] — [`worker::ShardWorker`]: owns one partition (derived
//!   locally from the `(shards, seed)` contract — sub-graphs never travel)
//!   and serves phase RPCs over TCP, one connection per coordinator
//!   channel;
//! * [`coordinator`] — [`coordinator::RemoteShardedSearch`]: drives the
//!   fleet over persistent connections with per-RPC deadlines, bounded
//!   retry with backoff + jitter, probe-based failure attribution, and
//!   per-shard circuit breakers ([`breaker`]), degrading or shedding per
//!   [`coordinator::RemoteOptions::degraded_answers`] when a shard stays
//!   down.
//!
//! The equivalence and failure contracts are pinned by three suites: the
//! `remote_equivalence` differential proptest (remote == in-process,
//! byte-identical, all four backends), the frame-robustness proptest
//! (arbitrary bytes never panic or over-allocate the decoder), and the
//! process-level chaos suite in the CLI crate (worker kill / stall /
//! garbage under concurrent well-behaved load).

pub mod breaker;
pub mod coordinator;
pub mod frame;
pub mod wire;
pub mod worker;

pub use breaker::{BreakerState, CircuitBreaker};
pub use coordinator::{
    RemoteOptions, RemoteOutcome, RemoteShardedSearch, RemoteStats, ShardAddrs, StaticAddrs,
};
pub use frame::{FrameDecoder, FrameError, MAX_FRAME};
pub use worker::ShardWorker;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{KeywordSearchEngine, SeqEngine};
    use crate::shard::{ShardBackend, ShardedSearch, DEFAULT_PARTITION_SEED};
    use crate::{QueryBudget, SearchParams};
    use kgraph::{GraphBuilder, KnowledgeGraph};
    use std::sync::Arc;
    use std::time::Duration;
    use textindex::{InvertedIndex, ParsedQuery};

    fn fixture() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let hub = b.add_node("hub", "junction");
        for i in 0..5 {
            let a = b.add_node(&format!("a{i}"), "alpha");
            b.add_edge(a, hub, "p");
        }
        for i in 0..5 {
            let z = b.add_node(&format!("z{i}"), "omega");
            b.add_edge(hub, z, if i % 2 == 0 { "p" } else { "q" });
        }
        b.add_node("lone", "isolated");
        b.build()
    }

    /// Spin up an in-process worker fleet and a coordinator over it, with
    /// deterministic supervision knobs (no heartbeat, no retry waits).
    fn remote(g: &KnowledgeGraph, backend: ShardBackend, shards: usize) -> RemoteShardedSearch {
        let addrs: Vec<_> = (0..shards)
            .map(|s| ShardWorker::spawn_local(g, shards, s, DEFAULT_PARTITION_SEED))
            .collect();
        let opts = RemoteOptions {
            heartbeat: None,
            backoff_base: Duration::from_millis(1),
            ..RemoteOptions::default()
        };
        RemoteShardedSearch::new(g, backend, shards, Arc::new(StaticAddrs(addrs)), opts)
    }

    fn digest(out: &crate::engine::SearchOutcome) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "stats:{}/{}/{}/{:?} ",
            out.stats.last_level,
            out.stats.central_candidates,
            out.stats.peak_frontier,
            out.stats.trace
        );
        for a in &out.answers {
            let _ = write!(
                s,
                "[c:{} d:{} n:{:?} e:{:?} kn:{:?} ke:{:?} s:{}]",
                a.central.0,
                a.depth,
                a.nodes,
                a.edges,
                a.keyword_nodes,
                a.keyword_edges,
                a.score.to_bits()
            );
        }
        s
    }

    #[test]
    fn remote_search_matches_the_monolithic_engine() {
        let g = fixture();
        let idx = InvertedIndex::build(&g);
        let params = SearchParams::default().with_average_distance(1.0);
        for raw in ["alpha omega", "alpha junction", "omega"] {
            let query = ParsedQuery::parse(&idx, raw);
            let mono = SeqEngine::new().search(&g, &query, &params);
            for shards in [1, 2, 3] {
                let r = remote(&g, ShardBackend::Seq, shards);
                let out = r
                    .try_search(&g, &query, &params, &QueryBudget::unlimited())
                    .expect("unlimited budget");
                assert!(!out.degraded);
                assert_eq!(digest(&out.outcome), digest(&mono), "query {raw:?}, {shards} shards");
            }
        }
    }

    #[test]
    fn remote_traces_match_the_in_process_sharded_traces() {
        let g = fixture();
        let idx = InvertedIndex::build(&g);
        let params = SearchParams::default()
            .with_average_distance(1.0)
            .with_trace(crate::trace::TraceLevel::Full);
        let query = ParsedQuery::parse(&idx, "alpha omega");
        let sharded = ShardedSearch::new(&g, ShardBackend::GpuStyle(2), 3);
        let local = sharded
            .try_search(&g, &query, &params, &QueryBudget::unlimited())
            .expect("unlimited budget");
        let r = remote(&g, ShardBackend::GpuStyle(2), 3);
        let out = r.try_search(&g, &query, &params, &QueryBudget::unlimited()).expect("unlimited");
        assert_eq!(digest(&out.outcome), digest(&local));
        let (lt, rt) = (local.trace.unwrap(), out.outcome.trace.unwrap());
        assert_eq!(rt.levels, lt.levels);
        assert_eq!(rt.total_expansions, lt.total_expansions);
        assert_eq!(rt.engine, lt.engine, "remote reuses the sharded engine name");
    }

    #[test]
    fn budget_error_classes_survive_the_wire() {
        let g = fixture();
        let idx = InvertedIndex::build(&g);
        let query = ParsedQuery::parse(&idx, "alpha omega");
        let r = remote(&g, ShardBackend::Seq, 2);
        let err = r
            .try_search(
                &g,
                &query,
                &SearchParams::default(),
                &QueryBudget::unlimited().with_timeout(Duration::ZERO),
            )
            .unwrap_err();
        assert_eq!(err.kind(), "deadline_exceeded");
        let err = r
            .try_search(
                &g,
                &query,
                &SearchParams::default().with_average_distance(1.0),
                &QueryBudget::unlimited().with_max_expansions(1),
            )
            .unwrap_err();
        assert_eq!(err.kind(), "budget_exhausted");
        // The in-process sharded engine agrees on both classes.
        let sharded = ShardedSearch::new(&g, ShardBackend::Seq, 2);
        let err = sharded
            .try_search(
                &g,
                &query,
                &SearchParams::default().with_average_distance(1.0),
                &QueryBudget::unlimited().with_max_expansions(1),
            )
            .unwrap_err();
        assert_eq!(err.kind(), "budget_exhausted");
    }

    #[test]
    fn unreachable_fleet_sheds_or_degrades_by_policy() {
        let g = fixture();
        let idx = InvertedIndex::build(&g);
        let query = ParsedQuery::parse(&idx, "alpha omega");
        let params = SearchParams::default().with_average_distance(1.0);
        // A port from the ephemeral range that nothing listens on: bind
        // then drop to learn a free one.
        let free = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let live = ShardWorker::spawn_local(&g, 2, 0, DEFAULT_PARTITION_SEED);
        let opts = RemoteOptions {
            heartbeat: None,
            attempts: 2,
            connect_timeout: Duration::from_millis(200),
            backoff_base: Duration::from_millis(1),
            degraded_answers: false,
            ..RemoteOptions::default()
        };
        let shed = RemoteShardedSearch::new(
            &g,
            ShardBackend::Seq,
            2,
            Arc::new(StaticAddrs(vec![live, free])),
            opts,
        );
        let err = shed.try_search(&g, &query, &params, &QueryBudget::unlimited()).unwrap_err();
        assert_eq!(err, crate::SearchError::ShardUnavailable { shard: 1 });
        assert_eq!(err.kind(), "shard_unavailable");

        let degraded = RemoteShardedSearch::new(
            &g,
            ShardBackend::Seq,
            2,
            Arc::new(StaticAddrs(vec![live, free])),
            RemoteOptions { degraded_answers: true, ..opts },
        );
        let out = degraded
            .try_search(&g, &query, &params, &QueryBudget::unlimited())
            .expect("degrades");
        assert!(out.degraded, "lost shard must be explicitly marked");
        assert_eq!(degraded.stats().degraded_queries, 1);
    }

    #[test]
    fn empty_query_short_circuits_without_any_rpc() {
        let g = fixture();
        let idx = InvertedIndex::build(&g);
        let query = ParsedQuery::parse(&idx, "zzznothing");
        // No workers at all: the empty query never touches the network.
        let opts = RemoteOptions { heartbeat: None, ..RemoteOptions::default() };
        let r =
            RemoteShardedSearch::new(&g, ShardBackend::Seq, 2, Arc::new(StaticAddrs(vec![])), opts);
        let out = r
            .try_search(&g, &query, &SearchParams::default(), &QueryBudget::unlimited())
            .expect("no network needed");
        assert!(out.outcome.answers.is_empty());
        assert!(!out.degraded);
        assert_eq!(r.stats().rpcs, 0);
    }

    #[test]
    fn traced_remote_queries_stitch_per_shard_timelines() {
        let g = fixture();
        let idx = InvertedIndex::build(&g);
        let query = ParsedQuery::parse(&idx, "alpha omega");
        let params = SearchParams::default()
            .with_average_distance(1.0)
            .with_trace(crate::trace::TraceLevel::Full);
        let shards = 3;
        let r = remote(&g, ShardBackend::Seq, shards);
        let out = r
            .try_search_tagged(&g, &query, &params, &QueryBudget::unlimited(), Some(42))
            .expect("unlimited budget");
        let trace = out.outcome.trace.expect("traced query carries a trace");
        assert_eq!(trace.qid, Some(42));
        let timelines = trace.shard_timelines.expect("remote traces stitch timelines");
        assert_eq!(timelines.len(), shards, "one timeline per live shard");
        let levels: Vec<u32> = trace.levels.iter().map(|l| l.level).collect();
        for tl in &timelines {
            assert_eq!(tl.qid, Some(42), "worker echoes the fleet-wide qid");
            assert!(tl.rpcs > 0, "every shard served RPCs");
            assert!(!tl.spans.is_empty(), "v2 workers ship spans");
            assert_eq!(
                tl.worker_us,
                tl.spans.iter().map(crate::trace::ShardSpan::worker_us).sum::<u64>(),
                "worker total is the sum of its spans"
            );
            assert!(tl.rpc_us >= tl.worker_us, "worker intervals nest inside the RPC envelope");
            assert_eq!(tl.wire_us, tl.rpc_us - tl.worker_us);
            // Per-level spans reconcile with the coordinator's level
            // records: every expand the worker saw is a level the
            // coordinator drove (the final level may stop before expand).
            assert_eq!(tl.spans.iter().filter(|s| s.op == "start").count(), 1);
            assert_eq!(tl.spans.iter().filter(|s| s.op == "collect").count(), 1);
            for span in tl.spans.iter().filter(|s| s.op == "expand") {
                let level = span.level.expect("expand spans are level-tagged");
                assert!(levels.contains(&level), "span level {level} not in {levels:?}");
            }
            let enqueues = tl.spans.iter().filter(|s| s.op == "enqueue").count();
            assert_eq!(enqueues, levels.len() + 1, "one enqueue per level plus the empty round");
        }
    }

    #[test]
    fn v2_coordinator_degrades_gracefully_against_a_v1_fleet() {
        let g = fixture();
        let idx = InvertedIndex::build(&g);
        let query = ParsedQuery::parse(&idx, "alpha omega");
        let params = SearchParams::default()
            .with_average_distance(1.0)
            .with_trace(crate::trace::TraceLevel::Full);
        let shards = 2;
        // A fleet pinned to protocol 1: strict full-struct handshake,
        // no span support. The v2 coordinator must fall back per channel
        // and still produce byte-identical answers.
        let addrs: Vec<_> = (0..shards)
            .map(|s| {
                ShardWorker::spawn_local_worker(
                    ShardWorker::new(&g, shards, s, DEFAULT_PARTITION_SEED).with_protocol(1),
                )
            })
            .collect();
        let opts = RemoteOptions {
            heartbeat: None,
            backoff_base: Duration::from_millis(1),
            ..RemoteOptions::default()
        };
        let r = RemoteShardedSearch::new(
            &g,
            ShardBackend::Seq,
            shards,
            Arc::new(StaticAddrs(addrs)),
            opts,
        );
        let out = r
            .try_search_tagged(&g, &query, &params, &QueryBudget::unlimited(), Some(7))
            .expect("v1 fleet still serves");
        assert!(!out.degraded);
        let mono = SeqEngine::new().search(&g, &query, &params);
        assert_eq!(digest(&out.outcome), digest(&mono), "answers identical across versions");
        let trace = out.outcome.trace.expect("traced query carries a trace");
        assert_eq!(trace.qid, Some(7), "the coordinator stamps its own qid regardless");
        let timelines = trace.shard_timelines.expect("RPC envelopes are coordinator-side truth");
        assert_eq!(timelines.len(), shards);
        for tl in &timelines {
            assert_eq!(tl.qid, None, "v1 workers cannot echo qids");
            assert!(tl.spans.is_empty(), "v1 workers never ship spans");
            assert_eq!(tl.worker_us, 0);
            assert_eq!(tl.wire_us, tl.rpc_us, "without spans the whole envelope is wire time");
            assert!(tl.rpcs > 0);
        }
    }

    #[test]
    fn handshake_rejects_a_mismatched_partition_contract() {
        let g = fixture();
        // Worker built for a 3-shard partition; coordinator expects 2.
        let addr = ShardWorker::spawn_local(&g, 3, 0, DEFAULT_PARTITION_SEED);
        let opts = RemoteOptions {
            heartbeat: None,
            attempts: 1,
            backoff_base: Duration::from_millis(1),
            ..RemoteOptions::default()
        };
        let r = RemoteShardedSearch::new(
            &g,
            ShardBackend::Seq,
            2,
            Arc::new(StaticAddrs(vec![addr, addr])),
            opts,
        );
        let idx = InvertedIndex::build(&g);
        let query = ParsedQuery::parse(&idx, "alpha omega");
        let err = r
            .try_search(
                &g,
                &query,
                &SearchParams::default().with_average_distance(1.0),
                &QueryBudget::unlimited(),
            )
            .unwrap_err();
        assert_eq!(err.kind(), "shard_unavailable", "contract mismatch = unusable worker");
    }
}
