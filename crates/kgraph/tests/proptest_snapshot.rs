//! Property tests of the `.wsnap` snapshot format: arbitrary graphs
//! survive a compile → mmap round trip structurally intact (satellite of
//! the zero-copy storage refactor), and damaged files — corrupted
//! headers, truncation, wrong versions, flipped section bytes — are
//! rejected with errors, never misread.

use kgraph::snapshot::{self, Snapshot};
use kgraph::store::{load_graph, save_graph};
use kgraph::{GraphBuilder, KnowledgeGraph};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Debug, Clone)]
struct RawGraph {
    texts: Vec<String>,
    edges: Vec<(usize, usize, u8)>,
    weights: Vec<u32>,
}

fn raw_graph() -> impl Strategy<Value = RawGraph> {
    (1usize..30).prop_flat_map(|nodes| {
        let texts = proptest::collection::vec("[a-z]{1,8}( [a-z]{1,8}){0,2}", nodes);
        let edges = proptest::collection::vec((0usize..nodes, 0usize..nodes, 0u8..5), 0..80);
        // Arbitrary f32 bit patterns (finite) for the activation column,
        // so the round trip is checked at exact-bits granularity.
        let weights = proptest::collection::vec(0u32..0x7f7f_ffff, nodes);
        (texts, edges, weights).prop_map(|(texts, edges, weights)| RawGraph {
            texts,
            edges,
            weights,
        })
    })
}

fn build(raw: &RawGraph) -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    for (i, t) in raw.texts.iter().enumerate() {
        b.add_node(&format!("n{i}"), t);
    }
    for &(s, d, l) in &raw.edges {
        let s = b.node(&format!("n{s}")).unwrap();
        let d = b.node(&format!("n{d}")).unwrap();
        b.add_edge(s, d, &format!("label{l}"));
    }
    let mut g = b.build();
    // Raw weights carry arbitrary finite bit patterns (exact-bits round
    // trip); normalized weights must satisfy the [0,1] graph invariant.
    let raws: Vec<f32> = raw.weights.iter().map(|&bits| f32::from_bits(bits)).collect();
    let normalized: Vec<f32> =
        raw.weights.iter().map(|&bits| (bits % 1001) as f32 / 1000.0).collect();
    g.override_weights(raws, normalized);
    g
}

/// A unique temp path per call, so parallel proptest cases never collide.
fn tmp() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "kgraph-psnap-{}-{}.wsnap",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Structural equality at exact-bits granularity: every column the
/// snapshot carries, compared slice-for-slice.
fn assert_same(a: &KnowledgeGraph, b: &KnowledgeGraph) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.num_nodes(), b.num_nodes());
    prop_assert_eq!(a.num_directed_edges(), b.num_directed_edges());
    prop_assert_eq!(a.csr_offsets(), b.csr_offsets());
    prop_assert_eq!(a.csr_adjacency(), b.csr_adjacency());
    prop_assert_eq!(a.in_degrees(), b.in_degrees());
    prop_assert_eq!(a.out_degrees(), b.out_degrees());
    let raw_a: Vec<u32> = a.raw_weights().iter().map(|w| w.to_bits()).collect();
    let raw_b: Vec<u32> = b.raw_weights().iter().map(|w| w.to_bits()).collect();
    prop_assert_eq!(raw_a, raw_b);
    let norm_a: Vec<u32> = a.weights().iter().map(|w| w.to_bits()).collect();
    let norm_b: Vec<u32> = b.weights().iter().map(|w| w.to_bits()).collect();
    prop_assert_eq!(norm_a, norm_b);
    for v in a.nodes() {
        prop_assert_eq!(a.node_key(v), b.node_key(v));
        prop_assert_eq!(a.node_text(v), b.node_text(v));
    }
    let labels_a: Vec<&str> = a.label_names_table().iter().collect();
    let labels_b: Vec<&str> = b.label_names_table().iter().collect();
    prop_assert_eq!(labels_a, labels_b);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn snapshot_round_trip_is_structurally_identical(raw in raw_graph()) {
        let g = build(&raw);
        let path = tmp();
        save_graph(&g, &path).unwrap();
        let store = load_graph(&path).unwrap();
        prop_assert!(store.is_memory_mapped());
        store.graph().check_invariants().unwrap();
        assert_same(&g, store.graph())?;
        // The deep checksum pass agrees too.
        store.snapshot().unwrap().verify_checksums().unwrap();
        drop(store);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn corrupting_any_header_byte_is_detected(raw in raw_graph(), pos in 0usize..48) {
        let g = build(&raw);
        let path = tmp();
        save_graph(&g, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[pos] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        // Any flipped byte in the fixed header fields (magic, version,
        // endian marker, file length, section count, checksum) must be
        // caught at open time — the checksum covers all of them.
        prop_assert!(Snapshot::open(&path).is_err(), "flipped header byte {} not caught", pos);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn truncation_is_detected(raw in raw_graph(), keep_per_mille in 0u32..1000) {
        let g = build(&raw);
        let path = tmp();
        save_graph(&g, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let keep = (bytes.len() as u64 * keep_per_mille as u64 / 1000) as usize;
        std::fs::write(&path, &bytes[..keep]).unwrap();
        prop_assert!(
            Snapshot::open(&path).is_err(),
            "file truncated to {keep}/{} bytes not caught", bytes.len()
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn section_bit_rot_fails_the_deep_verify(raw in raw_graph(), which in 0usize..1000) {
        let g = build(&raw);
        let path = tmp();
        save_graph(&g, &path).unwrap();
        // Locate real section payloads through the opened snapshot (a
        // flip in alignment padding is invisible to checksums by design,
        // so aim inside a section).
        let snap = Snapshot::open(&path).unwrap();
        let base = snap.map().as_slice().as_ptr() as usize;
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        for id in snap.section_ids() {
            let s = snap.section(id).unwrap();
            if !s.is_empty() {
                ranges.push((s.as_ptr() as usize - base, s.len()));
            }
        }
        drop(snap);
        prop_assert!(!ranges.is_empty(), "a non-empty graph always has payload bytes");
        let (off, len) = ranges[which % ranges.len()];
        let pos = off + (which / ranges.len()) % len;
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[pos] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        // The lazy open must still succeed (it validates the header
        // only); the deep checksum pass must catch the damage.
        let snap = Snapshot::open(&path).unwrap();
        prop_assert!(
            snap.verify_checksums().is_err(),
            "flipped section byte {} survived verify_checksums", pos
        );
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn wrong_version_is_rejected_naming_both_versions() {
    let mut b = GraphBuilder::new();
    b.add_node("k", "text");
    let path = tmp();
    save_graph(&b.build(), &path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // The version field lives right after the 8-byte magic.
    bytes[8] = 99;
    // Re-seal the header checksum (computed over the header page with
    // the checksum field zeroed) so *only* the version is wrong.
    let mut header = bytes[..snapshot::ALIGN].to_vec();
    header[32..40].fill(0);
    let sum = snapshot::fnv1a(&header);
    bytes[32..40].copy_from_slice(&sum.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    let err = Snapshot::open(&path).unwrap_err().to_string();
    assert!(err.contains("99") && err.contains('1'), "names both versions: {err}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn non_snapshot_files_are_rejected() {
    let path = tmp();
    std::fs::write(&path, b"this is not a snapshot").unwrap();
    assert!(Snapshot::open(&path).is_err(), "short garbage accepted");
    let big = vec![0u8; 2 * snapshot::ALIGN];
    std::fs::write(&path, big).unwrap();
    let err = Snapshot::open(&path).unwrap_err().to_string();
    assert!(err.contains("magic"), "zero page accepted: {err}");
    let _ = std::fs::remove_file(path);
}
