//! Search parameters — the paper's Table III plus implementation knobs.

use serde::{Deserialize, Serialize};

/// Parameters of a Central Graph search.
///
/// Defaults mirror the paper's Table III: `Topk = 20`, `α = 0.1`,
/// `λ = 0.2` (Eq. 6). `Knum` is a property of the query, and `Tnum`
/// (thread count) is a property of the engine, so neither lives here.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SearchParams {
    /// Number of answers to return (`Topk`).
    pub top_k: usize,
    /// Degree-of-summary preference `α ∈ (0, 1)` (Sec. IV-A). Larger α
    /// lets more summary nodes activate early.
    pub alpha: f32,
    /// Depth-penalty exponent `λ ≥ 0` in the scoring function Eq. 6.
    pub lambda: f64,
    /// Maximum BFS expansion depth `lmax`; search stops here even if fewer
    /// than `top_k` central nodes were found.
    pub max_level: u8,
    /// Average shortest distance `A` of the dataset. The activation mapping
    /// (Eqs. 3–5) scales penalties/rewards by this; compute once per
    /// dataset with [`kgraph::estimate_average_distance`] (Table II).
    pub average_distance: f64,
    /// Remove answers whose node set strictly contains another answer's
    /// (the repetition-removal rule of the paper's Sec. VI-B).
    pub dedup_contained: bool,
    /// Apply the level-cover pruning strategy (Sec. V-C). Disabling it is
    /// an ablation: answers keep every hitting path, including redundant
    /// single-keyword satellites.
    pub level_cover: bool,
    /// Cap on how many top-(k,d) central nodes are extracted in the
    /// top-down stage. The paper extracts the whole cohort; on dense
    /// graphs the final level's cohort can dwarf `top_k`, and extraction
    /// dominates (visible in Exp-1 at Knum ≥ 8). Candidates are kept in
    /// identification order (shallowest first). `usize::MAX` = paper
    /// behaviour.
    pub max_candidates: usize,
    /// Override the computed minimum activation levels with explicit
    /// per-node values. Used by tests reproducing the paper's worked
    /// examples (Fig. 4) and by ablations; `None` means compute from
    /// weights via the Penalty-and-Reward mapping.
    #[serde(skip)]
    pub explicit_activation: Option<std::sync::Arc<Vec<u8>>>,
    /// How much per-query execution trace to collect (see
    /// [`crate::trace`]). Diagnostic only — tracing never changes
    /// answers, so this knob is deliberately *not* part of
    /// [`SearchParams::fingerprint`] and cached results alias across
    /// trace settings.
    #[serde(default)]
    pub trace: crate::trace::TraceLevel,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams {
            top_k: 20,
            alpha: 0.1,
            lambda: 0.2,
            max_level: 24,
            average_distance: 3.68, // the paper's wiki2018 estimate
            dedup_contained: true,
            level_cover: true,
            max_candidates: usize::MAX,
            explicit_activation: None,
            trace: crate::trace::TraceLevel::Off,
        }
    }
}

impl SearchParams {
    /// Builder-style override of `top_k`.
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Builder-style override of `alpha`.
    pub fn with_alpha(mut self, alpha: f32) -> Self {
        self.alpha = alpha;
        self
    }

    /// Builder-style override of the dataset's average distance `A`.
    pub fn with_average_distance(mut self, a: f64) -> Self {
        self.average_distance = a;
        self
    }

    /// Builder-style override of `lambda`.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Builder-style explicit activation levels (tests/ablations).
    pub fn with_explicit_activation(mut self, levels: Vec<u8>) -> Self {
        self.explicit_activation = Some(std::sync::Arc::new(levels));
        self
    }

    /// Builder-style trace level.
    pub fn with_trace(mut self, trace: crate::trace::TraceLevel) -> Self {
        self.trace = trace;
        self
    }

    /// The answer-relevant identity of these parameters, for use in cache
    /// keys (see [`crate::cache`]). Two `SearchParams` with equal
    /// fingerprints produce identical answers for the same graph and
    /// query; any knob that can change an answer — `top_k`, `α`, `λ`,
    /// `max_level`, `A`, the pruning toggles, `max_candidates`, and an
    /// explicit activation override — is folded in bit-exactly, so a
    /// cached result can never alias across parameter settings.
    pub fn fingerprint(&self) -> ParamsFingerprint {
        ParamsFingerprint {
            top_k: self.top_k,
            alpha_bits: self.alpha.to_bits(),
            lambda_bits: self.lambda.to_bits(),
            max_level: self.max_level,
            average_distance_bits: self.average_distance.to_bits(),
            dedup_contained: self.dedup_contained,
            level_cover: self.level_cover,
            max_candidates: self.max_candidates,
            explicit_activation: self.explicit_activation.clone(),
        }
    }

    /// Validate parameter ranges, returning a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(format!("alpha must be in (0,1), got {}", self.alpha));
        }
        if self.lambda < 0.0 {
            return Err(format!("lambda must be >= 0, got {}", self.lambda));
        }
        if self.average_distance < 0.0 {
            return Err(format!("average_distance must be >= 0, got {}", self.average_distance));
        }
        if self.top_k == 0 {
            return Err("top_k must be >= 1".into());
        }
        Ok(())
    }
}

/// Hashable, comparable identity of a [`SearchParams`] — every field that
/// can influence an answer, with floats captured bit-exactly. Built by
/// [`SearchParams::fingerprint`]; used as the parameter half of a result
/// cache key ([`crate::cache::QueryKey`]).
///
/// The explicit activation override participates by *contents* (the
/// `Arc<Vec<u8>>` hashes and compares through its pointee), so two params
/// that override the same levels collide and any differing override does
/// not.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ParamsFingerprint {
    top_k: usize,
    alpha_bits: u32,
    lambda_bits: u64,
    max_level: u8,
    average_distance_bits: u64,
    dedup_contained: bool,
    level_cover: bool,
    max_candidates: usize,
    explicit_activation: Option<std::sync::Arc<Vec<u8>>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iii() {
        let p = SearchParams::default();
        assert_eq!(p.top_k, 20);
        assert!((p.alpha - 0.1).abs() < 1e-6);
        assert!((p.lambda - 0.2).abs() < 1e-12);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn builders_compose() {
        let p = SearchParams::default()
            .with_top_k(50)
            .with_alpha(0.4)
            .with_average_distance(3.87)
            .with_lambda(0.0);
        assert_eq!(p.top_k, 50);
        assert!((p.alpha - 0.4).abs() < 1e-6);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        assert!(SearchParams::default().with_alpha(0.0).validate().is_err());
        assert!(SearchParams::default().with_alpha(1.0).validate().is_err());
        assert!(SearchParams::default().with_lambda(-0.1).validate().is_err());
        assert!(SearchParams::default().with_top_k(0).validate().is_err());
    }

    #[test]
    fn fingerprint_separates_every_answer_relevant_knob() {
        let base = SearchParams::default();
        assert_eq!(base.fingerprint(), base.clone().fingerprint(), "clone collides");
        assert_ne!(base.fingerprint(), base.clone().with_top_k(1).fingerprint());
        assert_ne!(base.fingerprint(), base.clone().with_alpha(0.4).fingerprint());
        assert_ne!(base.fingerprint(), base.clone().with_lambda(0.0).fingerprint());
        assert_ne!(base.fingerprint(), base.clone().with_average_distance(4.0).fingerprint());
        let mut toggles = base.clone();
        toggles.level_cover = false;
        assert_ne!(base.fingerprint(), toggles.fingerprint());
        toggles = base.clone();
        toggles.dedup_contained = false;
        assert_ne!(base.fingerprint(), toggles.fingerprint());
        toggles = base.clone();
        toggles.max_candidates = 7;
        assert_ne!(base.fingerprint(), toggles.fingerprint());
    }

    #[test]
    fn fingerprint_compares_explicit_activation_by_contents() {
        let base = SearchParams::default();
        let a = base.clone().with_explicit_activation(vec![0, 1, 2]);
        let b = base.clone().with_explicit_activation(vec![0, 1, 2]);
        let c = base.clone().with_explicit_activation(vec![0, 1, 3]);
        assert_eq!(a.fingerprint(), b.fingerprint(), "same levels, distinct Arcs");
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(a.fingerprint(), base.fingerprint());
    }

    #[test]
    fn trace_level_does_not_change_the_fingerprint() {
        let base = SearchParams::default();
        let traced = base.clone().with_trace(crate::trace::TraceLevel::Full);
        assert_eq!(base.fingerprint(), traced.fingerprint());
    }
}
