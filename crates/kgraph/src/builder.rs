//! Mutable graph builder producing an immutable CSR [`KnowledgeGraph`].
//!
//! The builder interns node keys and label names, accumulates directed
//! triples, then `build()` performs one counting-sort pass into the
//! bi-directed CSR and computes degree-of-summary weights (Eq. 2).

use crate::graph::{Adjacency, KnowledgeGraph};
use crate::ids::{LabelId, NodeId};
use crate::weights;
use std::collections::HashMap;

/// Builder for [`KnowledgeGraph`]. See the crate-level example.
#[derive(Default)]
pub struct GraphBuilder {
    node_index: HashMap<String, NodeId>,
    node_keys: Vec<String>,
    node_texts: Vec<String>,
    label_index: HashMap<String, LabelId>,
    label_names: Vec<String>,
    /// Directed triples `(src, label, dst)`, possibly containing duplicates
    /// until `build()` dedups them.
    edges: Vec<(NodeId, LabelId, NodeId)>,
}

impl GraphBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder with capacity hints for large synthetic graphs.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            node_index: HashMap::with_capacity(nodes),
            node_keys: Vec::with_capacity(nodes),
            node_texts: Vec::with_capacity(nodes),
            label_index: HashMap::new(),
            label_names: Vec::new(),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.node_keys.len()
    }

    /// Number of (possibly duplicate) triples added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Intern a node by external `key`; `text` is the human-readable label
    /// that keyword matching tokenizes. Re-adding an existing key returns
    /// the existing id and, if `text` is non-empty, replaces its text.
    pub fn add_node(&mut self, key: &str, text: &str) -> NodeId {
        if let Some(&id) = self.node_index.get(key) {
            if !text.is_empty() {
                self.node_texts[id.index()] = text.to_string();
            }
            return id;
        }
        let id = NodeId::from_index(self.node_keys.len());
        self.node_index.insert(key.to_string(), id);
        self.node_keys.push(key.to_string());
        self.node_texts.push(text.to_string());
        id
    }

    /// Look up a previously added node by key.
    pub fn node(&self, key: &str) -> Option<NodeId> {
        self.node_index.get(key).copied()
    }

    /// Intern an edge label by name.
    pub fn label(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.label_index.get(name) {
            return id;
        }
        let id = LabelId::from_index(self.label_names.len());
        self.label_index.insert(name.to_string(), id);
        self.label_names.push(name.to_string());
        id
    }

    /// Add a directed labeled edge `src --name--> dst`.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, name: &str) {
        let label = self.label(name);
        self.add_edge_with_label(src, dst, label);
    }

    /// Add a directed edge with an already-interned label.
    pub fn add_edge_with_label(&mut self, src: NodeId, dst: NodeId, label: LabelId) {
        debug_assert!(src.index() < self.node_keys.len(), "src node not added");
        debug_assert!(dst.index() < self.node_keys.len(), "dst node not added");
        self.edges.push((src, label, dst));
    }

    /// Finalize into an immutable CSR graph.
    ///
    /// Exact duplicate triples are removed; parallel edges with distinct
    /// labels are kept (they are distinct relationships in a KB).
    pub fn build(mut self) -> KnowledgeGraph {
        let n = self.node_keys.len();

        // Dedup exact triples.
        self.edges.sort_unstable_by_key(|&(s, l, d)| (s.0, l.0, d.0));
        self.edges.dedup();
        let m = self.edges.len();

        // Degree counts under original direction.
        let mut in_degree = vec![0u32; n];
        let mut out_degree = vec![0u32; n];
        for &(s, _, d) in &self.edges {
            out_degree[s.index()] += 1;
            in_degree[d.index()] += 1;
        }

        // Bi-directed CSR: each triple contributes one outgoing entry at the
        // source and one incoming entry at the destination.
        let mut offsets = vec![0u64; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + (in_degree[v] + out_degree[v]) as u64;
        }
        let total = offsets[n] as usize;
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        let mut adj = vec![Adjacency::new(NodeId(0), LabelId(0), false); total];
        for &(s, l, d) in &self.edges {
            let cs = &mut cursor[s.index()];
            adj[*cs as usize] = Adjacency::new(d, l, true);
            *cs += 1;
            let cd = &mut cursor[d.index()];
            adj[*cd as usize] = Adjacency::new(s, l, false);
            *cd += 1;
        }

        // Degree-of-summary weights (Eq. 2) from per-node in-edge label
        // histograms. Edges are sorted by (src, label, dst); re-sort a copy
        // by (dst, label) to count label runs per destination.
        let mut by_dst: Vec<(u32, u32)> = self.edges.iter().map(|&(_, l, d)| (d.0, l.0)).collect();
        by_dst.sort_unstable();
        let mut raw = vec![0.0f32; n];
        let mut i = 0;
        while i < by_dst.len() {
            let dst = by_dst[i].0;
            let mut counts: Vec<u32> = Vec::new();
            let mut j = i;
            while j < by_dst.len() && by_dst[j].0 == dst {
                let label = by_dst[j].1;
                let mut k = j;
                while k < by_dst.len() && by_dst[k].0 == dst && by_dst[k].1 == label {
                    k += 1;
                }
                counts.push((k - j) as u32);
                j = k;
            }
            raw[dst as usize] = weights::degree_of_summary(&counts);
            i = j;
        }
        let normalized = weights::normalize(&raw);

        KnowledgeGraph {
            offsets: offsets.into(),
            adj: adj.into(),
            num_directed_edges: m,
            node_keys: crate::column::StrTable::from_strings(&self.node_keys),
            node_texts: crate::column::StrTable::from_strings(&self.node_texts),
            label_names: crate::column::StrTable::from_strings(&self.label_names),
            in_degree: in_degree.into(),
            out_degree: out_degree.into(),
            weights_raw: raw.into(),
            weights: normalized.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut b = GraphBuilder::new();
        let a1 = b.add_node("a", "first");
        let a2 = b.add_node("a", "");
        assert_eq!(a1, a2);
        assert_eq!(b.num_nodes(), 1);
        let g = b.build();
        assert_eq!(g.node_text(a1), "first");
    }

    #[test]
    fn readding_with_text_updates_text() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", "old");
        b.add_node("a", "new");
        let g = b.build();
        assert_eq!(g.node_text(a), "new");
    }

    #[test]
    fn duplicate_triples_are_removed() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", "x");
        let y = b.add_node("y", "y");
        b.add_edge(x, y, "p");
        b.add_edge(x, y, "p");
        b.add_edge(x, y, "q"); // distinct label: kept
        let g = b.build();
        assert_eq!(g.num_directed_edges(), 2);
        g.check_invariants().unwrap();
    }

    #[test]
    fn labels_are_interned() {
        let mut b = GraphBuilder::new();
        let l1 = b.label("instance of");
        let l2 = b.label("instance of");
        let l3 = b.label("subclass of");
        assert_eq!(l1, l2);
        assert_ne!(l1, l3);
    }

    #[test]
    fn summary_hub_gets_top_weight() {
        // A `human`-like hub: many in-edges with one label, vs a node with
        // diverse in-labels, vs leaf nodes.
        let mut b = GraphBuilder::new();
        let hub = b.add_node("hub", "human");
        let varied = b.add_node("varied", "paper");
        let mut sources = Vec::new();
        for i in 0..50 {
            sources.push(b.add_node(&format!("s{i}"), "person"));
        }
        for &s in &sources {
            b.add_edge(s, hub, "instance of");
        }
        for (i, &s) in sources.iter().take(10).enumerate() {
            b.add_edge(s, varied, &format!("rel{i}"));
        }
        let g = b.build();
        assert_eq!(g.weight(hub), 1.0, "hub should be the normalization max");
        assert!(g.weight(varied) < g.weight(hub));
        assert_eq!(g.weight(sources[0]), 0.0, "no in-edges ⇒ min weight");
        g.check_invariants().unwrap();
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_directed_edges(), 0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn node_without_edges_has_empty_neighbors() {
        let mut b = GraphBuilder::new();
        let lone = b.add_node("lone", "isolated");
        let g = b.build();
        assert!(g.neighbors(lone).is_empty());
    }
}
