//! Sequential reference engine (the `Tnum = 1` datapoint of Exp-4).
//!
//! Executes the exact same level-synchronous algorithm as the parallel
//! engines, one step at a time. Because the parallel engines are lock-free
//! with benign races (Theorem V.2), this engine's output is the ground
//! truth they are property-tested against.

use crate::bottom_up::{
    enqueue_sequential, expand_frontier, identify_sequential, ExecStrategy, ExpandCtx,
};
use crate::budget::QueryBudget;
use crate::engine::{run_matrix_search, KeywordSearchEngine, SearchOutcome};
use crate::error::SearchError;
use crate::session::SearchSession;
use crate::state::SearchState;
use crate::SearchParams;
use kgraph::KnowledgeGraph;
use textindex::ParsedQuery;

/// Single-threaded Central Graph search engine.
#[derive(Default)]
pub struct SeqEngine;

struct SeqStrategy;

impl ExecStrategy for SeqStrategy {
    fn enqueue(&self, state: &SearchState, out: &mut Vec<u32>) {
        enqueue_sequential(state, out);
    }

    fn identify(&self, state: &SearchState, frontiers: &[u32], level: u8, newly: &mut Vec<u32>) {
        identify_sequential(state, frontiers, level, newly);
    }

    fn expand(&self, ctx: &ExpandCtx<'_>, frontiers: &[u32], level: u8) {
        for &f in frontiers {
            expand_frontier(ctx, f, level);
        }
    }
}

impl SeqEngine {
    /// Create the sequential engine.
    pub fn new() -> Self {
        SeqEngine
    }
}

impl KeywordSearchEngine for SeqEngine {
    fn name(&self) -> &'static str {
        "Seq"
    }

    fn try_search_session(
        &self,
        session: &mut SearchSession,
        graph: &KnowledgeGraph,
        query: &ParsedQuery,
        params: &SearchParams,
        budget: &QueryBudget,
    ) -> Result<SearchOutcome, SearchError> {
        run_matrix_search(&SeqStrategy, self.name(), None, session, graph, query, params, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;
    use textindex::InvertedIndex;

    #[test]
    fn finds_bridge_answer() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", "alpha");
        let y = b.add_node("y", "beta");
        let m = b.add_node("m", "middle");
        b.add_edge(x, m, "e");
        b.add_edge(y, m, "e");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let q = ParsedQuery::parse(&idx, "alpha beta");
        let out = SeqEngine::new().search(&g, &q, &SearchParams::default());
        assert_eq!(out.answers.len(), 1);
        assert_eq!(out.answers[0].central, m);
        assert_eq!(out.stats.central_candidates, 1);
        out.answers[0].check_invariants().unwrap();
    }

    #[test]
    fn profile_phases_are_populated() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", "alpha");
        let y = b.add_node("y", "beta");
        b.add_edge(x, y, "e");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let q = ParsedQuery::parse(&idx, "alpha beta");
        let out = SeqEngine::new().search(&g, &q, &SearchParams::default());
        // all phases ran; total is the sum
        assert_eq!(
            out.profile.total(),
            out.profile.init
                + out.profile.enqueue
                + out.profile.identify
                + out.profile.expansion
                + out.profile.top_down
        );
    }
}
