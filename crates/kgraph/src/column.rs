//! Zero-copy columnar storage: the primitive every CSR array sits on.
//!
//! A [`Column<T>`] is an immutable typed array with two backings:
//!
//! * **Owned** — a plain heap `Vec<T>`, what [`crate::GraphBuilder`]
//!   produces;
//! * **Mapped** — a typed view into a read-only memory-mapped snapshot
//!   ([`crate::snapshot::Snapshot`]); the column borrows nothing and
//!   copies nothing, it keeps the mapping alive through an `Arc` and
//!   derefs straight into the page cache.
//!
//! Both backings deref to `&[T]`, so every consumer — the four search
//! engines, the shard partitioner, the bench harness — is oblivious to
//! where the bytes live. A [`StrTable`] builds on two columns (an offset
//! array plus a byte arena) to give the same two-backing treatment to
//! string collections, replacing `Vec<String>` without per-string heap
//! allocations in the mapped case.

use crate::mmap::Mmap;
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Marker for types that can be reinterpreted to/from raw little-endian
/// bytes inside a snapshot.
///
/// # Safety
///
/// Implementors must be `Copy`, have **no padding bytes**, no pointers,
/// and a stable layout (`#[repr(C)]` / `#[repr(transparent)]` or a
/// primitive), and every bit pattern of the right size must be a valid
/// value (no `bool`, no enums with niches). Snapshot integrity is
/// checksummed separately; this contract is what keeps reinterpreting
/// mapped bytes *memory-safe* even for a corrupted file.
pub unsafe trait Pod: Copy + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}

/// View a Pod slice as its raw bytes (for writing snapshot sections).
pub fn pod_bytes<T: Pod>(data: &[T]) -> &[u8] {
    // Safety: Pod guarantees no padding and no invalid bit patterns.
    unsafe { std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), std::mem::size_of_val(data)) }
}

/// An immutable typed array, heap-owned or snapshot-mapped.
pub struct Column<T: Pod> {
    inner: Inner<T>,
}

enum Inner<T: Pod> {
    Owned(Vec<T>),
    /// `offset`/`len` are in *elements*, pre-validated against the map's
    /// length and `T`'s alignment at construction.
    Mapped {
        map: Arc<Mmap>,
        offset_bytes: usize,
        len: usize,
    },
}

impl<T: Pod> Column<T> {
    /// An empty owned column.
    pub fn new() -> Self {
        Column { inner: Inner::Owned(Vec::new()) }
    }

    /// Wrap an owned vector.
    pub fn from_vec(v: Vec<T>) -> Self {
        Column { inner: Inner::Owned(v) }
    }

    /// A typed view of `len_bytes` bytes at `offset_bytes` inside `map`.
    ///
    /// Fails (rather than panicking or reinterpreting garbage) when the
    /// range leaves the mapping, the byte length is not a multiple of
    /// `size_of::<T>()`, or the offset breaks `T`'s alignment relative
    /// to the page-aligned mapping base.
    pub fn from_mmap(
        map: Arc<Mmap>,
        offset_bytes: usize,
        len_bytes: usize,
    ) -> Result<Self, String> {
        let size = std::mem::size_of::<T>();
        let align = std::mem::align_of::<T>();
        if offset_bytes.checked_add(len_bytes).map_or(true, |end| end > map.len()) {
            return Err(format!(
                "column range {offset_bytes}+{len_bytes} exceeds mapping of {} bytes",
                map.len()
            ));
        }
        if size == 0 || len_bytes % size != 0 {
            return Err(format!("column byte length {len_bytes} is not a multiple of {size}"));
        }
        if offset_bytes % align != 0 {
            return Err(format!("column offset {offset_bytes} breaks alignment {align}"));
        }
        Ok(Column { inner: Inner::Mapped { map, offset_bytes, len: len_bytes / size } })
    }

    /// `true` when the column is a view into a memory-mapped snapshot.
    pub fn is_mapped(&self) -> bool {
        matches!(self.inner, Inner::Mapped { .. })
    }

    /// The elements as a slice, wherever they live.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.inner {
            Inner::Owned(v) => v.as_slice(),
            Inner::Mapped { map, offset_bytes, len } => {
                // Safety: range and alignment were validated in
                // `from_mmap`, the mapping is immutable and outlives
                // `self` via the Arc, and Pod admits every bit pattern.
                unsafe {
                    std::slice::from_raw_parts(map.as_ptr().add(*offset_bytes).cast::<T>(), *len)
                }
            }
        }
    }
}

impl<T: Pod> Default for Column<T> {
    fn default() -> Self {
        Column::new()
    }
}

impl<T: Pod> Deref for Column<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> From<Vec<T>> for Column<T> {
    fn from(v: Vec<T>) -> Self {
        Column::from_vec(v)
    }
}

impl<T: Pod> Clone for Column<T> {
    /// Owned columns clone their data; mapped columns clone the `Arc`
    /// (cheap — the mapping is shared, never duplicated).
    fn clone(&self) -> Self {
        match &self.inner {
            Inner::Owned(v) => Column { inner: Inner::Owned(v.clone()) },
            Inner::Mapped { map, offset_bytes, len } => Column {
                inner: Inner::Mapped {
                    map: Arc::clone(map),
                    offset_bytes: *offset_bytes,
                    len: *len,
                },
            },
        }
    }
}

impl<T: Pod + fmt::Debug> fmt::Debug for Column<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Pod + PartialEq> PartialEq for Column<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod + Serialize> Serialize for Column<T> {
    /// Serializes like a plain sequence, so the JSON round-trip of a
    /// mapped graph is indistinguishable from an owned one.
    fn to_value(&self) -> Value {
        Value::Array(self.as_slice().iter().map(Serialize::to_value).collect())
    }
}

impl<T: Pod + Deserialize> Deserialize for Column<T> {
    /// Deserializes to the owned backing.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Column::from_vec(Vec::<T>::from_value(v)?))
    }
}

/// An immutable string collection in arena form: `offsets[i]..offsets[i+1]`
/// delimits string `i` inside one shared UTF-8 byte buffer.
///
/// Replaces `Vec<String>` throughout the graph so that node keys, node
/// texts and label names can live in a memory-mapped snapshot without a
/// single per-string allocation. An empty table has an empty offset
/// column (not one `[0]` entry), so `len()` is well-defined either way.
#[derive(Clone, Debug, Default)]
pub struct StrTable {
    offsets: Column<u64>,
    bytes: Column<u8>,
}

impl StrTable {
    /// Build an owned table from any iterator of strings.
    pub fn from_strings<I, S>(strings: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut offsets: Vec<u64> = vec![0];
        let mut bytes: Vec<u8> = Vec::new();
        for s in strings {
            bytes.extend_from_slice(s.as_ref().as_bytes());
            offsets.push(bytes.len() as u64);
        }
        StrTable { offsets: offsets.into(), bytes: bytes.into() }
    }

    /// Assemble from pre-built columns (the snapshot open path). The
    /// offset column must hold `n + 1` monotone entries covering the byte
    /// column; only the cheap length/emptiness checks run here — a
    /// corrupt interior offset surfaces as a panic on access, never as
    /// unsoundness.
    pub fn from_columns(offsets: Column<u64>, bytes: Column<u8>) -> Result<Self, String> {
        match offsets.last() {
            None => {
                if !bytes.is_empty() {
                    return Err("string table with no offsets but non-empty arena".into());
                }
            }
            Some(&last) => {
                if last as usize != bytes.len() {
                    return Err(format!(
                        "string arena is {} bytes but final offset says {last}",
                        bytes.len()
                    ));
                }
            }
        }
        Ok(StrTable { offsets, bytes })
    }

    /// Number of strings.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// `true` when the table holds no strings.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when the table is a view into a memory-mapped snapshot.
    pub fn is_mapped(&self) -> bool {
        self.bytes.is_mapped()
    }

    /// String `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`, or — for a corrupted mapped snapshot that
    /// passed header validation — if the stored offsets are inverted or
    /// the bytes are not UTF-8. Corruption is detected, never silently
    /// read out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> &str {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        std::str::from_utf8(&self.bytes[lo..hi]).expect("string table bytes are UTF-8")
    }

    /// Iterator over all strings in order.
    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Index of the first string equal to `needle`, if any (linear scan).
    pub fn position(&self, needle: &str) -> Option<usize> {
        self.iter().position(|s| s == needle)
    }

    /// The offset column (for snapshot writing).
    pub fn offsets(&self) -> &Column<u64> {
        &self.offsets
    }

    /// The byte arena (for snapshot writing).
    pub fn bytes(&self) -> &Column<u8> {
        &self.bytes
    }

    /// Approximate heap/mapped footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>() + self.bytes.len()
    }
}

impl PartialEq for StrTable {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl<S: AsRef<str>> FromIterator<S> for StrTable {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        StrTable::from_strings(iter)
    }
}

impl Serialize for StrTable {
    /// Serializes as a sequence of strings (JSON-friendly).
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|s| Value::String(s.to_owned())).collect())
    }
}

impl Deserialize for StrTable {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(StrTable::from_strings(Vec::<String>::from_value(v)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_column_derefs_to_its_vec() {
        let c: Column<u32> = vec![1, 2, 3].into();
        assert_eq!(&c[..], &[1, 2, 3]);
        assert!(!c.is_mapped());
        assert_eq!(c.clone(), c);
    }

    #[test]
    fn pod_bytes_reinterprets_little_endian() {
        let data: Vec<u32> = vec![0x0403_0201];
        assert_eq!(pod_bytes(&data), &[1, 2, 3, 4]);
    }

    #[test]
    fn str_table_round_trips_strings() {
        let t = StrTable::from_strings(["alpha", "", "naïve ✓"]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(0), "alpha");
        assert_eq!(t.get(1), "");
        assert_eq!(t.get(2), "naïve ✓");
        assert_eq!(t.position("naïve ✓"), Some(2));
        assert_eq!(t.position("missing"), None);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec!["alpha", "", "naïve ✓"]);
    }

    #[test]
    fn empty_str_table() {
        let t = StrTable::from_strings(Vec::<String>::new());
        assert_eq!(t.len(), 1 - 1);
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
        let d = StrTable::default();
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn str_table_from_columns_validates_coverage() {
        let good = StrTable::from_columns(vec![0u64, 2].into(), vec![b'h', b'i'].into());
        assert_eq!(good.unwrap().get(0), "hi");
        let bad = StrTable::from_columns(vec![0u64, 5].into(), vec![b'h', b'i'].into());
        assert!(bad.is_err());
        let bad2 = StrTable::from_columns(Column::new(), vec![b'x'].into());
        assert!(bad2.is_err());
    }

    #[test]
    fn column_serde_round_trips() {
        let c: Column<f32> = vec![1.5f32, -0.25].into();
        let json = serde_json::to_string(&c).unwrap();
        let back: Column<f32> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
        let t = StrTable::from_strings(["x", "yz"]);
        let json = serde_json::to_string(&t).unwrap();
        let back: StrTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
