//! Message schema of the shard-worker protocol.
//!
//! Each RPC is one request frame answered by one response frame (see
//! [`super::frame`] for the framing). Payloads are JSON documents; the
//! opcode selects the message type, so the JSON never needs a type tag.
//! The per-query RPC sequence mirrors the phases of the in-process round
//! protocol ([`crate::shard::ShardedSearch`]) one-to-one:
//!
//! | opcode | request → response | round-protocol phase |
//! |---|---|---|
//! | [`OP_HELLO`] → [`OP_HELLO_OK`] | [`Hello`] → [`HelloOk`] | connection handshake: partition contract check |
//! | [`OP_PING`] → [`OP_PONG`] | empty → empty | heartbeat / breaker probe |
//! | [`OP_START`] → [`OP_START_OK`] | [`Start`] → [`StartOk`] | scatter: localize + seed the query |
//! | [`OP_ENQUEUE`] → [`OP_ENQUEUE_OK`] | empty → [`EnqueueOk`] | drain owned frontier flags |
//! | [`OP_IDENTIFY`] → [`OP_IDENTIFY_OK`] | [`Identify`] → [`IdentifyOk`] | identify central nodes this level |
//! | [`OP_EXPAND`] → [`OP_EXPAND_OK`] | [`Expand`] → [`ExpandOk`] | expand + boundary scan |
//! | [`OP_APPLY`] → [`OP_APPLY_OK`] | [`Apply`] → empty | apply broadcast notifications |
//! | [`OP_COLLECT`] → [`OP_COLLECT_OK`] | [`Collect`] → [`CollectOk`] | ship hit/central rows for top-down |
//! | — → [`OP_ERROR`] | — → [`WireError`] | any failure; connection closes after |
//!
//! The coordinator never ships sub-graphs: both sides derive the
//! partition independently from the `(shards, seed, num_nodes)` contract
//! validated by the handshake, and the per-query payloads carry only
//! global node ids.

use crate::trace::ShardSpan;
use crate::SearchParams;
use serde::{Deserialize, Serialize};
use textindex::{KeywordGroup, ParsedQuery};

/// Protocol revision. Version 2 added the optional telemetry fields
/// (`qid`/`spans` on [`Start`], span piggybacking on [`CollectOk`], the
/// `version` echo on [`HelloOk`]) — all `Option`s that decode as absent
/// under the v1 schema, so v1 and v2 interoperate in both directions and
/// the handshake only rejects versions outside
/// [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`].
pub const PROTOCOL_VERSION: u32 = 2;

/// Oldest coordinator protocol revision a worker still accepts. The v2
/// additions are optional fields, so v1 peers remain fully functional —
/// they simply never see query IDs or spans.
pub const MIN_PROTOCOL_VERSION: u32 = 1;

/// Handshake request.
pub const OP_HELLO: u8 = 1;
/// Handshake acknowledgement.
pub const OP_HELLO_OK: u8 = 2;
/// Health probe request (empty payload).
pub const OP_PING: u8 = 3;
/// Health probe response (empty payload).
pub const OP_PONG: u8 = 4;
/// Begin a query on this connection.
pub const OP_START: u8 = 5;
/// Query accepted.
pub const OP_START_OK: u8 = 6;
/// Drain owned frontier flags (empty payload).
pub const OP_ENQUEUE: u8 = 7;
/// Frontier count reply.
pub const OP_ENQUEUE_OK: u8 = 8;
/// Identify central nodes at a level.
pub const OP_IDENTIFY: u8 = 9;
/// Newly identified nodes reply.
pub const OP_IDENTIFY_OK: u8 = 10;
/// Run the expansion kernel + boundary scan at a level.
pub const OP_EXPAND: u8 = 11;
/// Boundary outbox reply.
pub const OP_EXPAND_OK: u8 = 12;
/// Apply broadcast boundary notifications.
pub const OP_APPLY: u8 = 13;
/// Notifications applied (empty payload).
pub const OP_APPLY_OK: u8 = 14;
/// Ship hit/central rows for the top-down stage.
pub const OP_COLLECT: u8 = 15;
/// Row shipment reply.
pub const OP_COLLECT_OK: u8 = 16;
/// Structured failure; the sender closes the connection afterwards.
pub const OP_ERROR: u8 = 17;

/// Encode a wire message as a JSON frame payload.
pub fn encode<T: Serialize>(msg: &T) -> Vec<u8> {
    serde_json::to_string(msg).expect("wire messages always serialize").into_bytes()
}

/// Decode a JSON frame payload into a wire message.
pub fn decode<T: Deserialize>(payload: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("payload not UTF-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| format!("payload schema mismatch: {}", e.0))
}

/// Connection handshake: the coordinator states the partition contract it
/// expects; the worker rejects any mismatch with [`WireError`] so a
/// misconfigured worker can never silently serve a different partition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Hello {
    /// Protocol revision of the coordinator ([`PROTOCOL_VERSION`]).
    pub version: u32,
    /// Total shard count of the partition.
    pub shards: u32,
    /// The shard index the coordinator believes this worker owns.
    pub shard_index: u32,
    /// Node count of the global graph (cheap whole-graph fingerprint).
    pub num_nodes: u64,
    /// Ownership-hash seed of the partition.
    pub seed: u64,
}

/// Handshake acknowledgement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HelloOk {
    /// The worker's shard index (echoed back).
    pub shard_index: u32,
    /// Owned-node count of the worker's part — a partition fingerprint
    /// the coordinator can sanity-check.
    pub num_owned: u32,
    /// The worker's protocol revision. Absent from v1 workers (the field
    /// did not exist), so `None` reads as version 1; the coordinator uses
    /// it to decide whether this channel may carry qids and spans.
    pub version: Option<u32>,
}

/// One keyword group of a query, in global node ids.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WireGroup {
    /// The stemmed keyword term.
    pub term: String,
    /// Global ids of the nodes matching the term.
    pub nodes: Vec<u32>,
}

/// A parsed query in wire form (global node ids).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WireQuery {
    /// Keyword groups, in BFS instance order.
    pub groups: Vec<WireGroup>,
    /// Query terms that matched no node (carried for fault tokens).
    pub unmatched: Vec<String>,
}

impl WireQuery {
    /// Lower a [`ParsedQuery`] onto the wire.
    pub fn from_query(q: &ParsedQuery) -> WireQuery {
        WireQuery {
            groups: q
                .groups
                .iter()
                .map(|g| WireGroup {
                    term: g.term.clone(),
                    nodes: g.nodes.iter().map(|n| n.0).collect(),
                })
                .collect(),
            unmatched: q.unmatched.clone(),
        }
    }

    /// Reconstruct the global [`ParsedQuery`] worker-side.
    pub fn to_query(&self) -> ParsedQuery {
        ParsedQuery {
            groups: self
                .groups
                .iter()
                .map(|g| KeywordGroup {
                    term: g.term.clone(),
                    nodes: g.nodes.iter().map(|&v| kgraph::NodeId(v)).collect(),
                })
                .collect(),
            unmatched: self.unmatched.clone(),
        }
    }
}

/// Begin a query: the scatter phase. The worker localizes the query onto
/// its part, re-arms its search state, and remembers the per-query
/// execution knobs for the following phase RPCs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Start {
    /// The query, in global node ids.
    pub query: WireQuery,
    /// Search parameters. `explicit_activation` is serde-skipped on this
    /// type, so the table travels in [`Start::activation`] instead.
    pub params: SearchParams,
    /// Optional explicit global activation table (one level per global
    /// node); the worker remaps it onto its locals.
    pub activation: Option<Vec<u8>>,
    /// Expansion-kernel name: one of `"Seq"`, `"CPU-Par"`, `"GPU-Par"`,
    /// `"CPU-Par-d"`.
    pub backend: String,
    /// Worker threads the kernel was configured with.
    pub threads: u32,
    /// Fleet-wide query ID, echoed back on [`CollectOk`] so worker-side
    /// observations can be joined with the coordinator's. Optional since
    /// protocol v2; v1 workers ignore it.
    pub qid: Option<u64>,
    /// Ask the worker to record per-RPC spans for this query and
    /// piggyback them on [`CollectOk`]. Optional since protocol v2
    /// (absent = off); v1 workers ignore it.
    pub spans: Option<bool>,
}

/// Query accepted.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StartOk {
    /// Keyword count after localization (always the global count).
    pub keywords: u32,
}

/// Enqueue reply: how many owned nodes this worker drained into its
/// frontier for the coming level.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnqueueOk {
    /// Frontier size contributed by this worker.
    pub frontier: u64,
}

/// Identify request for one level.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Identify {
    /// The current BFS level.
    pub level: u8,
    /// Whether to also compute the traced-query observations.
    pub traced: bool,
}

/// Identify reply.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IdentifyOk {
    /// Newly identified central nodes, as global ids, in local frontier
    /// scan order (the coordinator merges and sorts, exactly like the
    /// in-process merge step).
    pub newly: Vec<u32>,
    /// Traced-query observation: keyword cells first covered this level.
    pub new_hits: u64,
    /// Traced-query observation: frontier nodes still activation-gated.
    pub deferred: u64,
}

/// Expand request for one level.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Expand {
    /// The current BFS level.
    pub level: u8,
}

/// Expand reply: the boundary outbox plus the budget charge.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExpandOk {
    /// `(global node, instance)` boundary cells that became `level + 1`.
    pub outbox: Vec<(u32, u32)>,
    /// Expansion units charged by this level's kernel on this worker; the
    /// coordinator charges the sum against the query's budget tracker at
    /// the same sequence point the in-process driver reaches the same
    /// total, keeping budget verdicts and traces byte-identical.
    pub charged: u64,
}

/// Broadcast of the deduplicated notification union for one level. Every
/// worker receives the full set and applies the pairs present in its
/// part — membership filtering replaces the in-process holders routing,
/// with identical effect.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Apply {
    /// The current BFS level.
    pub level: u8,
    /// Deduplicated `(global node, instance)` pairs.
    pub pairs: Vec<(u32, u32)>,
}

/// Collect request: ship rows for the top-down stage.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Collect {
    /// Also ship halo rows. Normally only owned rows travel (the owner is
    /// authoritative); under degraded answering the live shards' halo
    /// replicas stand in for a dead owner's rows.
    pub include_halos: bool,
}

/// One node's search-state row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WireRow {
    /// Global node id.
    pub node: u32,
    /// Hitting level per keyword instance (255 = unreached).
    pub hits: Vec<u8>,
    /// Whether the node is a keyword source.
    pub keyword: bool,
    /// Central identification depth, if identified.
    pub central: Option<u8>,
}

/// Collect reply.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CollectOk {
    /// Rows with at least one finite hitting level.
    pub rows: Vec<WireRow>,
    /// The query ID from [`Start`], echoed back (protocol v2, spans on).
    pub qid: Option<u64>,
    /// Per-RPC worker spans for this query, in RPC order — monotonic
    /// *durations* measured on the worker's clock, never absolute
    /// timestamps (protocol v2, spans on). The final `collect` span
    /// reports `encode_us = 0`: its own encode cannot observe itself and
    /// is attributed to wire time by the coordinator.
    pub spans: Option<Vec<ShardSpan>>,
}

/// Structured protocol failure. After sending one of these the worker
/// closes the connection (framing carries no resync point).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WireError {
    /// Stable machine-readable code (`bad_handshake`, `bad_frame`,
    /// `bad_sequence`, `internal`).
    pub code: String,
    /// Human-readable detail.
    pub message: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_round_trip_through_the_codec() {
        let hello =
            Hello { version: PROTOCOL_VERSION, shards: 4, shard_index: 2, num_nodes: 12, seed: 7 };
        let back: Hello = decode(&encode(&hello)).unwrap();
        assert_eq!(back, hello);

        let ok = ExpandOk { outbox: vec![(3, 0), (9, 1)], charged: 42 };
        let back: ExpandOk = decode(&encode(&ok)).unwrap();
        assert_eq!(back, ok);

        let row = WireRow { node: 5, hits: vec![0, 255], keyword: true, central: Some(1) };
        let ok = CollectOk {
            rows: vec![row.clone()],
            qid: Some(9),
            spans: Some(vec![ShardSpan { op: "collect".into(), ..ShardSpan::default() }]),
        };
        let back: CollectOk = decode(&encode(&ok)).unwrap();
        assert_eq!(back, ok);
    }

    #[test]
    fn v1_payloads_without_telemetry_fields_still_decode() {
        // A v1 worker's CollectOk has no qid/spans keys at all; a v1
        // coordinator's Start has no qid/spans either. Both sides must
        // read the absent fields as None — this is the compatibility
        // contract behind the Hello version range.
        let ok: CollectOk = decode(br#"{"rows":[]}"#).unwrap();
        assert_eq!(ok.qid, None);
        assert_eq!(ok.spans, None);
        let hello_ok: HelloOk = decode(br#"{"shard_index":1,"num_owned":10}"#).unwrap();
        assert_eq!(hello_ok.version, None, "absent version reads as a v1 worker");
        let params = serde_json::to_string(&SearchParams::default()).unwrap();
        let v1_start = format!(
            r#"{{"query":{{"groups":[],"unmatched":[]}},"params":{params},"activation":null,"backend":"Seq","threads":1}}"#
        );
        let start: Start = decode(v1_start.as_bytes()).unwrap();
        assert_eq!(start.qid, None);
        assert_eq!(start.spans, None);
    }

    #[test]
    fn queries_round_trip_including_unmatched_terms() {
        let q = ParsedQuery {
            groups: vec![KeywordGroup {
                term: "alpha".into(),
                nodes: vec![kgraph::NodeId(1), kgraph::NodeId(4)],
            }],
            unmatched: vec!["fault0drop".into()],
        };
        let wq = WireQuery::from_query(&q);
        let back: WireQuery = decode(&encode(&wq)).unwrap();
        let rq = back.to_query();
        assert_eq!(rq.groups.len(), 1);
        assert_eq!(rq.groups[0].term, "alpha");
        assert_eq!(rq.groups[0].nodes, q.groups[0].nodes);
        assert_eq!(rq.unmatched, q.unmatched);
    }

    #[test]
    fn params_survive_the_wire_minus_the_skipped_table() {
        let params = SearchParams::default()
            .with_top_k(7)
            .with_alpha(0.4)
            .with_average_distance(2.0)
            .with_explicit_activation(vec![1, 2, 3]);
        let start = Start {
            query: WireQuery { groups: vec![], unmatched: vec![] },
            activation: params.explicit_activation.as_deref().cloned(),
            params,
            backend: "CPU-Par".into(),
            threads: 4,
            qid: Some(3),
            spans: Some(true),
        };
        let back: Start = decode(&encode(&start)).unwrap();
        assert_eq!(back.params.top_k, 7);
        assert_eq!(back.params.explicit_activation, None, "serde-skipped field");
        assert_eq!(back.activation, Some(vec![1, 2, 3]), "table travels separately");
    }

    #[test]
    fn garbage_payloads_decode_to_structured_errors() {
        assert!(decode::<Hello>(b"\xff\xfe").is_err(), "non-UTF-8");
        assert!(decode::<Hello>(b"not json").is_err(), "non-JSON");
        assert!(decode::<Hello>(b"{\"version\":1}").is_err(), "schema mismatch");
    }
}
