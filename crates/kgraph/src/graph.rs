//! The immutable, CSR-backed knowledge graph.
//!
//! The paper (Sec. III) models Wikidata as a **bi-directed**, node-weighted
//! graph with labeled nodes and edges: every stored triple `(s, p, o)` can be
//! traversed from either endpoint. We therefore materialize, for every node,
//! a single adjacency slice containing both its out-edges and its in-edges;
//! each entry remembers the original direction so in-degree–based weighting
//! (Eq. 2) and BANKS-style directed traversal both remain possible.
//!
//! Layout follows the "flat arrays, no pointer chasing" idiom: one `u64`
//! offset array plus one 8-byte `Adjacency` array, exactly the CSR storage
//! the paper budgets in Table IV.

use crate::column::{Column, Pod, StrTable};
use crate::ids::{LabelId, NodeId};
use serde::{Deserialize, Serialize};

/// Bit set in [`Adjacency::label_dir`] when the entry corresponds to the
/// edge's *original* direction (i.e. the edge leaves this node).
const OUTGOING_BIT: u32 = 1 << 31;

/// One adjacency entry: the neighbor, the edge label, and whether the edge
/// is outgoing from the owning node. Packed into 8 bytes.
///
/// `repr(C)` pins the layout so adjacency arrays can be written to — and
/// mapped back from — `.wsnap` snapshots without transformation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[repr(C)]
pub struct Adjacency {
    target: NodeId,
    label_dir: u32,
}

// Safety: two u32s, repr(C), no padding, every bit pattern valid.
unsafe impl Pod for Adjacency {}

impl Adjacency {
    /// Create an adjacency entry.
    #[inline]
    pub fn new(target: NodeId, label: LabelId, outgoing: bool) -> Self {
        debug_assert!(label.0 < OUTGOING_BIT, "label id overflows packed field");
        Adjacency { target, label_dir: label.0 | if outgoing { OUTGOING_BIT } else { 0 } }
    }

    /// The neighboring node.
    #[inline]
    pub fn target(self) -> NodeId {
        self.target
    }

    /// The label of the edge connecting to the neighbor.
    #[inline]
    pub fn label(self) -> LabelId {
        LabelId(self.label_dir & !OUTGOING_BIT)
    }

    /// `true` if the edge's original direction leaves the owning node.
    #[inline]
    pub fn is_outgoing(self) -> bool {
        self.label_dir & OUTGOING_BIT != 0
    }
}

/// An immutable knowledge graph in CSR form.
///
/// Construct with [`crate::GraphBuilder`] (heap-owned columns) or map one
/// from a `.wsnap` snapshot via [`crate::snapshot::graph_from_snapshot`]
/// (zero-copy columns over a read-only mapping). Node and label ids are
/// dense, so all per-node search state elsewhere in the workspace is held
/// in flat arrays indexed by [`NodeId`]. Every accessor behaves
/// identically on either backing — the differential `mmap_equivalence`
/// suite pins byte-identical search answers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KnowledgeGraph {
    pub(crate) offsets: Column<u64>,
    pub(crate) adj: Column<Adjacency>,
    pub(crate) num_directed_edges: usize,
    pub(crate) node_keys: StrTable,
    pub(crate) node_texts: StrTable,
    pub(crate) label_names: StrTable,
    pub(crate) in_degree: Column<u32>,
    pub(crate) out_degree: Column<u32>,
    /// Degree of summary per Eq. 2, before normalization.
    pub(crate) weights_raw: Column<f32>,
    /// Min–max normalized degree of summary in `[0, 1]` (the `w_i` used by
    /// the activation mapping, Sec. IV-A).
    pub(crate) weights: Column<f32>,
}

impl KnowledgeGraph {
    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.node_keys.len()
    }

    /// Number of *directed* edges (original triples). The bi-directed
    /// adjacency holds twice this many entries.
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.num_directed_edges
    }

    /// Total adjacency entries (`2 × num_directed_edges`, minus nothing —
    /// self-loops also contribute two entries).
    #[inline]
    pub fn num_adjacency_entries(&self) -> usize {
        self.adj.len()
    }

    /// Number of distinct edge labels.
    #[inline]
    pub fn num_labels(&self) -> usize {
        self.label_names.len()
    }

    /// The bi-directed adjacency slice of `v` (both in- and out-edges).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[Adjacency] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Bi-directed degree of `v` (in-degree + out-degree).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// In-degree of `v` under the original edge directions.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_degree[v.index()] as usize
    }

    /// Out-degree of `v` under the original edge directions.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_degree[v.index()] as usize
    }

    /// Normalized degree-of-summary weight `w_v ∈ [0, 1]` (Sec. IV-A).
    #[inline]
    pub fn weight(&self, v: NodeId) -> f32 {
        self.weights[v.index()]
    }

    /// Degree of summary before min–max normalization (Eq. 2).
    #[inline]
    pub fn raw_weight(&self, v: NodeId) -> f32 {
        self.weights_raw[v.index()]
    }

    /// The full normalized weight array (used by the activation mapping).
    #[inline]
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// The CSR offset array (`n + 1` entries), for snapshot writing.
    #[inline]
    pub fn csr_offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The flat bi-directed adjacency array, for snapshot writing.
    #[inline]
    pub fn csr_adjacency(&self) -> &[Adjacency] {
        &self.adj
    }

    /// The full per-node in-degree array.
    #[inline]
    pub fn in_degrees(&self) -> &[u32] {
        &self.in_degree
    }

    /// The full per-node out-degree array.
    #[inline]
    pub fn out_degrees(&self) -> &[u32] {
        &self.out_degree
    }

    /// The full raw (pre-normalization) weight array.
    #[inline]
    pub fn raw_weights(&self) -> &[f32] {
        &self.weights_raw
    }

    /// The node-key string table.
    #[inline]
    pub fn node_keys_table(&self) -> &StrTable {
        &self.node_keys
    }

    /// The node-text string table.
    #[inline]
    pub fn node_texts_table(&self) -> &StrTable {
        &self.node_texts
    }

    /// The label-name string table.
    #[inline]
    pub fn label_names_table(&self) -> &StrTable {
        &self.label_names
    }

    /// `true` when any column is served from a memory-mapped snapshot
    /// rather than the heap. (After a copy-on-write
    /// [`override_weights`][Self::override_weights] the weight columns are
    /// owned, but the graph still reports mapped as long as its structural
    /// columns are.)
    pub fn is_memory_mapped(&self) -> bool {
        self.offsets.is_mapped() || self.adj.is_mapped() || self.node_keys.is_mapped()
    }

    /// Assemble a graph directly from pre-built columns — the `.wsnap`
    /// open path ([`crate::snapshot::graph_from_snapshot`]). Cheap
    /// structural checks only (column lengths must agree, the final CSR
    /// offset must cover the adjacency array); full invariants stay with
    /// [`check_invariants`][Self::check_invariants], which deep tooling
    /// and tests call explicitly, because eagerly scanning every column
    /// would defeat lazy mapped opens.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        offsets: Column<u64>,
        adj: Column<Adjacency>,
        num_directed_edges: usize,
        node_keys: StrTable,
        node_texts: StrTable,
        label_names: StrTable,
        in_degree: Column<u32>,
        out_degree: Column<u32>,
        weights_raw: Column<f32>,
        weights: Column<f32>,
    ) -> Result<Self, String> {
        if offsets.is_empty() {
            return Err("offset column must hold at least one entry".into());
        }
        let n = offsets.len() - 1;
        for (what, len) in [
            ("node_keys", node_keys.len()),
            ("node_texts", node_texts.len()),
            ("in_degree", in_degree.len()),
            ("out_degree", out_degree.len()),
            ("weights_raw", weights_raw.len()),
            ("weights", weights.len()),
        ] {
            if len != n {
                return Err(format!("{what} holds {len} entries for a {n}-node graph"));
            }
        }
        if *offsets.last().unwrap() as usize != adj.len() {
            return Err(format!(
                "final CSR offset {} does not cover {} adjacency entries",
                offsets.last().unwrap(),
                adj.len()
            ));
        }
        Ok(KnowledgeGraph {
            offsets,
            adj,
            num_directed_edges,
            node_keys,
            node_texts,
            label_names,
            in_degree,
            out_degree,
            weights_raw,
            weights,
        })
    }

    /// Replace both weight arrays with externally computed values.
    ///
    /// `GraphBuilder::build` normalizes weights over the *local* maximum,
    /// which is the right thing for a self-contained graph but wrong for a
    /// sub-graph that must score nodes exactly like its parent: a shard of
    /// a partitioned graph needs every node to keep the weight it had in
    /// the whole graph, or activation levels (and Eq. 6 scores) drift. Both
    /// arrays must have one entry per node, and `normalized` must stay in
    /// `[0, 1]` — the same invariants `check_invariants` enforces.
    ///
    /// On a memory-mapped graph this is copy-on-write: the snapshot file
    /// stays untouched and only the two weight columns move to fresh
    /// heap-owned storage; every other column keeps pointing into the
    /// mapping. It never attempts to write through the read-only mapping.
    ///
    /// # Panics
    /// Panics if either array's length differs from the node count.
    pub fn override_weights(&mut self, raw: Vec<f32>, normalized: Vec<f32>) {
        assert_eq!(raw.len(), self.num_nodes(), "raw weights: one entry per node");
        assert_eq!(normalized.len(), self.num_nodes(), "normalized weights: one entry per node");
        self.weights_raw = raw.into();
        self.weights = normalized.into();
    }

    /// Stable external key of a node (e.g. a Wikidata `Q...` id).
    #[inline]
    pub fn node_key(&self, v: NodeId) -> &str {
        self.node_keys.get(v.index())
    }

    /// Human-readable text of a node — the string the text index tokenizes.
    #[inline]
    pub fn node_text(&self, v: NodeId) -> &str {
        self.node_texts.get(v.index())
    }

    /// Human-readable name of an edge label.
    #[inline]
    pub fn label_name(&self, l: LabelId) -> &str {
        self.label_names.get(l.index())
    }

    /// Linear scan lookup of a node by its external key. Intended for tests
    /// and examples; production callers keep their own key map.
    pub fn find_node_by_key(&self, key: &str) -> Option<NodeId> {
        self.node_keys.position(key).map(NodeId::from_index)
    }

    /// Linear scan lookup of a node by its exact text.
    pub fn find_node_by_text(&self, text: &str) -> Option<NodeId> {
        self.node_texts.position(text).map(NodeId::from_index)
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes()).map(NodeId::from_index)
    }

    /// Iterator over the original directed edges as
    /// `(source, label, target)` triples, reconstructed from the CSR.
    pub fn directed_edges(&self) -> impl Iterator<Item = (NodeId, LabelId, NodeId)> + '_ {
        self.nodes().flat_map(move |v| {
            self.neighbors(v)
                .iter()
                .filter(|a| a.is_outgoing())
                .map(move |a| (v, a.label(), a.target()))
        })
    }

    /// Extract the subgraph induced by `nodes`: the returned graph keeps
    /// the selected nodes' keys and texts and every original directed edge
    /// whose endpoints are both selected. Ids are re-densified; use keys
    /// to correlate. Useful for exporting answers.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> KnowledgeGraph {
        let mut b = crate::builder::GraphBuilder::with_capacity(nodes.len(), nodes.len() * 4);
        let selected: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
        for &v in nodes {
            b.add_node(self.node_key(v), self.node_text(v));
        }
        for &v in nodes {
            for a in self.neighbors(v) {
                if a.is_outgoing() && selected.contains(&a.target()) {
                    let s = b.node(self.node_key(v)).expect("just added");
                    let d = b.node(self.node_key(a.target())).expect("selected");
                    b.add_edge(s, d, self.label_name(a.label()));
                }
            }
        }
        b.build()
    }

    /// Validate internal invariants. Used by tests and the property suite;
    /// cheap enough to call on any freshly built graph.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.num_nodes();
        if self.offsets.len() != n + 1 {
            return Err(format!("offsets len {} != n+1 {}", self.offsets.len(), n + 1));
        }
        if self.node_texts.len() != n
            || self.in_degree.len() != n
            || self.out_degree.len() != n
            || self.weights.len() != n
            || self.weights_raw.len() != n
        {
            return Err("per-node array length mismatch".into());
        }
        if *self.offsets.last().unwrap() as usize != self.adj.len() {
            return Err("final offset does not cover adjacency array".into());
        }
        let mut out_seen = 0usize;
        for v in self.nodes() {
            let (mut inn, mut out) = (0usize, 0usize);
            for a in self.neighbors(v) {
                if a.target().index() >= n {
                    return Err(format!("adjacency target {} out of bounds", a.target()));
                }
                if a.is_outgoing() {
                    out += 1;
                } else {
                    inn += 1;
                }
            }
            if out != self.out_degree(v) || inn != self.in_degree(v) {
                return Err(format!("degree mismatch at {v}"));
            }
            out_seen += out;
        }
        if out_seen != self.num_directed_edges {
            return Err(format!(
                "outgoing entries {} != directed edge count {}",
                out_seen, self.num_directed_edges
            ));
        }
        for v in self.nodes() {
            let w = self.weight(v);
            if !(0.0..=1.0).contains(&w) {
                return Err(format!("normalized weight {w} outside [0,1] at {v}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> KnowledgeGraph {
        // v0 -> v1 -> v3, v0 -> v2 -> v3
        let mut b = GraphBuilder::new();
        let v0 = b.add_node("a", "alpha");
        let v1 = b.add_node("b", "beta");
        let v2 = b.add_node("c", "gamma");
        let v3 = b.add_node("d", "delta");
        b.add_edge(v0, v1, "p");
        b.add_edge(v0, v2, "p");
        b.add_edge(v1, v3, "q");
        b.add_edge(v2, v3, "q");
        b.build()
    }

    #[test]
    fn adjacency_packs_label_and_direction() {
        let a = Adjacency::new(NodeId(7), LabelId(42), true);
        assert_eq!(a.target(), NodeId(7));
        assert_eq!(a.label(), LabelId(42));
        assert!(a.is_outgoing());
        let b = Adjacency::new(NodeId(7), LabelId(42), false);
        assert!(!b.is_outgoing());
        assert_eq!(b.label(), LabelId(42));
        assert_eq!(std::mem::size_of::<Adjacency>(), 8);
    }

    #[test]
    fn diamond_degrees_and_counts() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_directed_edges(), 4);
        assert_eq!(g.num_adjacency_entries(), 8);
        let v0 = g.find_node_by_key("a").unwrap();
        let v3 = g.find_node_by_key("d").unwrap();
        assert_eq!(g.out_degree(v0), 2);
        assert_eq!(g.in_degree(v0), 0);
        assert_eq!(g.in_degree(v3), 2);
        assert_eq!(g.degree(v3), 2);
        g.check_invariants().unwrap();
    }

    #[test]
    fn bidirected_traversal_sees_both_directions() {
        let g = diamond();
        let v3 = g.find_node_by_key("d").unwrap();
        let nbrs: Vec<_> = g.neighbors(v3).iter().map(|a| a.target()).collect();
        assert_eq!(nbrs.len(), 2);
        assert!(g.neighbors(v3).iter().all(|a| !a.is_outgoing()));
    }

    #[test]
    fn directed_edges_reconstruct_triples() {
        let g = diamond();
        let mut edges: Vec<_> = g
            .directed_edges()
            .map(|(s, l, t)| {
                (
                    g.node_key(s).to_string(),
                    g.label_name(l).to_string(),
                    g.node_key(t).to_string(),
                )
            })
            .collect();
        edges.sort();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[0], ("a".into(), "p".into(), "b".into()));
    }

    #[test]
    fn find_node_lookups() {
        let g = diamond();
        assert_eq!(g.find_node_by_text("gamma"), g.find_node_by_key("c"));
        assert_eq!(g.find_node_by_key("zzz"), None);
        assert_eq!(g.find_node_by_text("zzz"), None);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = diamond();
        let v0 = g.find_node_by_key("a").unwrap();
        let v1 = g.find_node_by_key("b").unwrap();
        let v3 = g.find_node_by_key("d").unwrap();
        let sub = g.induced_subgraph(&[v0, v1, v3]);
        assert_eq!(sub.num_nodes(), 3);
        // kept: a->b, b->d; dropped: edges through c
        assert_eq!(sub.num_directed_edges(), 2);
        let b_id = sub.find_node_by_key("b").unwrap();
        assert_eq!(sub.node_text(b_id), "beta");
        sub.check_invariants().unwrap();
    }

    #[test]
    fn self_loop_contributes_two_adjacency_entries() {
        let mut b = GraphBuilder::new();
        let v = b.add_node("s", "self");
        b.add_edge(v, v, "loop");
        let g = b.build();
        assert_eq!(g.num_directed_edges(), 1);
        assert_eq!(g.degree(v), 2);
        assert_eq!(g.in_degree(v), 1);
        assert_eq!(g.out_degree(v), 1);
        g.check_invariants().unwrap();
    }
}
