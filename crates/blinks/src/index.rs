//! The BLINKS precomputed index: node–keyword distance map (NKM) and
//! keyword–node lists (KNL).

use kgraph::{KnowledgeGraph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use textindex::InvertedIndex;

/// Sentinel for "keyword unreachable from this node".
pub const UNREACHABLE: u16 = u16::MAX;

/// The full BLINKS index over a graph's keyword vocabulary.
///
/// Storage is `|V| × |terms|` u16 distances — the quantity that makes
/// BLINKS infeasible on web-scale KBs (the paper's argument for not
/// running it on Wikidata). Build cost is one multi-source BFS per term:
/// `O(|terms| · (|V| + |E|))`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeKeywordIndex {
    term_names: Vec<String>,
    num_nodes: usize,
    /// Row-major `node × term` hop distances.
    nkm: Vec<u16>,
    /// Per term: nodes sorted ascending by distance (the KNL).
    knl: Vec<Vec<NodeId>>,
    /// Wall-clock build time, for the index-cost experiment.
    #[serde(skip)]
    pub build_time: std::time::Duration,
}

impl NodeKeywordIndex {
    /// Build the full index from a graph and its inverted keyword index.
    /// `max_depth` caps BFS (distances beyond it become [`UNREACHABLE`]).
    pub fn build(graph: &KnowledgeGraph, inverted: &InvertedIndex, max_depth: u16) -> Self {
        let start = std::time::Instant::now();
        let n = graph.num_nodes();
        let terms: Vec<(String, Vec<NodeId>)> = inverted
            .term_frequencies()
            .map(|(t, _)| (t.to_string(), inverted.lookup_analyzed(t).unwrap_or(&[]).to_vec()))
            .collect();
        let t = terms.len();
        let mut nkm = vec![UNREACHABLE; n * t];
        let mut knl = Vec::with_capacity(t);
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        for (ti, (_, sources)) in terms.iter().enumerate() {
            // Multi-source BFS from every node containing the term.
            queue.clear();
            for &s in sources {
                nkm[s.index() * t + ti] = 0;
                queue.push_back(s);
            }
            while let Some(v) = queue.pop_front() {
                let d = nkm[v.index() * t + ti];
                if d >= max_depth {
                    continue;
                }
                for adj in graph.neighbors(v) {
                    let u = adj.target();
                    if nkm[u.index() * t + ti] == UNREACHABLE {
                        nkm[u.index() * t + ti] = d + 1;
                        queue.push_back(u);
                    }
                }
            }
            let mut list: Vec<NodeId> = (0..n)
                .filter(|&v| nkm[v * t + ti] != UNREACHABLE)
                .map(NodeId::from_index)
                .collect();
            list.sort_by_key(|v| nkm[v.index() * t + ti]);
            knl.push(list);
        }
        NodeKeywordIndex {
            term_names: terms.into_iter().map(|(t, _)| t).collect(),
            num_nodes: n,
            nkm,
            knl,
            build_time: start.elapsed(),
        }
    }

    /// Number of indexed terms.
    pub fn num_terms(&self) -> usize {
        self.term_names.len()
    }

    /// Number of indexed nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Term id by analyzed term.
    pub fn term_id(&self, term: &str) -> Option<usize> {
        self.term_names.iter().position(|t| t == term)
    }

    /// NKM lookup: hop distance from `v` to the nearest node containing
    /// term `ti` ([`UNREACHABLE`] if none within the build depth).
    #[inline]
    pub fn distance(&self, v: NodeId, ti: usize) -> u16 {
        self.nkm[v.index() * self.num_terms() + ti]
    }

    /// The keyword–node list of term `ti` (nodes ascending by distance).
    pub fn knl(&self, ti: usize) -> &[NodeId] {
        &self.knl[ti]
    }

    /// NKM bytes — the dominant index cost the paper's feasibility
    /// argument is about.
    pub fn nkm_bytes(&self) -> usize {
        self.nkm.len() * std::mem::size_of::<u16>()
    }

    /// KNL bytes.
    pub fn knl_bytes(&self) -> usize {
        self.knl.iter().map(|l| l.len() * std::mem::size_of::<NodeId>()).sum()
    }

    /// Total index bytes.
    pub fn total_bytes(&self) -> usize {
        self.nkm_bytes() + self.knl_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;

    /// apple — mid — mid — banana path.
    fn fixture() -> (KnowledgeGraph, InvertedIndex) {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", "apple");
        let m1 = b.add_node("m1", "mid");
        let m2 = b.add_node("m2", "mid");
        let z = b.add_node("z", "banana");
        b.add_edge(a, m1, "e");
        b.add_edge(m1, m2, "e");
        b.add_edge(m2, z, "e");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        (g, idx)
    }

    #[test]
    fn nkm_distances_are_hop_counts() {
        let (g, inv) = fixture();
        let idx = NodeKeywordIndex::build(&g, &inv, 16);
        let apple = idx.term_id("appl").unwrap(); // stemmed
        let banana = idx.term_id("banana").unwrap();
        let a = g.find_node_by_key("a").unwrap();
        let z = g.find_node_by_key("z").unwrap();
        assert_eq!(idx.distance(a, apple), 0);
        assert_eq!(idx.distance(a, banana), 3);
        assert_eq!(idx.distance(z, apple), 3);
        assert_eq!(idx.distance(z, banana), 0);
    }

    #[test]
    fn knl_is_distance_sorted() {
        let (g, inv) = fixture();
        let idx = NodeKeywordIndex::build(&g, &inv, 16);
        let apple = idx.term_id("appl").unwrap();
        let list = idx.knl(apple);
        assert_eq!(list.len(), 4);
        for w in list.windows(2) {
            assert!(idx.distance(w[0], apple) <= idx.distance(w[1], apple));
        }
    }

    #[test]
    fn max_depth_caps_reachability() {
        let (g, inv) = fixture();
        let idx = NodeKeywordIndex::build(&g, &inv, 1);
        let banana = idx.term_id("banana").unwrap();
        let a = g.find_node_by_key("a").unwrap();
        assert_eq!(idx.distance(a, banana), UNREACHABLE);
    }

    #[test]
    fn index_size_is_nodes_times_terms() {
        let (g, inv) = fixture();
        let idx = NodeKeywordIndex::build(&g, &inv, 16);
        assert_eq!(idx.nkm_bytes(), g.num_nodes() * idx.num_terms() * 2);
        assert!(idx.total_bytes() > idx.nkm_bytes());
        assert!(idx.build_time.as_nanos() > 0);
    }

    #[test]
    fn term_lookup_misses_gracefully() {
        let (g, inv) = fixture();
        let idx = NodeKeywordIndex::build(&g, &inv, 16);
        assert_eq!(idx.term_id("nonexistent"), None);
        assert_eq!(idx.num_nodes(), g.num_nodes());
    }
}
