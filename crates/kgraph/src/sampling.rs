//! Average shortest-distance estimation by pair sampling (paper Table II).
//!
//! The Penalty-and-Reward activation mapping (Sec. IV-A) scales node weights
//! around the graph's **average shortest distance** `A`, which the paper
//! estimates by sampling ten thousand node pairs (reporting `A = 3.87` for
//! wiki2017 and `A = 3.68` for wiki2018, with the sample standard deviation
//! in Table II). This module reproduces that estimator with plain BFS over
//! the bi-directed adjacency.

use crate::graph::KnowledgeGraph;
use crate::ids::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Result of [`estimate_average_distance`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DistanceEstimate {
    /// Mean shortest distance over reachable sampled pairs (the paper's `A`).
    pub mean: f64,
    /// Sample standard deviation (the paper's `Deviation` column).
    pub deviation: f64,
    /// Pairs that were connected within `max_depth`.
    pub reachable_pairs: usize,
    /// Pairs sampled in total.
    pub sampled_pairs: usize,
}

impl DistanceEstimate {
    /// `A` rounded as the activation mapping consumes it.
    pub fn average(&self) -> f64 {
        self.mean
    }
}

/// BFS distance between two nodes over the bi-directed adjacency, or `None`
/// if `dst` is not reached within `max_depth` hops.
pub fn bfs_distance(g: &KnowledgeGraph, src: NodeId, dst: NodeId, max_depth: u32) -> Option<u32> {
    if src == dst {
        return Some(0);
    }
    let mut visited = vec![false; g.num_nodes()];
    visited[src.index()] = true;
    let mut queue: VecDeque<(NodeId, u32)> = VecDeque::new();
    queue.push_back((src, 0));
    while let Some((v, d)) = queue.pop_front() {
        if d >= max_depth {
            continue;
        }
        for a in g.neighbors(v) {
            let t = a.target();
            if visited[t.index()] {
                continue;
            }
            if t == dst {
                return Some(d + 1);
            }
            visited[t.index()] = true;
            queue.push_back((t, d + 1));
        }
    }
    None
}

/// Estimate the average shortest distance `A` by sampling `pairs` random
/// node pairs (paper Sec. IV-A / Table II). Unreachable pairs (beyond
/// `max_depth`) are excluded from the mean, mirroring the paper's sampling
/// over the (largely connected) Wikidata graph.
///
/// Deterministic for a given `seed`.
pub fn estimate_average_distance(
    g: &KnowledgeGraph,
    pairs: usize,
    max_depth: u32,
    seed: u64,
) -> DistanceEstimate {
    let n = g.num_nodes();
    if n < 2 || pairs == 0 {
        return DistanceEstimate {
            mean: 0.0,
            deviation: 0.0,
            reachable_pairs: 0,
            sampled_pairs: 0,
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut distances: Vec<u32> = Vec::with_capacity(pairs);
    for _ in 0..pairs {
        let s = NodeId::from_index(rng.random_range(0..n));
        let mut t = NodeId::from_index(rng.random_range(0..n));
        while t == s && n > 1 {
            t = NodeId::from_index(rng.random_range(0..n));
        }
        if let Some(d) = bfs_distance(g, s, t, max_depth) {
            distances.push(d);
        }
    }
    if distances.is_empty() {
        return DistanceEstimate {
            mean: 0.0,
            deviation: 0.0,
            reachable_pairs: 0,
            sampled_pairs: pairs,
        };
    }
    let mean = distances.iter().map(|&d| d as f64).sum::<f64>() / distances.len() as f64;
    let var = distances
        .iter()
        .map(|&d| {
            let x = d as f64 - mean;
            x * x
        })
        .sum::<f64>()
        / distances.len() as f64;
    DistanceEstimate {
        mean,
        deviation: var.sqrt(),
        reachable_pairs: distances.len(),
        sampled_pairs: pairs,
    }
}

/// Full single-source BFS distances (`u32::MAX` = unreachable), capped at
/// `max_depth`.
pub fn bfs_distances(g: &KnowledgeGraph, src: NodeId, max_depth: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.num_nodes()];
    dist[src.index()] = 0;
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        if d >= max_depth {
            continue;
        }
        for a in g.neighbors(v) {
            let t = a.target();
            if dist[t.index()] == u32::MAX {
                dist[t.index()] = d + 1;
                queue.push_back(t);
            }
        }
    }
    dist
}

/// Average-distance estimation sharing BFS sweeps across pairs: `sources`
/// full BFS runs, each scored against `targets_per_source` random targets.
/// Equivalent to sampling `sources × targets_per_source` pairs (the
/// paper's 10,000) at a fraction of the cost on large graphs.
pub fn estimate_average_distance_sources(
    g: &KnowledgeGraph,
    sources: usize,
    targets_per_source: usize,
    max_depth: u32,
    seed: u64,
) -> DistanceEstimate {
    let n = g.num_nodes();
    if n < 2 || sources == 0 || targets_per_source == 0 {
        return DistanceEstimate {
            mean: 0.0,
            deviation: 0.0,
            reachable_pairs: 0,
            sampled_pairs: 0,
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut distances: Vec<u32> = Vec::with_capacity(sources * targets_per_source);
    for _ in 0..sources {
        let s = NodeId::from_index(rng.random_range(0..n));
        let dist = bfs_distances(g, s, max_depth);
        for _ in 0..targets_per_source {
            let t = rng.random_range(0..n);
            if t != s.index() && dist[t] != u32::MAX {
                distances.push(dist[t]);
            }
        }
    }
    let sampled = sources * targets_per_source;
    if distances.is_empty() {
        return DistanceEstimate {
            mean: 0.0,
            deviation: 0.0,
            reachable_pairs: 0,
            sampled_pairs: sampled,
        };
    }
    let mean = distances.iter().map(|&d| d as f64).sum::<f64>() / distances.len() as f64;
    let var = distances
        .iter()
        .map(|&d| {
            let x = d as f64 - mean;
            x * x
        })
        .sum::<f64>()
        / distances.len() as f64;
    DistanceEstimate {
        mean,
        deviation: var.sqrt(),
        reachable_pairs: distances.len(),
        sampled_pairs: sampled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path_graph(len: usize) -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let nodes: Vec<_> =
            (0..len).map(|i| b.add_node(&format!("n{i}"), &format!("node {i}"))).collect();
        for w in nodes.windows(2) {
            b.add_edge(w[0], w[1], "next");
        }
        b.build()
    }

    #[test]
    fn bfs_distance_on_a_path() {
        let g = path_graph(6);
        let a = g.find_node_by_key("n0").unwrap();
        let e = g.find_node_by_key("n5").unwrap();
        assert_eq!(bfs_distance(&g, a, e, 16), Some(5));
        assert_eq!(bfs_distance(&g, a, a, 16), Some(0));
        // traversal is bi-directed even though edges point one way
        assert_eq!(bfs_distance(&g, e, a, 16), Some(5));
    }

    #[test]
    fn bfs_distance_respects_max_depth() {
        let g = path_graph(6);
        let a = g.find_node_by_key("n0").unwrap();
        let e = g.find_node_by_key("n5").unwrap();
        assert_eq!(bfs_distance(&g, a, e, 4), None);
        assert_eq!(bfs_distance(&g, a, e, 5), Some(5));
    }

    #[test]
    fn disconnected_pair_is_unreachable() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", "a");
        let z = b.add_node("z", "z");
        let g = b.build();
        assert_eq!(bfs_distance(&g, a, z, 10), None);
    }

    #[test]
    fn estimate_is_deterministic_per_seed() {
        let g = path_graph(32);
        let e1 = estimate_average_distance(&g, 100, 64, 7);
        let e2 = estimate_average_distance(&g, 100, 64, 7);
        assert_eq!(e1, e2);
        let e3 = estimate_average_distance(&g, 100, 64, 8);
        // Different seed samples different pairs; the estimate may differ.
        assert_eq!(e3.sampled_pairs, 100);
    }

    #[test]
    fn estimate_on_path_graph_is_positive_with_sane_deviation() {
        let g = path_graph(64);
        let e = estimate_average_distance(&g, 200, 128, 42);
        assert!(e.mean > 1.0);
        assert!(e.mean < 64.0);
        assert!(e.deviation >= 0.0);
        assert_eq!(e.reachable_pairs, 200, "a path graph is fully connected");
    }

    #[test]
    fn degenerate_inputs_produce_zero_estimate() {
        let g = GraphBuilder::new().build();
        let e = estimate_average_distance(&g, 100, 10, 1);
        assert_eq!(e.reachable_pairs, 0);
        assert_eq!(e.mean, 0.0);
    }

    #[test]
    fn bfs_distances_match_pairwise_bfs() {
        let g = path_graph(10);
        let src = g.find_node_by_key("n3").unwrap();
        let dist = bfs_distances(&g, src, 64);
        for v in g.nodes() {
            assert_eq!(
                bfs_distance(&g, src, v, 64),
                (dist[v.index()] != u32::MAX).then_some(dist[v.index()]),
                "distance to {v}"
            );
        }
    }

    #[test]
    fn multi_source_estimate_agrees_with_pairwise_on_a_path() {
        let g = path_graph(40);
        let pairwise = estimate_average_distance(&g, 300, 64, 11);
        let multi = estimate_average_distance_sources(&g, 20, 15, 64, 11);
        // Both estimate the same expectation (~len/3); allow sampling noise.
        assert!((pairwise.mean - multi.mean).abs() < pairwise.mean * 0.25);
        assert_eq!(multi.sampled_pairs, 300);
    }
}
