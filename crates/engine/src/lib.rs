//! # wikisearch-engine — the end-to-end WikiSearch facade
//!
//! The paper ships its algorithm as an online service ("WikiSearch") over
//! the Wikidata KB. This crate is that service's engine layer: it owns the
//! graph, the inverted keyword index, the dataset's sampled average
//! distance, and a pluggable search backend, and turns a raw keyword
//! string into ranked, renderable answer graphs.
//!
//! ```
//! use kgraph::GraphBuilder;
//! use wikisearch_engine::WikiSearch;
//!
//! let mut b = GraphBuilder::new();
//! let x = b.add_node("Q1", "XML");
//! let q = b.add_node("Q2", "query language");
//! let s = b.add_node("Q3", "SQL");
//! b.add_edge(x, q, "related to");
//! b.add_edge(s, q, "instance of");
//!
//! let ws = WikiSearch::build(b.build());
//! let result = ws.search("xml sql");
//! assert_eq!(result.answers.len(), 1);
//! println!("{}", ws.render_answer(&result.answers[0]));
//! ```

#![warn(missing_docs)]

pub mod render;
pub mod snapshot;

pub use snapshot::{compile_snapshot, SnapshotInfo, SEC_AVG_DISTANCE};

use central::engine::{
    DynParEngine, GpuStyleEngine, KeywordSearchEngine, ParCpuEngine, SearchOutcome, SearchStats,
    SeqEngine,
};
use central::remote::BreakerState;
use central::{
    BatchConfig, BatchExecutor, BatchRequest, BatchStats, Batcher, CacheOutcome, CacheStats,
    CentralGraph, LaneOutcome, MetricsRegistry, MetricsSnapshot, PhaseProfile, QueryBudget,
    QueryIdGen, QueryKey, QueryTrace, RemoteOptions, RemoteShardedSearch, RemoteStats, SearchError,
    SearchParams, SessionPool, ShardAddrs, ShardBackend, ShardedSearch, ShardedStats, Telemetry,
    TraceLevel, MAX_BATCH_LANES,
};
use kgraph::KnowledgeGraph;
use std::sync::Arc;
use std::time::{Duration, Instant};
use textindex::{InvertedIndex, ParsedQuery};

/// Periodic telemetry samples the engine's ring retains by default
/// (~5 minutes of history at a 1-sample-per-second cadence).
pub const DEFAULT_TELEMETRY_SAMPLES: usize = 300;

/// Recently answered queries the engine remembers for `TOP`'s
/// slowest-recent view.
pub const DEFAULT_RECENT_QUERIES: usize = 64;

/// Which backend executes searches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Single-threaded reference engine.
    Sequential,
    /// Lock-free coarse-grained CPU engine with this many threads.
    ParCpu(usize),
    /// GPU-kernel-structured engine with this many threads.
    GpuStyle(usize),
    /// Lock-based dynamic-memory baseline with this many threads.
    DynPar(usize),
}

impl Backend {
    /// Thread count used when a backend spec names no explicit count
    /// (matches the CLI's `--threads` default).
    pub const DEFAULT_THREADS: usize = 4;

    /// Parse a backend name (`seq` | `cpu` | `gpu` | `dyn`) with an
    /// explicit thread count for the parallel engines. This is the one
    /// place backend strings are interpreted — the CLI's `search` and
    /// `serve` both route through it.
    pub fn parse(name: &str, threads: usize) -> Result<Backend, String> {
        if threads == 0 {
            return Err(format!("backend {name:?}: thread count must be >= 1"));
        }
        match name {
            "seq" => Ok(Backend::Sequential),
            "cpu" => Ok(Backend::ParCpu(threads)),
            "gpu" => Ok(Backend::GpuStyle(threads)),
            "dyn" => Ok(Backend::DynPar(threads)),
            other => Err(format!("unknown backend {other:?} (expected seq|cpu|gpu|dyn)")),
        }
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    /// Parse a `name[:threads]` spec: `"seq"`, `"cpu"`, `"gpu:8"`,
    /// `"dyn:2"`, … Without an explicit count, parallel backends get
    /// [`Backend::DEFAULT_THREADS`].
    fn from_str(spec: &str) -> Result<Backend, String> {
        match spec.split_once(':') {
            Some((name, t)) => {
                let threads = t
                    .parse::<usize>()
                    .map_err(|_| format!("backend {spec:?}: cannot parse thread count {t:?}"))?;
                Backend::parse(name, threads)
            }
            None => Backend::parse(spec, Backend::DEFAULT_THREADS),
        }
    }
}

/// One search's result: the parsed query, the ranked answers, and timing.
#[derive(Clone, Debug)]
pub struct WikiSearchResult {
    /// Fleet-wide query ID of this search. Assigned at admission (or
    /// passed in by the serving layer via the `_tagged` entry points) and
    /// carried on the trace, the slow-query log, and every wire response,
    /// so one query can be followed across layers and processes.
    pub qid: u64,
    /// The analyzed query (matched groups + unmatched terms).
    pub query: ParsedQuery,
    /// Ranked Central Graph answers, best first.
    pub answers: Vec<CentralGraph>,
    /// Per-phase timings of the search.
    pub profile: PhaseProfile,
    /// Average keyword frequency of the query (Table V's `kwf`).
    pub kwf: f64,
    /// Search statistics, including the per-level progression trace.
    pub stats: SearchStats,
    /// Rich per-query execution trace, present only when the request
    /// asked for tracing (`params.trace`, or [`WikiSearch::explain`]).
    pub trace: Option<Box<QueryTrace>>,
    /// `true` iff this answer was computed with at least one remote shard
    /// unavailable ([`WikiSearch::set_remote_shards`] with
    /// [`RemoteOptions::degraded_answers`]): it is best-effort, never
    /// silently wrong — always `false` outside remote serving.
    pub degraded: bool,
}

/// The WikiSearch engine: graph + index + backend + defaults.
///
/// The engine is `Send + Sync` and every search path takes `&self`, so
/// one `Arc<WikiSearch>` serves any number of threads concurrently (the
/// CLI's `serve --workers N` does exactly that). Warm per-query state
/// lives in a [`SessionPool`]: each search checks a [`central::SearchSession`]
/// out of the pool, so concurrent queries run on distinct sessions
/// without contending on a process-wide lock, while a sequential caller
/// keeps hitting the same warm session — the first query pays the
/// `n × q` state allocation, every later query re-arms it with a single
/// epoch bump (see `central::session` and `central::pool`). Sessions are
/// engine-agnostic, so swapping backends keeps the warm state.
///
/// An optional **result cache** ([`WikiSearch::set_cache_capacity`])
/// sits in front of the pool: repeated queries — same analyzed keyword
/// set under the same parameters, regardless of word order, case,
/// stopwords or duplicates — are answered from a sharded LRU cache
/// without running the two-stage search at all (see `central::cache`).
/// Cached answers are observably identical to freshly computed ones;
/// the differential tests in `tests/tests/cache_equivalence.rs` enforce
/// this across all four backends.
pub struct WikiSearch {
    graph: KnowledgeGraph,
    index: InvertedIndex,
    params: SearchParams,
    backend: Box<dyn KeywordSearchEngine + Send + Sync>,
    /// Which [`Backend`] `backend` was built from, kept so the sharded
    /// coordinator can be rebuilt with the same kernels on
    /// [`WikiSearch::set_backend`]/[`WikiSearch::set_shards`].
    backend_kind: Backend,
    sessions: SessionPool,
    /// When `Some`, searches scatter-gather over this in-process shard
    /// set ([`central::shard`]) instead of the monolithic `backend`;
    /// answers are byte-identical either way.
    sharded: Option<ShardedSearch>,
    cache: Option<ResultCache>,
    /// When `Some`, cache-missing searches flow through the micro-batcher
    /// ([`central::batch`]): queries arriving within the window fuse into
    /// one multi-query sweep. Answers are byte-identical either way; only
    /// the trace's `batch_id`/`co_batched` annotations reveal the fusion.
    batching: Option<BatchRuntime>,
    /// When `Some`, searches are driven across a fleet of out-of-process
    /// shard workers ([`central::remote`]) instead of any in-process
    /// executor. Takes precedence over `sharded` and `batching` (the
    /// serving layer rejects those combinations at configuration time).
    remote: Option<RemoteShardedSearch>,
    /// Rebuild recipe for `remote` — shard count, address source and
    /// policy knobs — kept so [`WikiSearch::set_backend`] can rebuild the
    /// coordinator with the new kernels against the same fleet.
    remote_config: Option<(usize, Arc<dyn ShardAddrs>, RemoteOptions)>,
    metrics: MetricsRegistry,
    /// Fleet-wide query-ID allocator: every search through this engine
    /// gets a qid, whether the serving layer tagged it or not.
    qids: QueryIdGen,
    /// Telemetry hub: the windowed sample ring (fed by the serving
    /// layer's sampler thread), the recent-query ring, and the in-flight
    /// gauge (maintained here, around every search path).
    telemetry: Telemetry,
    /// Serializes [`Telemetry::note_query`]: the recent-query ring is
    /// single-writer, and searches complete on arbitrary threads.
    recent_note: std::sync::Mutex<()>,
}

/// The facade's batching layer: the window-bounded collector plus the
/// executor that runs each closed batch as one fused sweep (or, sharded,
/// through the scatter-gather coordinator).
struct BatchRuntime {
    batcher: Batcher,
    executor: BatchExecutor,
}

/// The engine's result cache: normalized-query + params key, `Arc`-shared
/// payloads so a hit clones a pointer.
type ResultCache = central::ShardedLruCache<QueryKey, Arc<CachedSearch>>;

/// What a cache entry stores: everything a [`WikiSearchResult`] needs
/// except the [`ParsedQuery`], which is re-derived per request so the
/// response always reflects the *request's* raw string (its word order,
/// its unmatched-term order), never the string that happened to populate
/// the cache.
///
/// Answers are stored in the orientation of the populating query;
/// `group_terms` records that orientation so a hit from a reordered
/// near-duplicate can permute the per-keyword fields back into the
/// request's keyword order (see [`reorient_answers`]).
struct CachedSearch {
    /// Fleet-wide qid of the search that populated this entry, so a
    /// traced hit can name its provenance (`cache_source_qid`).
    qid: u64,
    /// Matched keyword terms in the populating query's group order.
    group_terms: Vec<String>,
    answers: Vec<CentralGraph>,
    stats: SearchStats,
    /// Per-phase timings of the search that populated the entry. A hit
    /// returns this profile unchanged: it documents what the answer
    /// *cost to compute*, while the serving layer's own wall-clock
    /// captures what the hit cost to serve.
    profile: PhaseProfile,
}

impl WikiSearch {
    /// Build over `graph` with the default (sequential) backend, Table III
    /// default parameters, and an average distance sampled from the graph
    /// itself (200 pairs — callers with a known `A` can override via
    /// [`WikiSearch::set_params`]).
    pub fn build(graph: KnowledgeGraph) -> Self {
        Self::build_with(graph, Backend::Sequential)
    }

    /// Build with an explicit backend.
    pub fn build_with(graph: KnowledgeGraph, backend: Backend) -> Self {
        let index = InvertedIndex::build(&graph);
        let a = snapshot::sampled_average_distance(&graph);
        let params = SearchParams::default().with_average_distance(a);
        Self::assemble(graph, index, params, backend)
    }

    /// The one true constructor: every build path (heap build, snapshot
    /// open) funnels through here once its graph, index and parameters
    /// exist, so the session pool, cache, metrics and shard wiring can
    /// never diverge between backings.
    fn assemble(
        graph: KnowledgeGraph,
        index: InvertedIndex,
        params: SearchParams,
        backend: Backend,
    ) -> Self {
        WikiSearch {
            graph,
            index,
            params,
            backend: make_backend(backend),
            backend_kind: backend,
            sessions: SessionPool::new(),
            sharded: None,
            cache: None,
            batching: None,
            remote: None,
            remote_config: None,
            metrics: MetricsRegistry::new(),
            qids: QueryIdGen::new(),
            telemetry: Telemetry::new(0, DEFAULT_TELEMETRY_SAMPLES, DEFAULT_RECENT_QUERIES),
            recent_note: std::sync::Mutex::new(()),
        }
    }

    /// Open a compiled `.wsnap` snapshot ([`compile_snapshot`]) with
    /// zero-copy columns: the file is memory-mapped read-only, the header
    /// page is validated, and the graph, inverted index and stored
    /// average distance are assembled straight over the mapping — no
    /// deserialization, no index rebuild, no distance re-sampling.
    /// Answers are byte-identical to a heap-built engine over the same
    /// graph.
    pub fn open_snapshot(path: &std::path::Path, backend: Backend) -> Result<Self, String> {
        let (graph, index, params) = snapshot::open_parts(path)?;
        Ok(Self::assemble(graph, index, params, backend))
    }

    /// [`WikiSearch::open_snapshot`] plus in-process sharding
    /// ([`WikiSearch::set_shards`]). The shard builder copies the
    /// sub-graphs it cuts, so shards are heap-owned even when the source
    /// columns are mapped.
    pub fn open_snapshot_sharded(
        path: &std::path::Path,
        backend: Backend,
        shards: usize,
    ) -> Result<Self, String> {
        let mut ws = Self::open_snapshot(path, backend)?;
        ws.set_shards(shards);
        Ok(ws)
    }

    /// `true` when the engine's graph columns point into a memory-mapped
    /// snapshot rather than the heap.
    pub fn is_memory_mapped(&self) -> bool {
        self.graph.is_memory_mapped()
    }

    /// Build with an explicit backend over an in-process shard set:
    /// the graph is edge-cut into `shards` sub-graphs and every search
    /// scatter-gathers across them (see [`central::shard`]). `shards <= 1`
    /// is the monolithic engine — there is nothing to exchange, so the
    /// single-shard configuration *is* the unsharded one. Answers, stats
    /// and traces are byte-identical to [`WikiSearch::build_with`]; the
    /// shard-invariance suite pins that.
    pub fn open_sharded(graph: KnowledgeGraph, backend: Backend, shards: usize) -> Self {
        let mut ws = Self::build_with(graph, backend);
        ws.set_shards(shards);
        ws
    }

    /// Re-partition the engine across `shards` in-process shards
    /// (`<= 1` returns to the monolithic path). Existing cache entries
    /// survive: sharded and unsharded searches produce identical answers.
    pub fn set_shards(&mut self, shards: usize) {
        self.sharded = (shards > 1)
            .then(|| ShardedSearch::new(&self.graph, shard_backend(self.backend_kind), shards));
        self.rebuild_batch_executor();
    }

    /// Enable micro-batched execution: cache-missing queries arriving
    /// within `window` of each other (up to `max_batch`, clamped to
    /// `1..=`[`MAX_BATCH_LANES`]) fuse into one multi-query sweep over a
    /// shared frontier pass (see [`central::batch`]). A zero `window`
    /// disables batching entirely and restores the exact unbatched path.
    /// Answers, stats and traces stay byte-identical either way — only
    /// the trace's `batch_id`/`co_batched` fields reveal the fusion.
    pub fn set_batching(&mut self, window: Duration, max_batch: usize) {
        self.batching = (!window.is_zero() && max_batch > 0).then(|| BatchRuntime {
            batcher: Batcher::new(BatchConfig::new(window, max_batch.min(MAX_BATCH_LANES))),
            executor: BatchExecutor::new(shard_backend(self.backend_kind)),
        });
    }

    /// A snapshot of the batching-layer counters, `None` while batching
    /// is disabled.
    pub fn batch_stats(&self) -> Option<BatchStats> {
        self.batching.as_ref().map(|b| b.batcher.stats())
    }

    /// Close any open collection window immediately and keep future
    /// windows from waiting (server drain): pending submitters run at
    /// whatever batch size has accumulated.
    pub fn flush_batches(&self) {
        if let Some(batching) = &self.batching {
            batching.batcher.flush();
        }
    }

    /// Rebuild the batch executor after a backend or shard change so its
    /// kernels keep matching the solo path (the batcher and its counters
    /// survive — collection policy is backend-independent).
    fn rebuild_batch_executor(&mut self) {
        if let Some(batching) = &mut self.batching {
            batching.executor = BatchExecutor::new(shard_backend(self.backend_kind));
        }
    }

    /// Swap the search backend. The result cache (if any) survives the
    /// swap: all backends return identical answers for identical
    /// `(query, params)` — the workspace's central property — so entries
    /// computed by one engine are valid answers for every other. On a
    /// sharded engine the shard set is rebuilt with the new backend's
    /// kernels (same partition — the plan seed is fixed); on a remote
    /// engine the coordinator is rebuilt against the same worker fleet.
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = make_backend(backend);
        self.backend_kind = backend;
        if let Some(sharded) = &self.sharded {
            let shards = sharded.num_shards();
            self.sharded = Some(ShardedSearch::new(&self.graph, shard_backend(backend), shards));
        }
        if let Some((shards, addrs, opts)) = &self.remote_config {
            self.remote = Some(RemoteShardedSearch::new(
                &self.graph,
                shard_backend(backend),
                *shards,
                Arc::clone(addrs),
                *opts,
            ));
        }
        self.rebuild_batch_executor();
    }

    /// Drive every search across a fleet of out-of-process shard workers
    /// ([`central::remote`]): each worker owns one partition of the same
    /// deterministic edge-cut plan the in-process sharded path uses, and
    /// answers stay byte-identical to [`WikiSearch::set_shards`] while
    /// every worker is healthy (the remote-equivalence suite pins this).
    /// `addrs` names the workers — a [`central::StaticAddrs`] list for an
    /// externally managed fleet, or a supervisor's live address table —
    /// and `opts` sets the retry/backoff, circuit-breaker, heartbeat and
    /// degraded-answer policy. Incompatible with micro-batching and
    /// in-process sharding; the serving layer rejects those flag
    /// combinations, and this facade gives `remote` precedence.
    pub fn set_remote_shards(
        &mut self,
        shards: usize,
        addrs: Arc<dyn ShardAddrs>,
        opts: RemoteOptions,
    ) {
        self.remote = Some(RemoteShardedSearch::new(
            &self.graph,
            shard_backend(self.backend_kind),
            shards,
            Arc::clone(&addrs),
            opts,
        ));
        self.remote_config = Some((shards, addrs, opts));
    }

    /// Return to in-process execution: drop the remote coordinator (and
    /// its heartbeat thread) and forget the rebuild recipe.
    pub fn clear_remote_shards(&mut self) {
        self.remote = None;
        self.remote_config = None;
    }

    /// Number of remote shard workers searches are driven across, `None`
    /// outside remote serving.
    pub fn num_remote_shards(&self) -> Option<usize> {
        self.remote.as_ref().map(RemoteShardedSearch::num_shards)
    }

    /// Counters of the remote coordinator (RPCs, retries, breaker flips,
    /// degraded answers, RPC latency), `None` outside remote serving.
    pub fn remote_stats(&self) -> Option<RemoteStats> {
        self.remote.as_ref().map(RemoteShardedSearch::stats)
    }

    /// Live circuit-breaker state per remote shard, `None` outside remote
    /// serving.
    pub fn remote_breaker_states(&self) -> Option<Vec<BreakerState>> {
        self.remote.as_ref().map(RemoteShardedSearch::breaker_states)
    }

    /// Number of in-process shards searches scatter over, `None` on the
    /// monolithic path.
    pub fn num_shards(&self) -> Option<usize> {
        self.sharded.as_ref().map(ShardedSearch::num_shards)
    }

    /// Counters of the sharded coordinator (rounds, boundary
    /// notifications, per-shard pools), `None` on the monolithic path.
    pub fn shard_stats(&self) -> Option<ShardedStats> {
        self.sharded.as_ref().map(ShardedSearch::stats)
    }

    /// Enable (or, with `0`, disable) the sharded result cache with a
    /// byte budget of `bytes` over the default shard count. Repeated
    /// queries — equal after tokenization, stopword filtering, stemming
    /// and reordering, under the same [`SearchParams`] — are then
    /// answered from memory without touching the session pool. See
    /// [`central::cache`] for the key scheme and eviction policy.
    pub fn set_cache_capacity(&mut self, bytes: usize) {
        self.set_cache_config(bytes, central::cache::DEFAULT_SHARDS);
    }

    /// [`WikiSearch::set_cache_capacity`] with an explicit shard count
    /// (tests use one or two shards to force eviction churn).
    pub fn set_cache_config(&mut self, bytes: usize, shards: usize) {
        self.cache = if bytes == 0 {
            None
        } else {
            Some(central::ShardedLruCache::with_shards(bytes, shards))
        };
    }

    /// A snapshot of the result-cache counters, `None` while the cache
    /// is disabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Override the default search parameters (α, top-k, λ, `A`, …).
    pub fn set_params(&mut self, params: SearchParams) {
        self.params = params;
    }

    /// Current default parameters.
    pub fn params(&self) -> &SearchParams {
        &self.params
    }

    /// The underlying graph.
    pub fn graph(&self) -> &KnowledgeGraph {
        &self.graph
    }

    /// The keyword index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Search with the engine's default parameters.
    pub fn search(&self, raw_query: &str) -> WikiSearchResult {
        self.search_with_params(raw_query, &self.params)
    }

    /// Search with explicit per-request parameters (e.g. a different α or
    /// top-k) without touching the engine's defaults — callers holding
    /// only `&self` (a shared `Arc<WikiSearch>`, a server worker) override
    /// params per query through here.
    ///
    /// With the result cache enabled ([`WikiSearch::set_cache_capacity`])
    /// the cache is consulted *before* a session is checked out: a hit
    /// returns the stored answers (re-oriented to this request's keyword
    /// order when the raw strings differ only in word order) with a
    /// freshly parsed [`ParsedQuery`], and is observably identical to an
    /// uncached search except for timing. A miss — and every query while
    /// the cache is disabled — runs through the session pool: the warm
    /// path for a sequential caller, a distinct session per query for
    /// concurrent ones. Queries that normalize to no keywords bypass the
    /// cache entirely and keep the engine's empty-query behaviour.
    pub fn search_with_params(&self, raw_query: &str, params: &SearchParams) -> WikiSearchResult {
        self.try_search_with_params(raw_query, params, &QueryBudget::unlimited())
            .expect("an unlimited budget cannot be exceeded")
    }

    /// Budgeted search with the engine's default parameters — see
    /// [`WikiSearch::try_search_with_params`].
    pub fn try_search(
        &self,
        raw_query: &str,
        budget: &QueryBudget,
    ) -> Result<WikiSearchResult, SearchError> {
        self.try_search_with_params(raw_query, &self.params, budget)
    }

    /// Budgeted search with explicit per-request parameters. This is the
    /// fallible spine every search path routes through.
    ///
    /// A tripped budget returns `Err` with *no* partial answers, and a
    /// failed search **never populates the result cache** — a later retry
    /// of the same query (with a laxer budget or none) computes the full
    /// answer and caches that. Cache *hits* are served before the budget
    /// is even armed: an answer that is already in memory costs no search
    /// work, so it is never charged as if it did. The pooled session a
    /// failed search used checks in normally and is reused — epoch
    /// stamping re-arms its state on the next query (only a *panic*
    /// quarantines a session; see [`central::pool`]).
    pub fn try_search_with_params(
        &self,
        raw_query: &str,
        params: &SearchParams,
        budget: &QueryBudget,
    ) -> Result<WikiSearchResult, SearchError> {
        self.run_search(raw_query, params, budget, true, None)
    }

    /// [`WikiSearch::try_search_with_params`] under a caller-assigned
    /// fleet-wide query ID (the serving layer allocates qids at request
    /// admission via [`WikiSearch::issue_query_id`] so error documents
    /// can carry them too).
    pub fn try_search_with_params_tagged(
        &self,
        raw_query: &str,
        params: &SearchParams,
        budget: &QueryBudget,
        qid: u64,
    ) -> Result<WikiSearchResult, SearchError> {
        self.run_search(raw_query, params, budget, true, Some(qid))
    }

    /// Run `raw_query` with full tracing and the result cache bypassed,
    /// so the returned [`WikiSearchResult::trace`] always describes a
    /// *live* search — the substrate of the server's `EXPLAIN` verb.
    /// Uses the engine's default parameters plus [`TraceLevel::Full`].
    pub fn explain(
        &self,
        raw_query: &str,
        budget: &QueryBudget,
    ) -> Result<WikiSearchResult, SearchError> {
        self.explain_with_params(raw_query, &self.params, budget)
    }

    /// [`WikiSearch::explain`] with explicit base parameters (the trace
    /// level is forced to [`TraceLevel::Full`] regardless).
    pub fn explain_with_params(
        &self,
        raw_query: &str,
        params: &SearchParams,
        budget: &QueryBudget,
    ) -> Result<WikiSearchResult, SearchError> {
        let params = params.clone().with_trace(TraceLevel::Full);
        self.run_search(raw_query, &params, budget, false, None)
    }

    /// [`WikiSearch::explain_with_params`] under a caller-assigned
    /// fleet-wide query ID.
    pub fn explain_with_params_tagged(
        &self,
        raw_query: &str,
        params: &SearchParams,
        budget: &QueryBudget,
        qid: u64,
    ) -> Result<WikiSearchResult, SearchError> {
        let params = params.clone().with_trace(TraceLevel::Full);
        self.run_search(raw_query, &params, budget, false, Some(qid))
    }

    /// The one fallible spine: cache consultation (unless bypassed),
    /// session checkout, backend dispatch, cache population, and metrics
    /// accounting around all of it.
    fn run_search(
        &self,
        raw_query: &str,
        params: &SearchParams,
        budget: &QueryBudget,
        use_cache: bool,
        qid: Option<u64>,
    ) -> Result<WikiSearchResult, SearchError> {
        let started = Instant::now();
        let qid = qid.unwrap_or_else(|| self.qids.next());
        let _flight = self.telemetry.in_flight().enter();
        self.metrics.queries.inc();
        let query = ParsedQuery::parse(&self.index, raw_query);
        let kwf = query.avg_keyword_frequency();
        let key = match &self.cache {
            Some(cache) if use_cache && !query.is_empty() => {
                let key = QueryKey::new(textindex::normalize_query(raw_query), params);
                if let Some(entry) = cache.get(&key) {
                    if let Some(answers) = reorient_answers(&entry, &query) {
                        self.metrics.cache_hits.inc();
                        // A traced hit reports "cache" as its engine: no
                        // search ran, so there are no levels to show.
                        let trace = params.trace.enabled().then(|| {
                            Box::new(QueryTrace {
                                engine: "cache".to_string(),
                                keywords: query.num_keywords(),
                                cache: Some(CacheOutcome::Hit),
                                qid: Some(qid),
                                // Provenance: the qid of the search that
                                // computed the answer being served.
                                cache_source_qid: Some(entry.qid),
                                ..QueryTrace::default()
                            })
                        });
                        self.metrics.latency_us.record(elapsed_us(started));
                        self.note_recent(qid, started);
                        return Ok(WikiSearchResult {
                            qid,
                            query,
                            answers,
                            profile: entry.profile,
                            kwf,
                            stats: entry.stats.clone(),
                            trace,
                            degraded: false,
                        });
                    }
                }
                self.metrics.cache_misses.inc();
                Some(key)
            }
            _ => None,
        };
        let mut degraded = false;
        let result = if let Some(remote) = &self.remote {
            // Remote fleet path: the coordinator scatter-gathers over
            // out-of-process workers and reports whether any shard had to
            // be skipped; a degraded answer is surfaced with its marker
            // and never enters the result cache below.
            remote
                .try_search_tagged(&self.graph, &query, params, budget, Some(qid))
                .map(|r| {
                    degraded = r.degraded;
                    let mut outcome = r.outcome;
                    if let Some(trace) = outcome.trace.as_deref_mut() {
                        trace.cache = Some(if key.is_some() {
                            CacheOutcome::Miss
                        } else {
                            CacheOutcome::Bypass
                        });
                    }
                    outcome
                })
        } else if let (Some(batching), true) = (&self.batching, use_cache) {
            // Micro-batched path: hand the query to the collector; the
            // submitter that ends up leading runs the whole batch as one
            // fused sweep (or lane-by-lane through the shard coordinator)
            // and demuxes each lane's outcome back. EXPLAIN bypasses
            // batching along with the cache (`use_cache == false`), so
            // its trace stays a live unbatched one.
            let req =
                BatchRequest { query: query.clone(), params: params.clone(), budget: *budget };
            let outcome = batching.batcher.submit(req, |reqs| match &self.sharded {
                Some(sharded) => batching.executor.run_sharded_batch(sharded, &self.graph, &reqs),
                None => batching.executor.run_batch(&self.graph, &reqs),
            });
            match outcome {
                LaneOutcome::Done(result) => result.map(|mut outcome| {
                    if let Some(trace) = outcome.trace.as_deref_mut() {
                        trace.cache = Some(if key.is_some() {
                            CacheOutcome::Miss
                        } else {
                            CacheOutcome::Bypass
                        });
                    }
                    outcome
                }),
                // Re-raise a lane panic on the submitter's thread: the
                // serving layer's catch_unwind accounting sees exactly
                // what the unbatched path would have thrown at it.
                LaneOutcome::Panicked(payload) => std::panic::resume_unwind(payload),
            }
        } else if let Some(sharded) = &self.sharded {
            // Sharded scatter-gather path: the coordinator owns one
            // session per shard in its own pools, so the facade pool is
            // not consulted (its counters stay zero; `shard_stats` has
            // the per-shard ones). Traces carry no session identity —
            // there is no single session to name.
            sharded.try_search(&self.graph, &query, params, budget).map(|mut outcome| {
                if let Some(trace) = outcome.trace.as_deref_mut() {
                    trace.cache = Some(if key.is_some() {
                        CacheOutcome::Miss
                    } else {
                        CacheOutcome::Bypass
                    });
                }
                outcome
            })
        } else {
            let mut session = self.sessions.checkout();
            self.backend
                .try_search_session(&mut session, &self.graph, &query, params, budget)
                .map(|mut outcome| {
                    if let Some(trace) = outcome.trace.as_deref_mut() {
                        trace.session_id = Some(session.session_id());
                        // queries_run was already bumped for this query;
                        // report the session's warmth *entering* it.
                        trace.session_queries = Some(session.queries_run().saturating_sub(1));
                        trace.cache = Some(if key.is_some() {
                            CacheOutcome::Miss
                        } else {
                            CacheOutcome::Bypass
                        });
                    }
                    outcome
                })
        };
        let outcome = match result {
            Ok(outcome) => outcome,
            Err(e) => {
                match e.kind() {
                    "deadline_exceeded" => self.metrics.deadline_exceeded.inc(),
                    "budget_exhausted" => self.metrics.budget_exhausted.inc(),
                    "shard_unavailable" => self.metrics.shard_unavailable.inc(),
                    _ => {}
                }
                // Failed queries count on the recent ring too — a
                // deadline-exceeded query is slow by definition.
                self.note_recent(qid, started);
                return Err(e);
            }
        };
        let SearchOutcome { answers, profile, stats, mut trace } = outcome;
        // Stamp the qid on every trace uniformly, whichever path computed
        // it (the remote path already carries it from the wire; the value
        // is identical).
        if let Some(t) = trace.as_deref_mut() {
            t.qid = Some(qid);
        }
        // A degraded answer is best-effort: caching it would let a later
        // healthy-fleet query serve it as authoritative.
        if let (Some(cache), Some(key), false) = (&self.cache, key, degraded) {
            let entry = CachedSearch {
                qid,
                group_terms: query.groups.iter().map(|g| g.term.clone()).collect(),
                answers: answers.clone(),
                stats: stats.clone(),
                profile,
            };
            let bytes = key.approx_bytes() + approx_entry_bytes(&entry);
            cache.insert(key, Arc::new(entry), bytes);
        }
        // Expansion-work estimate from the always-collected level trace
        // (Σ frontier × q — the units Algorithm 2 charges), so the
        // histogram costs no hot-path atomics on untraced queries.
        let q = query.num_keywords() as u64;
        let frontier_sum: u64 = stats.trace.iter().map(|t| t.frontier as u64).sum();
        self.metrics.expansions.record(frontier_sum * q);
        self.metrics.latency_us.record(elapsed_us(started));
        self.note_recent(qid, started);
        Ok(WikiSearchResult { qid, query, answers, profile, kwf, stats, trace, degraded })
    }

    /// Backwards-compatible alias of [`WikiSearch::search_with_params`].
    pub fn search_with(&self, raw_query: &str, params: &SearchParams) -> WikiSearchResult {
        self.search_with_params(raw_query, params)
    }

    /// Number of queries answered through the engine's session pool
    /// (checked-in sessions; a query in flight counts once it completes).
    pub fn session_queries_run(&self) -> u64 {
        self.sessions.queries_run()
    }

    /// The engine's session pool (diagnostics: idle/created/in-flight
    /// session counts).
    pub fn session_pool(&self) -> &SessionPool {
        &self.sessions
    }

    /// The engine's live serving-metrics registry (see
    /// [`central::metrics`]). Counters and histograms accumulate across
    /// every search path — cache hits, computed searches, and failures.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A plain-data snapshot of the metrics registry — what the server's
    /// `STATS` and `METRICS` verbs are rendered from.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Allocate the next fleet-wide query ID. The serving layer calls
    /// this at request admission so even a request that fails before
    /// reaching the engine (oversized line, bad verb payload) has a qid
    /// to report; the ID is then passed down via the `_tagged` search
    /// entry points. Searches that arrive untagged allocate their own.
    pub fn issue_query_id(&self) -> u64 {
        self.qids.next()
    }

    /// Total query IDs issued so far (0 before the first).
    pub fn query_ids_issued(&self) -> u64 {
        self.qids.last()
    }

    /// The engine's telemetry hub: the windowed sample ring, the
    /// recent-query ring, and the in-flight gauge. The serving layer's
    /// sampler thread publishes periodic [`central::TelemetrySample`]s
    /// through it; `STATS WINDOW` and `TOP` read it.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Rebuild the telemetry hub with a sampler period of `interval_ms`
    /// (0 disables periodic sampling; the recent-query ring and in-flight
    /// gauge still run) and a ring of `samples` slots.
    pub fn set_telemetry(&mut self, interval_ms: u64, samples: usize) {
        self.telemetry = Telemetry::new(interval_ms, samples, DEFAULT_RECENT_QUERIES);
    }

    /// Note one completed query (answered *or* failed) on the
    /// recent-query ring, serialized for the single-writer ring.
    fn note_recent(&self, qid: u64, started: Instant) {
        let _guard = self.recent_note.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        self.telemetry.note_query(qid, elapsed_us(started));
    }

    /// Parse a query without searching (used by harnesses for kwf stats).
    pub fn parse(&self, raw_query: &str) -> ParsedQuery {
        ParsedQuery::parse(&self.index, raw_query)
    }

    /// Human-readable rendering of one answer graph.
    pub fn render_answer(&self, answer: &CentralGraph) -> String {
        render::render_answer(&self.graph, answer)
    }
}

/// Produce `entry`'s answers in `query`'s keyword order.
///
/// `CentralGraph::keyword_nodes`/`keyword_edges` are indexed by query
/// keyword *in query order*, so an entry populated by `"xml sql"` stores
/// them xml-first. A hit from `"sql xml"` (same normalized key) must
/// return sql-first vectors to be byte-identical to an uncached search —
/// everything else in an answer (nodes, edges, central, depth, score) is
/// a set-shaped or order-free quantity and needs no adjustment. Returns
/// `None` if the stored orientation cannot be mapped onto the request's
/// groups (which would mean the key collided across different keyword
/// sets — impossible while the index is immutable, but a silent wrong
/// answer if it ever happened, so the caller falls back to a full
/// search).
fn reorient_answers(entry: &CachedSearch, query: &ParsedQuery) -> Option<Vec<CentralGraph>> {
    if entry.group_terms.len() != query.groups.len() {
        return None;
    }
    if entry.group_terms.iter().zip(&query.groups).all(|(t, g)| *t == g.term) {
        return Some(entry.answers.clone());
    }
    let perm: Vec<usize> = query
        .groups
        .iter()
        .map(|g| entry.group_terms.iter().position(|t| *t == g.term))
        .collect::<Option<_>>()?;
    entry
        .answers
        .iter()
        .map(|a| {
            if a.keyword_nodes.len() != perm.len() || a.keyword_edges.len() != perm.len() {
                return None;
            }
            Some(CentralGraph {
                central: a.central,
                depth: a.depth,
                nodes: a.nodes.clone(),
                edges: a.edges.clone(),
                keyword_nodes: perm.iter().map(|&j| a.keyword_nodes[j].clone()).collect(),
                keyword_edges: perm.iter().map(|&j| a.keyword_edges[j].clone()).collect(),
                score: a.score,
            })
        })
        .collect()
}

/// Rough heap footprint of one cache entry, for the cache's byte budget.
/// Counts the dominant vectors (node ids, edge pairs, per-keyword sets,
/// the level trace) plus per-allocation overheads; exactness doesn't
/// matter, monotonicity with answer size does.
fn approx_entry_bytes(entry: &CachedSearch) -> usize {
    let node = std::mem::size_of::<kgraph::NodeId>();
    let edge = 2 * node;
    let mut bytes = 128 + entry.group_terms.iter().map(|t| 24 + t.len()).sum::<usize>();
    for a in &entry.answers {
        bytes += 96 + a.nodes.len() * node + a.edges.len() * edge;
        bytes += a.keyword_nodes.iter().map(|v| 24 + v.len() * node).sum::<usize>();
        bytes += a.keyword_edges.iter().map(|v| 24 + v.len() * edge).sum::<usize>();
    }
    bytes + entry.stats.trace.len() * 24
}

/// Microseconds elapsed since `started`, saturated into a `u64`.
fn elapsed_us(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn make_backend(backend: Backend) -> Box<dyn KeywordSearchEngine + Send + Sync> {
    match backend {
        Backend::Sequential => Box::new(SeqEngine::new()),
        Backend::ParCpu(t) => Box::new(ParCpuEngine::new(t)),
        Backend::GpuStyle(t) => Box::new(GpuStyleEngine::new(t)),
        Backend::DynPar(t) => Box::new(DynParEngine::new(t)),
    }
}

/// Map the facade's backend enum onto the shard coordinator's expansion
/// kernels (same names, same thread counts).
fn shard_backend(backend: Backend) -> ShardBackend {
    match backend {
        Backend::Sequential => ShardBackend::Seq,
        Backend::ParCpu(t) => ShardBackend::ParCpu(t),
        Backend::GpuStyle(t) => ShardBackend::GpuStyle(t),
        Backend::DynPar(t) => ShardBackend::DynPar(t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;

    fn small_engine(backend: Backend) -> WikiSearch {
        let mut b = GraphBuilder::new();
        let x = b.add_node("Q1", "XML");
        let q = b.add_node("Q2", "query language");
        let s = b.add_node("Q3", "SQL");
        let r = b.add_node("Q4", "RDF");
        b.add_edge(x, q, "related to");
        b.add_edge(s, q, "instance of");
        b.add_edge(r, q, "instance of");
        WikiSearch::build_with(b.build(), backend)
    }

    #[test]
    fn end_to_end_search_finds_the_hub() {
        let ws = small_engine(Backend::Sequential);
        let result = ws.search("xml sql rdf");
        assert_eq!(result.query.num_keywords(), 3);
        assert!(!result.answers.is_empty());
        let best = &result.answers[0];
        assert_eq!(ws.graph().node_text(best.central), "query language");
        assert!(result.kwf > 0.0);
    }

    #[test]
    fn backends_are_interchangeable() {
        let reference = small_engine(Backend::Sequential).search("xml sql");
        for backend in [Backend::ParCpu(2), Backend::GpuStyle(2), Backend::DynPar(2)] {
            let result = small_engine(backend).search("xml sql");
            assert_eq!(result.answers.len(), reference.answers.len(), "{backend:?}");
            assert_eq!(result.answers[0].nodes, reference.answers[0].nodes, "{backend:?}");
        }
    }

    #[test]
    fn unmatched_terms_are_surfaced() {
        let ws = small_engine(Backend::Sequential);
        let result = ws.search("xml warpdrive");
        assert_eq!(result.query.unmatched, vec!["warpdriv"]); // stemmed form
        assert_eq!(result.query.num_keywords(), 1);
    }

    #[test]
    fn stats_trace_records_level_progression() {
        let ws = small_engine(Backend::Sequential);
        let result = ws.search("xml sql rdf");
        let trace = &result.stats.trace;
        assert!(!trace.is_empty());
        // Levels are consecutive from 0 and the identified counts sum to
        // the candidate count.
        for (i, t) in trace.iter().enumerate() {
            assert_eq!(t.level as usize, i);
            assert!(t.frontier > 0);
        }
        let identified: usize = trace.iter().map(|t| t.identified).sum();
        assert_eq!(identified, result.stats.central_candidates);
    }

    #[test]
    fn repeated_searches_reuse_one_session() {
        let ws = small_engine(Backend::Sequential);
        assert_eq!(ws.session_queries_run(), 0);
        let first = ws.search("xml sql rdf");
        let second = ws.search("xml sql");
        let third = ws.search("xml sql rdf");
        assert_eq!(ws.session_queries_run(), 3);
        // A sequential caller keeps hitting one pooled session.
        assert_eq!(ws.session_pool().sessions_created(), 1);
        assert_eq!(ws.session_pool().idle_sessions(), 1);
        // Warm-path answers match the corresponding fresh ones.
        assert_eq!(first.answers[0].nodes, third.answers[0].nodes);
        assert_eq!(first.answers[0].edges, third.answers[0].edges);
        assert!(!second.answers.is_empty());
    }

    #[test]
    fn wikisearch_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WikiSearch>();
    }

    #[test]
    fn concurrent_searches_agree_with_sequential() {
        use std::sync::Arc;
        let ws = Arc::new(small_engine(Backend::Sequential));
        let reference = ws.search("xml sql rdf");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let ws = Arc::clone(&ws);
                let reference = &reference;
                scope.spawn(move || {
                    for _ in 0..8 {
                        let out = ws.search("xml sql rdf");
                        assert_eq!(out.answers.len(), reference.answers.len());
                        assert_eq!(out.answers[0].nodes, reference.answers[0].nodes);
                        assert_eq!(out.answers[0].edges, reference.answers[0].edges);
                    }
                });
            }
        });
        // 4 workers × 8 queries + the reference, all accounted pool-wide.
        assert_eq!(ws.session_queries_run(), 33);
        let pool = ws.session_pool();
        assert!(pool.sessions_created() <= 5, "pool capped by concurrency peak");
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn per_request_params_need_only_a_shared_reference() {
        let ws = small_engine(Backend::Sequential);
        let deep = ws.search("xml sql rdf");
        let narrow = ws.search_with_params("xml sql rdf", &ws.params().clone().with_top_k(1));
        assert!(narrow.answers.len() <= 1);
        assert!(deep.answers.len() >= narrow.answers.len());
        // The engine's defaults are untouched by the per-request override.
        let again = ws.search("xml sql rdf");
        assert_eq!(again.answers.len(), deep.answers.len());
    }

    #[test]
    fn backend_parse_accepts_the_cli_names() {
        assert_eq!(Backend::parse("seq", 3).unwrap(), Backend::Sequential);
        assert_eq!(Backend::parse("cpu", 3).unwrap(), Backend::ParCpu(3));
        assert_eq!(Backend::parse("gpu", 8).unwrap(), Backend::GpuStyle(8));
        assert_eq!(Backend::parse("dyn", 2).unwrap(), Backend::DynPar(2));
        assert!(Backend::parse("cuda", 2).unwrap_err().contains("unknown backend"));
        assert!(Backend::parse("cpu", 0).unwrap_err().contains(">= 1"));
    }

    #[test]
    fn backend_from_str_parses_specs() {
        assert_eq!("seq".parse::<Backend>().unwrap(), Backend::Sequential);
        assert_eq!("cpu".parse::<Backend>().unwrap(), Backend::ParCpu(Backend::DEFAULT_THREADS));
        assert_eq!("gpu:8".parse::<Backend>().unwrap(), Backend::GpuStyle(8));
        assert_eq!("dyn:2".parse::<Backend>().unwrap(), Backend::DynPar(2));
        assert!("cpu:many".parse::<Backend>().is_err());
        assert!("warp:4".parse::<Backend>().is_err());
    }

    #[test]
    fn backend_swap_keeps_the_warm_session() {
        let mut ws = small_engine(Backend::Sequential);
        let seq = ws.search("xml sql rdf");
        ws.set_backend(Backend::GpuStyle(2));
        let gpu = ws.search("xml sql rdf");
        assert_eq!(ws.session_queries_run(), 2);
        assert_eq!(seq.answers[0].nodes, gpu.answers[0].nodes);
        ws.set_backend(Backend::DynPar(2));
        let dy = ws.search("xml sql rdf");
        assert_eq!(seq.answers[0].nodes, dy.answers[0].nodes);
        assert_eq!(ws.session_queries_run(), 3);
    }

    /// Everything observable about a result except timings, as one
    /// comparable string.
    fn digest(ws: &WikiSearch, r: &WikiSearchResult) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        write!(
            s,
            "groups:{:?} unmatched:{:?} kwf:{} ",
            r.query.groups, r.query.unmatched, r.kwf
        )
        .unwrap();
        write!(
            s,
            "stats:{}/{}/{}/{:?} ",
            r.stats.last_level, r.stats.central_candidates, r.stats.peak_frontier, r.stats.trace
        )
        .unwrap();
        for a in &r.answers {
            write!(
                s,
                "[c:{} d:{} n:{:?} e:{:?} kn:{:?} ke:{:?} s:{}]",
                ws.graph().node_key(a.central),
                a.depth,
                a.nodes,
                a.edges,
                a.keyword_nodes,
                a.keyword_edges,
                a.score.to_bits()
            )
            .unwrap();
        }
        s
    }

    #[test]
    fn cache_hits_are_observably_identical_to_uncached_searches() {
        let uncached = small_engine(Backend::Sequential);
        let mut cached = small_engine(Backend::Sequential);
        cached.set_cache_capacity(1 << 20);
        // Near-duplicates: word order, case, stopwords, duplicate words.
        let variants =
            ["xml sql rdf", "RDF sql XML", "the xml of sql and rdf", "sql sql rdf xml rdf"];
        for (i, raw) in variants.iter().enumerate() {
            let warm = cached.search(raw);
            let cold = uncached.search(raw);
            assert_eq!(digest(&cached, &warm), digest(&uncached, &cold), "variant {i}: {raw}");
        }
        let stats = cached.cache_stats().unwrap();
        assert_eq!(stats.lookups, 4);
        assert_eq!(stats.misses, 1, "only the first variant computes");
        assert_eq!(stats.hits, 3, "every normalized duplicate hits");
        assert_eq!(stats.entries, 1);
        // The session pool saw exactly one query — hits never touch it.
        assert_eq!(cached.session_queries_run(), 1);
    }

    #[test]
    fn cache_never_aliases_across_params() {
        let mut ws = small_engine(Backend::Sequential);
        ws.set_cache_capacity(1 << 20);
        let deep = ws.search("xml sql rdf");
        let narrow = ws.search_with_params("xml sql rdf", &ws.params().clone().with_top_k(1));
        assert!(narrow.answers.len() <= 1);
        let stats = ws.cache_stats().unwrap();
        assert_eq!(stats.misses, 2, "different top-k keys a different slot");
        assert_eq!(stats.entries, 2);
        // Ask both again: both hit, both unchanged.
        let deep2 = ws.search("xml sql rdf");
        let narrow2 = ws.search_with_params("xml sql rdf", &ws.params().clone().with_top_k(1));
        assert_eq!(ws.cache_stats().unwrap().hits, 2);
        assert_eq!(deep2.answers.len(), deep.answers.len());
        assert_eq!(narrow2.answers.len(), narrow.answers.len());
    }

    #[test]
    fn empty_after_stopword_queries_bypass_the_cache() {
        let uncached = small_engine(Backend::Sequential);
        let mut ws = small_engine(Backend::Sequential);
        ws.set_cache_capacity(1 << 20);
        for raw in ["the of and", "", "   "] {
            let got = ws.search(raw);
            let want = uncached.search(raw);
            assert!(got.answers.is_empty());
            assert_eq!(digest(&ws, &got), digest(&uncached, &want), "{raw:?}");
        }
        let stats = ws.cache_stats().unwrap();
        assert_eq!(stats.lookups, 0, "bypass means the cache is never consulted");
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn cache_survives_a_backend_swap() {
        let mut ws = small_engine(Backend::Sequential);
        ws.set_cache_capacity(1 << 20);
        let seq = ws.search("xml sql rdf");
        ws.set_backend(Backend::ParCpu(2));
        let par = ws.search("xml sql rdf");
        assert_eq!(ws.cache_stats().unwrap().hits, 1, "entry valid across backends");
        assert_eq!(seq.answers[0].nodes, par.answers[0].nodes);
        assert_eq!(ws.session_queries_run(), 1);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let mut ws = small_engine(Backend::Sequential);
        ws.set_cache_capacity(1 << 20);
        assert!(ws.cache_stats().is_some());
        ws.set_cache_capacity(0);
        assert!(ws.cache_stats().is_none());
        ws.search("xml sql");
        ws.search("xml sql");
        assert_eq!(ws.session_queries_run(), 2, "every query computes");
    }

    #[test]
    fn failed_searches_never_populate_the_cache() {
        use std::time::Duration;
        let mut ws = small_engine(Backend::Sequential);
        ws.set_cache_capacity(1 << 20);
        // An already-expired deadline fails deterministically before any
        // search work.
        let expired = QueryBudget::unlimited().with_timeout(Duration::ZERO);
        let err = ws.try_search("xml sql rdf", &expired).unwrap_err();
        assert_eq!(err.kind(), "deadline_exceeded");
        let stats = ws.cache_stats().unwrap();
        assert_eq!(stats.entries, 0, "a failed search must not cache anything");
        assert_eq!(stats.lookups, 1, "the miss was recorded before the search failed");
        // A retry without the deadline computes the full answer and caches
        // it — the timeout left no poisoned or partial entry behind.
        let full = ws.try_search("xml sql rdf", &QueryBudget::unlimited()).unwrap();
        assert!(!full.answers.is_empty());
        assert_eq!(ws.cache_stats().unwrap().entries, 1);
        let hit = ws.search("xml sql rdf");
        assert_eq!(ws.cache_stats().unwrap().hits, 1, "the retry's answer is servable from cache");
        assert_eq!(digest(&ws, &hit), digest(&ws, &full));
    }

    #[test]
    fn failed_searches_keep_the_session_reusable() {
        use std::time::Duration;
        let ws = small_engine(Backend::Sequential);
        let expired = QueryBudget::unlimited().with_timeout(Duration::ZERO);
        assert!(ws.try_search("xml sql rdf", &expired).is_err());
        let pool = ws.session_pool();
        assert_eq!(pool.quarantined(), 0, "a budget failure is not a panic");
        assert_eq!(pool.idle_sessions(), 1, "the session checked back in");
        let ok = ws.try_search("xml sql rdf", &QueryBudget::unlimited()).unwrap();
        assert!(!ok.answers.is_empty());
        assert_eq!(pool.sessions_created(), 1, "the same session served the retry");
    }

    #[test]
    fn budget_exhaustion_surfaces_from_every_backend() {
        for backend in [
            Backend::Sequential,
            Backend::ParCpu(2),
            Backend::GpuStyle(2),
            Backend::DynPar(2),
        ] {
            let ws = small_engine(backend);
            let starved = QueryBudget::unlimited().with_max_expansions(1);
            let err = ws.try_search("xml sql rdf", &starved).unwrap_err();
            assert_eq!(err.kind(), "budget_exhausted", "{backend:?}");
            let ok = ws.try_search("xml sql rdf", &QueryBudget::unlimited()).unwrap();
            assert!(!ok.answers.is_empty(), "{backend:?}");
        }
    }

    #[test]
    fn tracing_is_opt_in_and_does_not_change_results() {
        let ws = small_engine(Backend::Sequential);
        let plain = ws.search("xml sql rdf");
        assert!(plain.trace.is_none(), "tracing must be opt-in");
        let traced =
            ws.search_with_params("xml sql rdf", &ws.params().clone().with_trace(TraceLevel::Full));
        assert!(traced.trace.is_some());
        assert_eq!(digest(&ws, &plain), digest(&ws, &traced), "tracing changed the answers");
    }

    #[test]
    fn explain_returns_a_live_trace_and_bypasses_the_cache() {
        let mut ws = small_engine(Backend::Sequential);
        ws.set_cache_capacity(1 << 20);
        ws.search("xml sql rdf"); // populate the cache
        let explained = ws.explain("xml sql rdf", &QueryBudget::unlimited()).unwrap();
        let trace = explained.trace.as_deref().unwrap();
        assert_eq!(trace.engine, "Seq");
        assert_eq!(trace.keywords, 3);
        assert_eq!(trace.cache, Some(CacheOutcome::Bypass), "EXPLAIN never serves from cache");
        assert!(trace.session_id.is_some());
        assert!(!trace.levels.is_empty());
        for (i, l) in trace.levels.iter().enumerate() {
            assert_eq!(l.level as usize, i);
            assert!(l.frontier > 0);
        }
        assert_eq!(
            trace.levels.iter().map(|l| l.identified).sum::<usize>(),
            explained.stats.central_candidates
        );
        let total: u64 = trace.levels.iter().map(|l| l.expansions).sum();
        assert_eq!(total, trace.total_expansions);
        assert!(total > 0, "counting mode must account expansion work");
        // The cache was untouched: still exactly one entry, zero hits.
        let stats = ws.cache_stats().unwrap();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn traced_cache_hits_report_the_cache_as_engine() {
        let mut ws = small_engine(Backend::Sequential);
        ws.set_cache_capacity(1 << 20);
        let traced_params = ws.params().clone().with_trace(TraceLevel::Full);
        let miss = ws.search_with_params("xml sql", &traced_params);
        assert_eq!(miss.trace.as_deref().unwrap().cache, Some(CacheOutcome::Miss));
        let hit = ws.search_with_params("xml sql", &traced_params);
        let trace = hit.trace.as_deref().unwrap();
        assert_eq!(trace.engine, "cache");
        assert_eq!(trace.cache, Some(CacheOutcome::Hit));
        assert!(trace.levels.is_empty(), "a hit runs no levels");
    }

    #[test]
    fn query_ids_thread_into_traces_and_cache_provenance() {
        let mut ws = small_engine(Backend::Sequential);
        ws.set_cache_capacity(1 << 20);
        let traced = ws.params().clone().with_trace(TraceLevel::Full);
        let miss = ws.search_with_params("xml sql", &traced);
        assert!(miss.qid >= 1, "every search gets a qid");
        let mt = miss.trace.as_deref().unwrap();
        assert_eq!(mt.qid, Some(miss.qid));
        assert_eq!(mt.cache_source_qid, None, "a computed answer has no cache provenance");
        // A reordered duplicate hits the cache and names its source.
        let hit = ws.search_with_params("sql xml", &traced);
        assert!(hit.qid > miss.qid, "qids are strictly increasing");
        let ht = hit.trace.as_deref().unwrap();
        assert_eq!(ht.engine, "cache");
        assert_eq!(ht.qid, Some(hit.qid));
        assert_eq!(ht.cache_source_qid, Some(miss.qid), "the hit names the populating query");
        // The serving layer's pre-assigned ID is honored verbatim.
        let tagged = ws
            .try_search_with_params_tagged("rdf", &traced, &QueryBudget::unlimited(), 999)
            .unwrap();
        assert_eq!(tagged.qid, 999);
        assert_eq!(tagged.trace.as_deref().unwrap().qid, Some(999));
        // Telemetry observed all three completions; nothing is in flight.
        assert!(ws.telemetry().slowest_recent().is_some());
        assert_eq!(ws.telemetry().in_flight().current(), 0);
        assert!(ws.query_ids_issued() >= 2);
    }

    #[test]
    fn failed_searches_still_reach_the_recent_query_ring() {
        let ws = small_engine(Backend::Sequential);
        let starved = QueryBudget::unlimited().with_max_expansions(1);
        let err = ws.try_search("xml sql rdf", &starved).unwrap_err();
        assert_eq!(err.kind(), "budget_exhausted");
        let (qid, _wall) = ws.telemetry().slowest_recent().expect("the failure was noted");
        assert_eq!(qid, ws.query_ids_issued(), "the failed query's qid is on the ring");
        assert_eq!(ws.telemetry().in_flight().current(), 0, "the flight guard survived the error");
    }

    #[test]
    fn metrics_account_every_search_path() {
        let mut ws = small_engine(Backend::Sequential);
        ws.set_cache_capacity(1 << 20);
        ws.search("xml sql rdf");
        ws.search("xml sql rdf"); // hit
        let starved = QueryBudget::unlimited().with_max_expansions(1);
        assert!(ws.try_search("xml rdf", &starved).is_err());
        let snap = ws.metrics_snapshot();
        assert_eq!(snap.queries, 3);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 2);
        assert_eq!(snap.budget_exhausted, 1);
        assert_eq!(snap.deadline_exceeded, 0);
        // Latency is recorded for the two successful queries only, and
        // expansion work for the one computed success.
        assert_eq!(snap.latency_us.count, 2);
        assert_eq!(snap.expansions.count, 1);
        assert!(snap.expansions.sum > 0);
        assert!(snap.latency_us.percentile(0.99) >= snap.latency_us.percentile(0.5));
    }

    #[test]
    fn all_backends_produce_per_level_explain_traces() {
        for backend in [
            Backend::Sequential,
            Backend::ParCpu(2),
            Backend::GpuStyle(2),
            Backend::DynPar(2),
        ] {
            let ws = small_engine(backend);
            let out = ws.explain("xml sql rdf", &QueryBudget::unlimited()).unwrap();
            let trace = out.trace.as_deref().unwrap_or_else(|| panic!("{backend:?}: no trace"));
            assert!(!trace.levels.is_empty(), "{backend:?}");
            assert!(trace.total_expansions > 0, "{backend:?}");
            // The rich records agree with the always-on level trace.
            assert_eq!(trace.levels.len(), out.stats.trace.len(), "{backend:?}");
            for (rich, plain) in trace.levels.iter().zip(&out.stats.trace) {
                assert_eq!(rich.level, u32::from(plain.level), "{backend:?}");
                assert_eq!(rich.frontier, plain.frontier, "{backend:?}");
                assert_eq!(rich.identified, plain.identified, "{backend:?}");
            }
        }
    }

    #[test]
    fn params_override_applies() {
        let mut ws = small_engine(Backend::Sequential);
        let p = ws.params().clone().with_top_k(1);
        ws.set_params(p);
        let result = ws.search("xml sql rdf");
        assert!(result.answers.len() <= 1);
    }

    fn small_sharded(backend: Backend, shards: usize) -> WikiSearch {
        let mut b = GraphBuilder::new();
        let x = b.add_node("Q1", "XML");
        let q = b.add_node("Q2", "query language");
        let s = b.add_node("Q3", "SQL");
        let r = b.add_node("Q4", "RDF");
        b.add_edge(x, q, "related to");
        b.add_edge(s, q, "instance of");
        b.add_edge(r, q, "instance of");
        WikiSearch::open_sharded(b.build(), backend, shards)
    }

    #[test]
    fn sharded_searches_are_byte_identical_to_monolithic() {
        for backend in [Backend::Sequential, Backend::GpuStyle(2), Backend::DynPar(2)] {
            let mono = small_engine(backend);
            for shards in [2, 3, 8] {
                let ws = small_sharded(backend, shards);
                assert_eq!(ws.num_shards(), Some(shards));
                for raw in ["xml sql rdf", "xml sql", "rdf", "xml warpdrive", ""] {
                    let a = ws.search(raw);
                    let b = mono.search(raw);
                    assert_eq!(
                        digest(&ws, &a),
                        digest(&mono, &b),
                        "{backend:?} × {shards} shards, query {raw:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn one_shard_is_the_monolithic_path() {
        let ws = small_sharded(Backend::Sequential, 1);
        assert_eq!(ws.num_shards(), None);
        assert!(ws.shard_stats().is_none());
        ws.search("xml sql");
        assert_eq!(ws.session_queries_run(), 1, "the facade pool serves shards <= 1");
    }

    #[test]
    fn shard_stats_account_pools_and_rounds() {
        let ws = small_sharded(Backend::Sequential, 3);
        ws.search("xml sql rdf");
        ws.search("xml sql");
        let stats = ws.shard_stats().unwrap();
        assert_eq!(stats.shards, 3);
        assert_eq!(stats.pools.queries_run, 6, "2 queries × 3 shard sessions");
        assert_eq!(stats.pools.in_flight, 0);
        assert_eq!(stats.pools.quarantined, 0);
        assert!(stats.rounds > 0);
        // The facade pool is bypassed entirely on the sharded path.
        assert_eq!(ws.session_queries_run(), 0);
    }

    #[test]
    fn sharded_cache_hits_match_sharded_and_monolithic_answers() {
        let mono = small_engine(Backend::Sequential);
        let mut ws = small_sharded(Backend::Sequential, 4);
        ws.set_cache_capacity(1 << 20);
        let miss = ws.search("xml sql rdf");
        let hit = ws.search("RDF sql XML"); // normalized duplicate
        assert_eq!(digest(&ws, &miss), digest(&mono, &mono.search("xml sql rdf")));
        assert_eq!(digest(&ws, &hit), digest(&mono, &mono.search("RDF sql XML")));
        let stats = ws.cache_stats().unwrap();
        assert_eq!(stats.hits, 1);
        assert_eq!(ws.shard_stats().unwrap().pools.queries_run, 4, "hits skip the shards");
    }

    #[test]
    fn sharded_explain_names_the_sharded_engine() {
        let ws = small_sharded(Backend::GpuStyle(2), 3);
        let out = ws.explain("xml sql rdf", &QueryBudget::unlimited()).unwrap();
        let trace = out.trace.as_deref().unwrap();
        assert_eq!(trace.engine, "GPU-Par[shards=3]");
        assert_eq!(trace.cache, Some(CacheOutcome::Bypass));
        assert!(trace.session_id.is_none(), "no single session to name");
        assert!(!trace.levels.is_empty());
        assert!(trace.total_expansions > 0);
        // Per-level records match the monolithic engine's exactly.
        let mono = small_engine(Backend::GpuStyle(2));
        let reference = mono.explain("xml sql rdf", &QueryBudget::unlimited()).unwrap();
        assert_eq!(trace.levels, reference.trace.as_deref().unwrap().levels);
    }

    #[test]
    fn sharded_budget_failures_surface_and_leave_pools_clean() {
        use std::time::Duration;
        let ws = small_sharded(Backend::Sequential, 2);
        let expired = QueryBudget::unlimited().with_timeout(Duration::ZERO);
        let err = ws.try_search("xml sql rdf", &expired).unwrap_err();
        assert_eq!(err.kind(), "deadline_exceeded");
        assert_eq!(ws.metrics_snapshot().deadline_exceeded, 1);
        let stats = ws.shard_stats().unwrap();
        assert_eq!(stats.pools.quarantined, 0, "a budget failure is not a panic");
        assert_eq!(stats.pools.in_flight, 0, "all shard sessions checked back in");
        let ok = ws.try_search("xml sql rdf", &QueryBudget::unlimited()).unwrap();
        assert!(!ok.answers.is_empty());
    }

    #[test]
    fn sharded_backend_swap_rebuilds_the_shard_set() {
        let mut ws = small_sharded(Backend::Sequential, 3);
        let seq = ws.search("xml sql rdf");
        ws.set_backend(Backend::ParCpu(2));
        assert_eq!(ws.num_shards(), Some(3), "shard count survives the swap");
        let par = ws.search("xml sql rdf");
        assert_eq!(digest(&ws, &seq), digest(&ws, &par));
    }

    use central::shard::DEFAULT_PARTITION_SEED;
    use central::{ShardWorker, StaticAddrs};

    /// Snappy retry/backoff knobs and no heartbeat thread, so tests
    /// exercising dead shards stay fast and deterministic.
    fn test_remote_opts() -> RemoteOptions {
        RemoteOptions {
            attempts: 1,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            connect_timeout: Duration::from_millis(200),
            heartbeat: None,
            ..RemoteOptions::default()
        }
    }

    /// `small_engine` driven over an in-process-spawned remote worker
    /// fleet of `shards` workers.
    fn small_remote(backend: Backend, shards: usize) -> WikiSearch {
        let mut ws = small_engine(backend);
        let addrs: Vec<_> = (0..shards)
            .map(|s| ShardWorker::spawn_local(ws.graph(), shards, s, DEFAULT_PARTITION_SEED))
            .collect();
        ws.set_remote_shards(shards, Arc::new(StaticAddrs(addrs)), test_remote_opts());
        ws
    }

    /// An address nothing listens on (bound then released).
    fn dead_addr() -> std::net::SocketAddr {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        addr
    }

    #[test]
    fn remote_searches_are_byte_identical_to_monolithic() {
        for backend in [Backend::Sequential, Backend::GpuStyle(2)] {
            let mono = small_engine(backend);
            for shards in [1, 2, 3] {
                let ws = small_remote(backend, shards);
                assert_eq!(ws.num_remote_shards(), Some(shards));
                for raw in ["xml sql rdf", "xml sql", "xml warpdrive", ""] {
                    let a = ws.search(raw);
                    let b = mono.search(raw);
                    assert!(!a.degraded, "healthy fleet must not degrade");
                    assert_eq!(
                        digest(&ws, &a),
                        digest(&mono, &b),
                        "{backend:?} × {shards} workers, query {raw:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn remote_backend_swap_rebuilds_the_coordinator_on_the_same_fleet() {
        let mut ws = small_remote(Backend::Sequential, 2);
        let seq = ws.search("xml sql rdf");
        ws.set_backend(Backend::GpuStyle(2));
        assert_eq!(ws.num_remote_shards(), Some(2), "fleet survives the swap");
        let gpu = ws.search("xml sql rdf");
        assert_eq!(digest(&ws, &seq), digest(&ws, &gpu));
    }

    #[test]
    fn unreachable_fleet_surfaces_shard_unavailable_and_counts_it() {
        let mut ws = small_engine(Backend::Sequential);
        ws.set_remote_shards(2, Arc::new(StaticAddrs(vec![dead_addr(), dead_addr()])), {
            let mut o = test_remote_opts();
            o.degraded_answers = false;
            o
        });
        let err = ws.try_search("xml sql rdf", &QueryBudget::unlimited()).unwrap_err();
        assert_eq!(err.kind(), "shard_unavailable");
        assert_eq!(ws.metrics_snapshot().shard_unavailable, 1);
    }

    #[test]
    fn degraded_answers_are_marked_and_never_cached() {
        // Shard 0 lives, shard 1 is dead; degraded answers are allowed.
        let mut ws = small_engine(Backend::Sequential);
        ws.set_cache_capacity(1 << 20);
        let live = ShardWorker::spawn_local(ws.graph(), 2, 0, DEFAULT_PARTITION_SEED);
        ws.set_remote_shards(2, Arc::new(StaticAddrs(vec![live, dead_addr()])), {
            let mut o = test_remote_opts();
            o.degraded_answers = true;
            o
        });
        let out = ws.try_search("xml sql rdf", &QueryBudget::unlimited()).unwrap();
        assert!(out.degraded, "a missing shard must mark the answer");
        let stats = ws.cache_stats().unwrap();
        assert_eq!(stats.entries, 0, "degraded answers must never populate the cache");
        assert_eq!(ws.remote_stats().unwrap().degraded_queries, 1);
        // Healthy-fleet results stay unmarked and cache normally.
        let healthy = small_remote(Backend::Sequential, 2);
        assert!(!healthy.search("xml sql rdf").degraded);
    }
}
