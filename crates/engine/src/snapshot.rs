//! Engine-level `.wsnap` compilation and zero-copy opening.
//!
//! [`compile_snapshot`] turns any loadable dataset into one self-contained
//! snapshot file holding everything the serving path needs:
//!
//! * the graph's CSR columns and string tables (`kgraph` sections 0–12),
//! * the inverted keyword index (`textindex` sections 20–24), and
//! * engine metadata (section 40): the sampled average distance `A`,
//!   stored as exact `f64` bits.
//!
//! Opening ([`WikiSearch::open_snapshot`]) maps the file read-only,
//! validates the header page, and assembles the engine over zero-copy
//! columns — no deserialization, no index rebuild, no distance
//! re-sampling. The stored `A` is the value the deterministic seeded
//! sampler would compute from the same graph, so a snapshot-opened engine
//! and a heap-built one produce **byte-identical** answers (score bits
//! included); `tests/tests/mmap_equivalence.rs` pins this across all four
//! backends and shard counts.

use central::SearchParams;
use kgraph::snapshot::{write_graph_sections, Snapshot, SnapshotWriter};
use kgraph::{estimate_average_distance, KnowledgeGraph};
use std::path::Path;
use textindex::InvertedIndex;

/// Snapshot section id: engine metadata — the sampled average distance
/// `A` as one `f64`.
pub const SEC_AVG_DISTANCE: u32 = 40;

/// What [`compile_snapshot`] reports back (for CLI output and tests).
#[derive(Clone, Copy, Debug)]
pub struct SnapshotInfo {
    /// Nodes in the compiled graph.
    pub nodes: usize,
    /// Original directed edges.
    pub edges: usize,
    /// Distinct analyzed terms in the embedded inverted index.
    pub terms: usize,
    /// Sampled average distance stored in the engine section.
    pub average_distance: f64,
    /// Total snapshot file size in bytes.
    pub file_bytes: u64,
}

/// The average-distance rule shared by the heap build path and the
/// snapshot compiler: deterministic seeded sampling, with the paper's
/// Wikidata value as the degenerate-graph fallback. Keeping this in one
/// place is what makes heap-built and snapshot-opened engines agree on
/// `A` to the bit.
pub(crate) fn sampled_average_distance(graph: &KnowledgeGraph) -> f64 {
    let est = estimate_average_distance(graph, 200, 32, 0xA11CE);
    if est.reachable_pairs == 0 {
        3.68
    } else {
        est.mean
    }
}

/// Compile `graph` (plus its freshly built inverted index and sampled
/// `A`) into a `.wsnap` file at `path`, then re-open it and deep-verify
/// every section checksum before reporting success.
pub fn compile_snapshot(graph: &KnowledgeGraph, path: &Path) -> Result<SnapshotInfo, String> {
    let index = InvertedIndex::build(graph);
    let a = sampled_average_distance(graph);
    let mut w = SnapshotWriter::create(path).map_err(|e| format!("{}: {e}", path.display()))?;
    write_graph_sections(&mut w, graph).map_err(|e| e.to_string())?;
    index.write_snapshot_sections(&mut w).map_err(|e| e.to_string())?;
    w.section_pod(SEC_AVG_DISTANCE, &[a]).map_err(|e| e.to_string())?;
    w.finish().map_err(|e| e.to_string())?;
    // Written snapshots are verified end-to-end before being declared
    // good — a compile is the one moment the whole file is hot anyway.
    let snap = Snapshot::open(path).map_err(|e| e.to_string())?;
    snap.verify_checksums().map_err(|e| e.to_string())?;
    Ok(SnapshotInfo {
        nodes: graph.num_nodes(),
        edges: graph.num_directed_edges(),
        terms: index.num_terms(),
        average_distance: a,
        file_bytes: snap.file_len() as u64,
    })
}

/// Assemble the engine pieces from an opened snapshot: zero-copy graph,
/// zero-copy index, stored `A`. Falls back to building the index / the
/// sampler for graph-only snapshots (e.g. written by
/// `kgraph::store::save_graph`), so every valid `.wsnap` is servable.
pub(crate) fn open_parts(
    path: &Path,
) -> Result<(KnowledgeGraph, InvertedIndex, SearchParams), String> {
    let snap = Snapshot::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let graph = kgraph::snapshot::graph_from_snapshot(&snap)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let index = match InvertedIndex::from_snapshot(&snap) {
        Ok(index) => index,
        Err(kgraph::KgraphError::Snapshot { message }) if message.contains("missing section") => {
            InvertedIndex::build(&graph)
        }
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let a = match snap.column::<f64>(SEC_AVG_DISTANCE) {
        Ok(col) if col.len() == 1 => col[0],
        Ok(col) => {
            return Err(format!(
                "{}: engine meta section holds {} values, expected 1",
                path.display(),
                col.len()
            ))
        }
        Err(kgraph::KgraphError::Snapshot { message }) if message.contains("missing section") => {
            sampled_average_distance(&graph)
        }
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let params = SearchParams::default().with_average_distance(a);
    Ok((graph, index, params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, WikiSearch};
    use kgraph::GraphBuilder;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("engine-snap-{}-{name}.wsnap", std::process::id()))
    }

    fn sample() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let x = b.add_node("Q1", "XML");
        let q = b.add_node("Q2", "query language");
        let s = b.add_node("Q3", "SQL");
        let r = b.add_node("Q4", "RDF");
        b.add_edge(x, q, "related to");
        b.add_edge(s, q, "instance of");
        b.add_edge(r, q, "instance of");
        b.build()
    }

    #[test]
    fn compile_then_open_serves_identical_answers() {
        let path = tmp("roundtrip");
        let g = sample();
        let info = compile_snapshot(&g, &path).unwrap();
        assert_eq!(info.nodes, 4);
        assert_eq!(info.edges, 3);
        assert!(info.terms > 0);
        assert!(info.file_bytes > 0);

        let heap = WikiSearch::build_with(g, Backend::Sequential);
        let mapped = WikiSearch::open_snapshot(&path, Backend::Sequential).unwrap();
        assert!(mapped.is_memory_mapped());
        assert!(!heap.is_memory_mapped());
        // `A` is the stored value, equal to the heap sampler's, to the bit.
        assert_eq!(
            mapped.params().average_distance.to_bits(),
            heap.params().average_distance.to_bits()
        );
        for raw in ["xml sql rdf", "xml sql", "rdf", ""] {
            let a = mapped.search(raw);
            let b = heap.search(raw);
            assert_eq!(a.answers.len(), b.answers.len(), "{raw:?}");
            for (x, y) in a.answers.iter().zip(&b.answers) {
                assert_eq!(x.nodes, y.nodes, "{raw:?}");
                assert_eq!(x.edges, y.edges, "{raw:?}");
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "{raw:?}");
            }
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn graph_only_snapshot_opens_with_fallbacks() {
        let path = tmp("graphonly");
        let g = sample();
        kgraph::store::save_graph(&g, &path).unwrap();
        let ws = WikiSearch::open_snapshot(&path, Backend::Sequential).unwrap();
        assert!(ws.is_memory_mapped(), "the graph still maps");
        assert!(!ws.index().is_memory_mapped(), "the index was rebuilt");
        let heap = WikiSearch::build_with(sample(), Backend::Sequential);
        let a = ws.search("xml sql rdf");
        let b = heap.search("xml sql rdf");
        assert_eq!(a.answers.len(), b.answers.len());
        assert_eq!(a.answers[0].score.to_bits(), b.answers[0].score.to_bits());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn open_rejects_a_missing_file_with_the_path_named() {
        let err = match WikiSearch::open_snapshot(Path::new("/no/such.wsnap"), Backend::Sequential)
        {
            Err(e) => e,
            Ok(_) => panic!("opened a nonexistent snapshot"),
        };
        assert!(err.contains("/no/such.wsnap"), "{err}");
    }
}
