//! Exp-3 (Fig. 8, row 2): total running time vs α on both datasets.
//! The paper's finding: larger α runs faster — more nodes activate early,
//! so answers (often through summary nodes) are found at smaller depths.

use crate::experiments::{engine_lineup, mean_profile_over};
use crate::{default_threads, queries_per_point, PreparedDataset};
use datagen::QueryWorkload;
use eval::runner::{ms, ExperimentSink};
use eval::Table;
use serde_json::json;
use textindex::ParsedQuery;

/// The α sweep of Fig. 8.
pub const ALPHAS: [f32; 5] = [0.05, 0.1, 0.2, 0.3, 0.4];

/// Run Exp-3 on both datasets.
pub fn run() -> serde_json::Value {
    let threads = default_threads();
    let nq = queries_per_point();
    println!("== Exp-3 (Fig. 8 row 2): vary alpha | {nq} queries/point, {threads} threads ==");
    let mut records = Vec::new();
    for ds in PreparedDataset::both() {
        println!("\n-- dataset {} --", ds.name);
        let engines = engine_lineup(threads);
        let mut workload = QueryWorkload::new(3000);
        let raw = workload.batch(6, nq);
        let queries: Vec<ParsedQuery> =
            raw.iter().map(|r| ParsedQuery::parse(&ds.index, r)).collect();

        let mut table = Table::new(vec!["engine", "α=0.05", "α=0.1", "α=0.2", "α=0.3", "α=0.4"]);
        let mut engines_json = Vec::new();
        for e in &engines {
            let mut cells = vec![e.name().to_string()];
            let mut totals = Vec::new();
            for alpha in ALPHAS {
                let params = ds.params().with_alpha(alpha);
                let p = mean_profile_over(e.as_ref(), &ds.graph, &queries, &params);
                cells.push(ms(p.total()));
                totals.push(p.total().as_secs_f64() * 1e3);
            }
            table.row(cells);
            engines_json.push(json!({ "engine": e.name(), "totals_ms": totals }));
        }
        table.print();
        records.push(json!({ "dataset": ds.name, "alphas": ALPHAS, "engines": engines_json }));
    }
    let record = json!({ "experiment": "exp3_vary_alpha", "datasets": records });
    if let Ok(path) = ExperimentSink::new().write("exp3_vary_alpha", &record) {
        println!("json: {}", path.display());
    }
    record
}
