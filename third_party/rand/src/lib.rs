//! Minimal `rand` 0.9 shim.
//!
//! One generator (SplitMix64 seeded, xorshift-mixed) stands in for both
//! `StdRng` and `SmallRng`. The workspace only relies on *determinism for
//! a fixed seed*, not on the exact stream of any upstream generator.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
    /// Build from OS entropy; here: from a clock-derived seed.
    fn from_os_rng() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0x1234_5678);
        Self::seed_from_u64(nanos)
    }
}

/// Types that can be drawn uniformly by [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw(rng: &mut dyn FnMut() -> u64) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut dyn FnMut() -> u64) -> Self {
        (rng() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn draw(rng: &mut dyn FnMut() -> u64) -> Self {
        (rng() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}
impl Standard for bool {
    fn draw(rng: &mut dyn FnMut() -> u64) -> Self {
        rng() & 1 == 1
    }
}
impl Standard for u32 {
    fn draw(rng: &mut dyn FnMut() -> u64) -> Self {
        (rng() >> 32) as u32
    }
}
impl Standard for u64 {
    fn draw(rng: &mut dyn FnMut() -> u64) -> Self {
        rng()
    }
}
impl Standard for u8 {
    fn draw(rng: &mut dyn FnMut() -> u64) -> Self {
        (rng() >> 56) as u8
    }
}

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng() as u128 % span) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize);

macro_rules! sint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng() as u128 % span) as i128) as $t
            }
        }
    )*};
}
sint_range!(i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> $t {
                let unit = (rng() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (self.start as f64 + unit * (self.end as f64 - self.start as f64)) as $t
            }
        }
    )*};
}
float_range!(f32, f64);

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(&mut || self.next_u64())
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::draw(&mut || self.next_u64()) < p
    }

    /// Uniform draw of a primitive.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(&mut || self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64: tiny, fast, full-period, excellent equidistribution for
/// test workloads.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed ^ 0x5DEE_CE66_D42D_9876 }
    }
}

/// Named generators.
pub mod rngs {
    /// The "standard" generator (shim: SplitMix64).
    pub type StdRng = super::SplitMix64;
    /// The "small" generator (shim: SplitMix64).
    pub type SmallRng = super::SplitMix64;
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::RngCore;

    /// Random element selection from indexable collections.
    pub trait IndexedRandom {
        /// Element type.
        type Output;
        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..9);
            assert!((3..9).contains(&v));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let x = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        for _ in 0..10 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
    }
}
