//! # kgraph — knowledge-graph substrate for WikiSearch
//!
//! This crate implements the graph layer that the ICDE'19 paper
//! *"An Efficient Parallel Keyword Search Engine on Knowledge Graphs"*
//! builds on (its Sec. III and Sec. V-A):
//!
//! * a **bi-directed, node-weighted, edge-labeled graph** stored in
//!   Compressed Sparse Row (CSR) form — every original directed edge is
//!   traversable in both directions, while the original direction is kept
//!   so that in-degree statistics (needed for node weighting) remain exact;
//! * **degree-of-summary node weights** (Eq. 2 of the paper) computed from
//!   per-node in-edge label histograms, min–max normalized;
//! * **average-shortest-distance estimation** by sampling node pairs
//!   (the `A` column of the paper's Table II);
//! * **memory accounting** used to reproduce the paper's Table IV; and
//! * simple text (TSV) and JSON round-trip I/O.
//!
//! The crate is deliberately free of any search logic: the Central Graph
//! algorithm lives in the `central` crate, baselines in `banks`.
//!
//! ## Quick example
//!
//! ```
//! use kgraph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! let sql = b.add_node("Q1", "SQL");
//! let ql  = b.add_node("Q2", "Query language");
//! b.add_edge(sql, ql, "instance of");
//! let g = b.build();
//! assert_eq!(g.num_nodes(), 2);
//! assert_eq!(g.num_directed_edges(), 1);
//! // bi-directed traversal: both endpoints see the edge
//! assert_eq!(g.neighbors(sql).len(), 1);
//! assert_eq!(g.neighbors(ql).len(), 1);
//! ```

#![warn(missing_docs)]

pub mod binio;
pub mod builder;
pub mod column;
pub mod error;
pub mod graph;
pub mod ids;
pub mod io;
pub mod mmap;
pub mod sampling;
pub mod snapshot;
pub mod stats;
pub mod storage;
pub mod store;
pub mod weights;

pub use builder::GraphBuilder;
pub use column::{Column, Pod, StrTable};
pub use error::KgraphError;
pub use graph::{Adjacency, KnowledgeGraph};
pub use ids::{LabelId, NodeId};
pub use sampling::{estimate_average_distance, DistanceEstimate};
pub use snapshot::{Snapshot, SnapshotWriter};
pub use stats::GraphStats;
pub use storage::MemoryFootprint;
pub use store::{load_graph, GraphFormat, GraphStore};
