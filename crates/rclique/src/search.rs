//! r-clique search: the authors' polynomial 2-approximation, plus the
//! post-hoc Steiner-tree extraction the reproduced paper criticizes.
//!
//! The 2-approximation anchors on each node of the smallest keyword
//! group: for anchor `u`, every other group contributes its node nearest
//! to `u` (by the neighbor index). If all pairwise distances of the
//! resulting set are `≤ r`, it is an r-clique with weight
//! `Σ_{i<j} dist(v_i, v_j)`; the top-k distinct anchored cliques are
//! returned.

use crate::index::NeighborIndex;
use kgraph::{KnowledgeGraph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use textindex::ParsedQuery;

/// Parameters of an r-clique search.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RCliqueParams {
    /// Maximum pairwise distance `r` between clique members. Must be
    /// `≤ R`, the neighbor-index radius.
    pub r: u16,
    /// Answers to return.
    pub top_k: usize,
}

impl Default for RCliqueParams {
    fn default() -> Self {
        RCliqueParams { r: 3, top_k: 20 }
    }
}

/// One r-clique answer: a content node per keyword, plus the Steiner tree
/// extracted afterwards.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CliqueAnswer {
    /// One node per keyword group, in query order.
    pub members: Vec<NodeId>,
    /// Sum of pairwise hop distances (the r-clique weight; smaller is
    /// better).
    pub weight: u32,
    /// Steiner-tree nodes connecting the members (extraction phase).
    pub tree_nodes: Vec<NodeId>,
    /// Steiner-tree edges as `(min, max)` pairs.
    pub tree_edges: Vec<(NodeId, NodeId)>,
}

/// The r-clique engine, bound to a graph and its neighbor index.
pub struct RCliqueSearch<'a> {
    graph: &'a KnowledgeGraph,
    index: &'a NeighborIndex,
}

impl<'a> RCliqueSearch<'a> {
    /// Bind to a prebuilt [`NeighborIndex`].
    pub fn new(graph: &'a KnowledgeGraph, index: &'a NeighborIndex) -> Self {
        RCliqueSearch { graph, index }
    }

    /// Top-k r-cliques via the anchored 2-approximation.
    ///
    /// Returns an empty list when `r` exceeds the index radius `R`
    /// (the method's parameter coupling) or when no clique exists.
    pub fn search(&self, query: &ParsedQuery, params: &RCliqueParams) -> Vec<CliqueAnswer> {
        let q = query.num_keywords();
        if q == 0 || params.r > self.index.radius() {
            return Vec::new();
        }
        // Anchor on the smallest keyword group (fewest candidates).
        let anchor_group = (0..q).min_by_key(|&i| query.groups[i].nodes.len()).expect("q > 0");
        let mut answers: Vec<CliqueAnswer> = Vec::new();
        'anchors: for &u in &query.groups[anchor_group].nodes {
            let mut members: Vec<NodeId> = Vec::with_capacity(q);
            for (i, group) in query.groups.iter().enumerate() {
                if i == anchor_group {
                    members.push(u);
                    continue;
                }
                // nearest member of T_i to the anchor
                let best = group
                    .nodes
                    .iter()
                    .filter_map(|&v| self.index.distance(u, v).map(|d| (d, v)))
                    .min();
                match best {
                    Some((_, v)) => members.push(v),
                    None => continue 'anchors,
                }
            }
            // Verify the clique condition and accumulate the weight.
            let mut weight = 0u32;
            for i in 0..q {
                for j in i + 1..q {
                    match self.index.distance(members[i], members[j]) {
                        Some(d) if d <= params.r => weight += d as u32,
                        _ => continue 'anchors,
                    }
                }
            }
            let (tree_nodes, tree_edges) = extract_tree(self.graph, &members);
            answers.push(CliqueAnswer { members, weight, tree_nodes, tree_edges });
        }
        answers.sort_by(|a, b| a.weight.cmp(&b.weight).then_with(|| a.members.cmp(&b.members)));
        answers.dedup_by(|a, b| a.members == b.members);
        answers.truncate(params.top_k);
        answers
    }
}

/// Post-hoc Steiner-tree extraction: connect the members greedily with
/// shortest paths into the growing tree (the standard 2-approximation of
/// Steiner trees — and the step whose answers "may not be global optimal"
/// per the reproduced paper, since they are confined to one clique).
pub fn extract_tree(
    graph: &KnowledgeGraph,
    members: &[NodeId],
) -> (Vec<NodeId>, Vec<(NodeId, NodeId)>) {
    let mut tree: Vec<NodeId> = Vec::new();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for &m in members {
        if tree.is_empty() {
            tree.push(m);
            continue;
        }
        if tree.contains(&m) {
            continue;
        }
        // BFS from m until any tree node is reached.
        let mut parent: Vec<Option<NodeId>> = vec![None; graph.num_nodes()];
        let mut visited = vec![false; graph.num_nodes()];
        visited[m.index()] = true;
        let mut queue = VecDeque::from([m]);
        let mut joint: Option<NodeId> = None;
        'bfs: while let Some(v) = queue.pop_front() {
            for adj in graph.neighbors(v) {
                let t = adj.target();
                if visited[t.index()] {
                    continue;
                }
                visited[t.index()] = true;
                parent[t.index()] = Some(v);
                if tree.contains(&t) {
                    joint = Some(t);
                    break 'bfs;
                }
                queue.push_back(t);
            }
        }
        let Some(mut cur) = joint else {
            // Disconnected member (cannot happen for a valid clique with
            // r ≤ R on a connected component, but stay defensive).
            tree.push(m);
            continue;
        };
        // Walk back to m, adding the path.
        while let Some(p) = parent[cur.index()] {
            edges.push((cur.min(p), cur.max(p)));
            if !tree.contains(&cur) {
                tree.push(cur);
            }
            cur = p;
        }
        if !tree.contains(&cur) {
            tree.push(cur);
        }
    }
    tree.sort_unstable();
    tree.dedup();
    edges.sort_unstable();
    edges.dedup();
    (tree, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;
    use textindex::InvertedIndex;

    fn fixture() -> (KnowledgeGraph, InvertedIndex) {
        // two keyword nodes joined by a hub; a second, farther pair.
        let mut b = GraphBuilder::new();
        let a1 = b.add_node("a1", "apple");
        let z1 = b.add_node("z1", "banana");
        let hub = b.add_node("h", "hub");
        b.add_edge(a1, hub, "e");
        b.add_edge(z1, hub, "e");
        let a2 = b.add_node("a2", "apple far");
        let mut prev = hub;
        for i in 0..3 {
            let m = b.add_node(&format!("m{i}"), "mid");
            b.add_edge(prev, m, "e");
            prev = m;
        }
        b.add_edge(prev, a2, "e");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        (g, idx)
    }

    #[test]
    fn finds_the_near_clique_and_ranks_by_weight() {
        let (g, inv) = fixture();
        let nidx = NeighborIndex::build(&g, 4);
        let query = ParsedQuery::parse(&inv, "apple banana");
        let search = RCliqueSearch::new(&g, &nidx);
        let answers = search.search(&query, &RCliqueParams { r: 2, top_k: 10 });
        assert!(!answers.is_empty());
        let best = &answers[0];
        assert_eq!(best.weight, 2, "a1 and z1 are 2 hops apart");
        assert!(best.members.contains(&g.find_node_by_key("a1").unwrap()));
        // Steiner tree connects them through the hub.
        assert!(best.tree_nodes.contains(&g.find_node_by_key("h").unwrap()));
        assert_eq!(best.tree_edges.len(), 2);
    }

    #[test]
    fn small_r_misses_answers_entirely() {
        // The parameter-sensitivity criticism: r = 1 excludes the only
        // connection (distance 2).
        let (g, inv) = fixture();
        let nidx = NeighborIndex::build(&g, 4);
        let query = ParsedQuery::parse(&inv, "apple banana");
        let search = RCliqueSearch::new(&g, &nidx);
        assert!(search.search(&query, &RCliqueParams { r: 1, top_k: 10 }).is_empty());
    }

    #[test]
    fn r_beyond_index_radius_is_rejected() {
        let (g, inv) = fixture();
        let nidx = NeighborIndex::build(&g, 2);
        let query = ParsedQuery::parse(&inv, "apple banana");
        let search = RCliqueSearch::new(&g, &nidx);
        assert!(search.search(&query, &RCliqueParams { r: 5, top_k: 10 }).is_empty());
    }

    #[test]
    fn single_keyword_queries_return_members_only() {
        let (g, inv) = fixture();
        let nidx = NeighborIndex::build(&g, 2);
        let query = ParsedQuery::parse(&inv, "apple");
        let params = RCliqueParams { r: 2, top_k: 20 };
        let answers = RCliqueSearch::new(&g, &nidx).search(&query, &params);
        // both apple nodes anchor their own singleton clique
        assert_eq!(answers.len(), 2);
        assert!(answers.iter().all(|a| a.weight == 0 && a.members.len() == 1));
    }

    #[test]
    fn extract_tree_connects_members() {
        let (g, _) = fixture();
        let members = vec![g.find_node_by_key("a1").unwrap(), g.find_node_by_key("z1").unwrap()];
        let (nodes, edges) = extract_tree(&g, &members);
        assert_eq!(nodes.len(), 3);
        assert_eq!(edges.len(), 2);
    }
}
