//! Generation of strings matching a small regex subset: literal chars,
//! `[...]` classes (ranges and singletons), `(...)` groups, `{m}`/`{m,n}`
//! repetition, and `\PC` (any non-control character).

use crate::TestRng;

enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
    Group(Vec<Piece>),
    AnyNonControl,
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Printable pool for `\PC`: ASCII plus multibyte chars so UTF-8 boundary
/// handling gets exercised.
const NON_CONTROL_EXTRA: &[char] = &['é', 'ß', 'λ', 'Ж', '中', '語', '🌍', 'ñ', '�', '„'];

/// Generate one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let pieces = parse_sequence(&chars, &mut pos, pattern);
    assert!(pos == chars.len(), "unsupported regex `{pattern}` (stopped at {pos})");
    let mut out = String::new();
    emit_sequence(&pieces, rng, &mut out);
    out
}

fn parse_sequence(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<Piece> {
    let mut pieces = Vec::new();
    while *pos < chars.len() && chars[*pos] != ')' {
        let atom = parse_atom(chars, pos, pattern);
        let (min, max) = parse_repeat(chars, pos, pattern);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_atom(chars: &[char], pos: &mut usize, pattern: &str) -> Atom {
    match chars[*pos] {
        '[' => {
            *pos += 1;
            let mut ranges = Vec::new();
            while chars[*pos] != ']' {
                let lo = chars[*pos];
                *pos += 1;
                if chars[*pos] == '-' && chars[*pos + 1] != ']' {
                    let hi = chars[*pos + 1];
                    *pos += 2;
                    ranges.push((lo, hi));
                } else {
                    ranges.push((lo, lo));
                }
            }
            *pos += 1;
            Atom::Class(ranges)
        }
        '(' => {
            *pos += 1;
            let inner = parse_sequence(chars, pos, pattern);
            assert!(
                *pos < chars.len() && chars[*pos] == ')',
                "unbalanced group in regex `{pattern}`"
            );
            *pos += 1;
            Atom::Group(inner)
        }
        '\\' => {
            assert!(
                chars.get(*pos + 1) == Some(&'P') && chars.get(*pos + 2) == Some(&'C'),
                "unsupported escape in regex `{pattern}`"
            );
            *pos += 3;
            Atom::AnyNonControl
        }
        c => {
            *pos += 1;
            Atom::Literal(c)
        }
    }
}

fn parse_repeat(chars: &[char], pos: &mut usize, pattern: &str) -> (usize, usize) {
    if *pos >= chars.len() || chars[*pos] != '{' {
        return match chars.get(*pos) {
            Some('*') => {
                *pos += 1;
                (0, 8)
            }
            Some('+') => {
                *pos += 1;
                (1, 8)
            }
            Some('?') => {
                *pos += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
    }
    *pos += 1;
    let mut min = 0usize;
    while chars[*pos].is_ascii_digit() {
        min = min * 10 + chars[*pos].to_digit(10).unwrap() as usize;
        *pos += 1;
    }
    let max = if chars[*pos] == ',' {
        *pos += 1;
        let mut max = 0usize;
        while chars[*pos].is_ascii_digit() {
            max = max * 10 + chars[*pos].to_digit(10).unwrap() as usize;
            *pos += 1;
        }
        max
    } else {
        min
    };
    assert!(chars[*pos] == '}', "malformed repetition in regex `{pattern}`");
    *pos += 1;
    (min, max)
}

fn emit_sequence(pieces: &[Piece], rng: &mut TestRng, out: &mut String) {
    for piece in pieces {
        let count = rng.range_usize(piece.min, piece.max + 1);
        for _ in 0..count {
            emit_atom(&piece.atom, rng, out);
        }
    }
}

fn emit_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
    match atom {
        Atom::Literal(c) => out.push(*c),
        Atom::Class(ranges) => {
            let (lo, hi) = ranges[rng.range_usize(0, ranges.len())];
            let span = hi as u32 - lo as u32 + 1;
            let c = char::from_u32(lo as u32 + rng.below(u64::from(span)) as u32)
                .expect("class range stays inside valid scalar values");
            out.push(c);
        }
        Atom::Group(inner) => emit_sequence(inner, rng, out),
        Atom::AnyNonControl => {
            // 3/4 printable ASCII, 1/4 multibyte.
            if rng.below(4) < 3 {
                out.push(char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap());
            } else {
                out.push(NON_CONTROL_EXTRA[rng.range_usize(0, NON_CONTROL_EXTRA.len())]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_pattern_generates_words() {
        let mut rng = TestRng::from_name("regex-words");
        for _ in 0..200 {
            let s = generate_matching("[a-z]{1,6}( [a-z]{1,6}){0,2}", &mut rng);
            for word in s.split(' ') {
                assert!((1..=6).contains(&word.len()), "bad word in `{s}`");
                assert!(word.bytes().all(|b| b.is_ascii_lowercase()));
            }
        }
    }

    #[test]
    fn mixed_class_with_space() {
        let mut rng = TestRng::from_name("regex-mixed");
        for _ in 0..100 {
            let s = generate_matching("[a-zA-Z ]{0,48}", &mut rng);
            assert!(s.len() <= 48);
            assert!(s.chars().all(|c| c.is_ascii_alphabetic() || c == ' '));
        }
    }

    #[test]
    fn non_control_escape() {
        let mut rng = TestRng::from_name("regex-pc");
        let mut saw_multibyte = false;
        for _ in 0..200 {
            let s = generate_matching("\\PC{0,24}", &mut rng);
            assert!(s.chars().count() <= 24);
            assert!(s.chars().all(|c| !c.is_control()));
            saw_multibyte |= s.chars().any(|c| c.len_utf8() > 1);
        }
        assert!(saw_multibyte, "pool should exercise multibyte chars");
    }
}
