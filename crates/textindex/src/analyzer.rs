//! The composed analysis pipeline: tokenize → stopword filter → stem.
//!
//! Both node labels (at index-build time) and query strings (at search
//! time) run through exactly this pipeline, so a query term matches a node
//! iff their analyzed forms collide — the contract the paper's keyword
//! groups `T_i` rely on.

use crate::stemmer::porter_stem;
use crate::stopwords::is_stopword;
use crate::tokenizer::tokenize;

/// Analyze `text` into index terms: lowercase word tokens with stopwords
/// removed and the Porter stem applied.
///
/// ```
/// use textindex::analyze;
/// assert_eq!(
///     analyze("the Bayesian networks of inference"),
///     vec!["bayesian", "network", "infer"]
/// );
/// ```
pub fn analyze(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| !is_stopword(t))
        .map(|t| porter_stem(&t))
        .collect()
}

/// Like [`analyze`] but deduplicated, preserving first-occurrence order —
/// the form used for node labels (a label mentioning "data ... data" should
/// index "data" once) and for building keyword groups from a query.
pub fn analyze_unique(text: &str) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    analyze(text).into_iter().filter(|t| seen.insert(t.clone())).collect()
}

/// The canonical, order-insensitive form of a query: analyzed terms
/// (tokenize → stopword filter → stem), deduplicated and **sorted**.
///
/// Two raw strings normalize to the same term list iff they drive the
/// same keyword search — capitalization, word order, duplicate words and
/// stopwords all vanish. This is the cache-key normalization of the
/// serving layer's result cache: `"Einstein physics"`,
/// `"physics  EINSTEIN"` and `"the physics of einstein"` must all
/// collide on one cache slot.
///
/// ```
/// use textindex::normalize_query;
/// assert_eq!(normalize_query("the physics of Einstein"), vec!["einstein", "physic"]);
/// assert_eq!(normalize_query("physics  EINSTEIN"), normalize_query("Einstein physics"));
/// assert!(normalize_query("the of and").is_empty());
/// ```
pub fn normalize_query(raw: &str) -> Vec<String> {
    let mut terms = analyze_unique(raw);
    terms.sort_unstable();
    terms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_applies_all_three_stages() {
        // tokenizes, removes "for", stems "graphs" -> "graph"
        assert_eq!(analyze("Keyword Search for Graphs!"), vec!["keyword", "search", "graph"]);
    }

    #[test]
    fn stopword_only_input_is_empty() {
        assert!(analyze("the of and in").is_empty());
    }

    #[test]
    fn query_and_label_forms_collide() {
        // the core matching contract
        let label = analyze_unique("SPARQL query language for RDF");
        for q in ["querying RDF", "query languages", "SPARQL"] {
            for term in analyze_unique(q) {
                assert!(label.contains(&term), "query term {term:?} must match label {label:?}");
            }
        }
    }

    #[test]
    fn unique_dedups_after_stemming() {
        // "mining" and "mined" stem to the same term
        assert_eq!(analyze_unique("mining mined mine"), vec!["mine"]);
    }

    #[test]
    fn normalize_collapses_case_order_and_stopwords() {
        let a = normalize_query("Einstein physics");
        assert_eq!(a, normalize_query("physics  EINSTEIN"), "word order and case");
        assert_eq!(a, normalize_query("the physics of einstein"), "stopwords");
        assert_eq!(a, vec!["einstein", "physic"], "sorted analyzed terms");
    }

    #[test]
    fn normalize_distinguishes_different_keyword_sets() {
        assert_ne!(normalize_query("einstein"), normalize_query("einstein physics"));
        assert_ne!(normalize_query("relativity einstein"), normalize_query("einstein physics"));
    }

    #[test]
    fn normalize_of_stopword_only_input_is_empty() {
        assert!(normalize_query("the of and in").is_empty());
        assert!(normalize_query("").is_empty());
        assert!(normalize_query("  !!  ").is_empty());
    }
}
