//! Micro-batched multi-query execution: fuse queries that arrive within a
//! short window into **one** level-synchronous sweep over a query-major
//! extension of the hitting-level matrix `M`.
//!
//! Under Zipf-miss traffic many concurrent queries expand overlapping
//! regions of the graph alone: each pays the full per-node cache-line
//! traffic for its own `n × q` matrix. The paper's follow-up work runs the
//! same matrix substrate batched across work items, and its monotone
//! per-query bounds compose when queries share a traversal — so this module
//! lays the matrices of up to [`MAX_BATCH_LANES`] queries side by side
//! (one *lane* per query) and advances all of them in one fused sweep:
//! one pass over the node space per level serves every query in the batch,
//! while each lane keeps its own hitting levels, frontier/central flags,
//! budget tracker and trace.
//!
//! ## Byte-identity
//!
//! The whole point of the design is that batching is *invisible* in the
//! results: answers, stats, per-level traces and budget errors of a lane
//! are byte-for-byte what the solo engine produces for the same
//! `(graph, query, params, budget)`. That holds because
//!
//! * each lane's frontier queue is produced by the same ascending
//!   node-id scan as the solo sequential enqueue (and the solo parallel
//!   compaction, which preserves that order);
//! * identification per lane is the sequential scan — the solo parallel
//!   engines sort their identification output, so all engines agree on
//!   ascending order;
//! * the expansion kernels are verbatim lane-indexed ports of
//!   [`crate::bottom_up`]'s, and Theorem V.2 makes their scheduling
//!   irrelevant within a level;
//! * budget trackers are per-lane, so each lane charges exactly the units
//!   the solo run charges, in the same per-frontier order.
//!
//! The `batch_equivalence` differential suite pins this down across all
//! four backends.
//!
//! ## Failure isolation
//!
//! Each lane's pre-flight (parameter validation, budget arming, fault
//! injection, empty-query short-circuit) runs under its own
//! `catch_unwind`, so a panicking query is demoted to
//! [`LaneOutcome::Panicked`] and co-batched lanes proceed untouched; the
//! submitter re-raises the panic on its own thread, where the serving
//! layer's existing quarantine accounting sees it. A budget that trips
//! mid-sweep fails only its own lane at that lane's next checkpoint.

use crate::activation::{ActivationConfig, ActivationMap};
use crate::bottom_up::{LevelTrace, TerminationReason};
use crate::budget::{BudgetTracker, QueryBudget};
use crate::engine::{SearchOutcome, SearchStats};
use crate::error::SearchError;
use crate::metrics::{Counter, HistogramSnapshot, LogHistogram};
use crate::model::{CentralGraph, INFINITE_LEVEL};
use crate::profile::PhaseProfile;
use crate::shard::{ShardBackend, ShardedSearch};
use crate::state::HitLevels;
use crate::top_down;
use crate::trace::{PhaseMillis, QueryTrace, TraceLevelRecord};
use crate::SearchParams;
use kgraph::{KnowledgeGraph, NodeId};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{mpsc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use textindex::ParsedQuery;

/// Hard cap on queries fused into one sweep: lane membership of a frontier
/// node is tracked in a `u64` bitmask during the fused expansion.
pub const MAX_BATCH_LANES: usize = 64;

/// Static configuration of a [`Batcher`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchConfig {
    /// How long the first query of a batch waits for co-travellers.
    pub window: Duration,
    /// Maximum queries per batch (clamped to [`MAX_BATCH_LANES`]).
    pub max_batch: usize,
}

impl BatchConfig {
    /// A config with `max_batch` clamped into `1..=MAX_BATCH_LANES`.
    pub fn new(window: Duration, max_batch: usize) -> Self {
        BatchConfig { window, max_batch: max_batch.clamp(1, MAX_BATCH_LANES) }
    }
}

/// One query's worth of work submitted to the batching layer. Owns its
/// parsed query so requests can cross threads into the leader's batch.
pub struct BatchRequest {
    /// The parsed query (owned — moves into the leader's batch).
    pub query: ParsedQuery,
    /// Per-query search parameters (trace level included).
    pub params: SearchParams,
    /// Per-query budget; armed into a private tracker inside the sweep.
    pub budget: QueryBudget,
}

/// What came back for one lane of a batch.
pub enum LaneOutcome {
    /// The search ran to a verdict: answers or a budget error.
    Done(Result<SearchOutcome, SearchError>),
    /// The lane panicked (fault injection, invalid parameters). The
    /// payload is re-raised on the submitter's thread so the serving
    /// layer's panic accounting is identical to the unbatched path.
    Panicked(Box<dyn Any + Send>),
}

/// Why a collecting batch closed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CloseReason {
    /// `max_batch` queries are pending.
    BatchFull,
    /// The batcher is draining (server shutdown / flush).
    QueueDrained,
    /// The collection window elapsed.
    WindowElapsed,
}

/// Pure close-condition oracle of the collection loop: given `pending`
/// queries (the leader included), time `waited` since the leader arrived,
/// and the drain flag, should the batch close now — and why? Kept free of
/// clocks and locks so the model proptests can drive it exhaustively.
pub fn close_reason(
    pending: usize,
    waited: Duration,
    draining: bool,
    cfg: &BatchConfig,
) -> Option<CloseReason> {
    if pending >= cfg.max_batch {
        Some(CloseReason::BatchFull)
    } else if draining {
        Some(CloseReason::QueueDrained)
    } else if waited >= cfg.window {
        Some(CloseReason::WindowElapsed)
    } else {
        None
    }
}

/// Monitoring snapshot of a [`Batcher`] (the `batch` block of `STATS`).
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize)]
pub struct BatchStats {
    /// Configured collection window in microseconds.
    pub window_us: u64,
    /// Configured maximum batch size.
    pub max_batch: usize,
    /// Batches executed (a solo fallback run counts as a batch of one).
    pub batches: u64,
    /// Queries that ran inside those batches.
    pub queries: u64,
    /// Queries submitted to the batcher.
    pub enqueued: u64,
    /// Outcomes handed back to submitters (== `enqueued` once idle).
    pub delivered: u64,
    /// Batch-size distribution.
    pub size: HistogramSnapshot,
    /// Window fill time per batch, in microseconds (how long the leader
    /// actually waited before closing).
    pub fill_us: HistogramSnapshot,
}

// ---------------------------------------------------------------------------
// BatchState: the query-major multi-lane extension of `M`
// ---------------------------------------------------------------------------

/// Multi-query search state: the lock-free
/// [`crate::state::SearchState`] widened to `lanes` queries. The matrix
/// is `Σ q_j` lane-major `n × q_j` blocks of byte-sized hitting levels;
/// the shared per-node frontier word carries every lane's `FIdentifier`
/// bit, so one cache-line touch per node during the per-level enqueue
/// scan serves every query in the batch.
///
/// Unlike the solo state there is no epoch stamping: bytes are dense
/// enough that [`BatchState::begin_batch`] simply memsets the used
/// prefix of every array (a few bytes per node per lane — less than one
/// level's expansion traffic), so a pooled state still re-arms
/// allocation-free on the warm path.
pub struct BatchState {
    /// Number of graph nodes.
    n: usize,
    /// Lanes (queries) in the current batch.
    lanes: usize,
    /// Total keyword columns `Σ q_j` across all lanes.
    total_q: usize,
    /// Per-lane column offsets (`lanes + 1` entries; lane `j` owns
    /// columns `offsets[j]..offsets[j+1]`).
    offsets: Vec<usize>,
    /// `M`: lane-major hitting levels — lane `j` owns the contiguous
    /// block `n·offsets[j] .. n·offsets[j+1]`, laid out `n × q_j`
    /// row-major exactly like a solo run's matrix, one byte per cell
    /// (255 = ∞). Keeping each lane's block contiguous and byte-dense is
    /// what keeps per-lane expansion at (better than) solo cache
    /// locality no matter how wide the batch is: a 60k-node, 4-keyword
    /// lane costs 240 KiB here versus ~1 MiB of epoch-stamped words in
    /// the solo state.
    matrix: Vec<AtomicU8>,
    /// `FIdentifier` lane bitmask, one word per node: bit `j` set ⇔ the
    /// node is on lane `j`'s next frontier. Packing all lanes into one
    /// word makes the per-level enqueue a single `O(n)` scan — one
    /// cache-line touch per node serves the whole batch — instead of
    /// `O(n × lanes)` flag probes.
    frontier: Vec<AtomicU64>,
    /// `CIdentifier` per `(node, lane)`, lane-major: 0 ⇔ not central,
    /// else depth + 1.
    central: Vec<AtomicU8>,
    /// Lane-major keyword-node bitmaps, `kw_words` words per lane: bit
    /// `v` of lane `j`'s slice ⇔ `v` holds one of lane `j`'s keywords.
    /// Written only in [`BatchState::begin_batch`], read-only during the
    /// sweep.
    is_keyword: Vec<u64>,
    /// Words per lane in `is_keyword` (`n` rounded up to 64).
    kw_words: usize,
}

impl Default for BatchState {
    fn default() -> Self {
        BatchState::empty()
    }
}

impl BatchState {
    /// An empty state holding no allocation; arm it with
    /// [`BatchState::begin_batch`].
    pub fn empty() -> Self {
        BatchState {
            n: 0,
            lanes: 0,
            total_q: 0,
            offsets: Vec::new(),
            matrix: Vec::new(),
            frontier: Vec::new(),
            central: Vec::new(),
            is_keyword: Vec::new(),
            kw_words: 0,
        }
    }

    /// Re-arm the state for a batch of `queries` over `n` nodes: grow the
    /// buffers if this batch needs more room than any before it, wipe the
    /// used prefix of each, and seed every lane's sources. Warm path:
    /// zero allocations, three memsets.
    ///
    /// # Panics
    /// Panics if `queries` exceeds [`MAX_BATCH_LANES`].
    pub fn begin_batch(&mut self, n: usize, queries: &[&ParsedQuery]) {
        assert!(
            queries.len() <= MAX_BATCH_LANES,
            "batch of {} queries exceeds MAX_BATCH_LANES ({MAX_BATCH_LANES})",
            queries.len()
        );
        self.n = n;
        self.lanes = queries.len();
        self.kw_words = n.div_ceil(64);
        self.offsets.clear();
        self.offsets.push(0);
        let mut total = 0usize;
        for q in queries {
            total += q.num_keywords();
            self.offsets.push(total);
        }
        self.total_q = total;
        let cells = n * total;
        if self.matrix.len() < cells {
            self.matrix.resize_with(cells, || AtomicU8::new(0));
        }
        let flags = n * self.lanes;
        if self.central.len() < flags {
            self.central.resize_with(flags, || AtomicU8::new(0));
        }
        let kw = self.kw_words * self.lanes;
        if self.is_keyword.len() < kw {
            self.is_keyword.resize(kw, 0);
        }
        if self.frontier.len() < n {
            self.frontier.resize_with(n, || AtomicU64::new(0));
        }
        // One-byte cells make a plain wipe cheaper than epoch stamping:
        // these three memsets move ~5 bytes per node per lane, less than
        // one level's expansion traffic, and compile to straight-line
        // stores (the atomics are uncontended here — `&mut self`).
        for cell in &mut self.matrix[..cells] {
            *cell.get_mut() = INFINITE_LEVEL;
        }
        for cell in &mut self.central[..flags] {
            *cell.get_mut() = 0;
        }
        self.is_keyword[..kw].fill(0);
        for cell in &mut self.frontier[..n] {
            *cell.get_mut() = 0;
        }
        for (lane, query) in queries.iter().enumerate() {
            for (i, group) in query.groups.iter().enumerate() {
                for &v in &group.nodes {
                    let cell = self.cell(v.0, lane, i);
                    *self.matrix[cell].get_mut() = 0;
                    *self.frontier[v.index()].get_mut() |= 1 << lane;
                    self.is_keyword[lane * self.kw_words + v.index() / 64] |= 1 << (v.index() % 64);
                }
            }
        }
    }

    /// Keyword count `q_j` of lane `lane`.
    #[inline]
    pub fn lane_keywords(&self, lane: usize) -> usize {
        self.offsets[lane + 1] - self.offsets[lane]
    }

    /// Matrix cell index of `(v, lane, i)`: lane `lane`'s block starts at
    /// `n·offsets[lane]` and is `n × q_lane` row-major.
    #[inline]
    fn cell(&self, v: u32, lane: usize, i: usize) -> usize {
        let off = self.offsets[lane];
        self.n * off + v as usize * (self.offsets[lane + 1] - off) + i
    }

    /// Flag index of `(v, lane)` — lane-major for the same locality
    /// reason as the matrix.
    #[inline]
    fn flag(&self, v: u32, lane: usize) -> usize {
        lane * self.n + v as usize
    }

    /// Hitting level `M[v][lane][i]` (255 = not yet hit).
    #[inline]
    pub fn hit(&self, v: u32, lane: usize, i: usize) -> u8 {
        self.matrix[self.cell(v, lane, i)].load(Ordering::Relaxed)
    }

    /// Record a hit for lane `lane`: racing writers store the same byte
    /// (Theorem V.2), so a plain store suffices.
    #[inline]
    pub fn set_hit(&self, v: u32, lane: usize, i: usize, level: u8) {
        self.matrix[self.cell(v, lane, i)].store(level, Ordering::Relaxed);
    }

    /// `true` if lane `lane` has hit `v` in every BFS instance (Def. 3).
    #[inline]
    pub fn row_complete(&self, v: u32, lane: usize) -> bool {
        let base = self.cell(v, lane, 0);
        let q = self.lane_keywords(lane);
        self.matrix[base..base + q]
            .iter()
            .all(|m| m.load(Ordering::Relaxed) != INFINITE_LEVEL)
    }

    /// Set lane `lane`'s frontier bit on `v`. Concurrent markers land on
    /// the same word, so this is an atomic OR: bits from racing lanes
    /// merge losslessly, and re-marking is idempotent (Theorem V.2's
    /// argument — the final word is order-independent).
    #[inline]
    pub fn mark_frontier(&self, v: u32, lane: usize) {
        self.frontier[v as usize].fetch_or(1 << lane, Ordering::Relaxed);
    }

    /// Read and clear the whole lane mask on `v`. The load-then-swap
    /// shape keeps the common empty-node case a plain read; the enqueue
    /// scan is the only taker and runs between expansions, so nothing
    /// marks concurrently with the take.
    #[inline]
    pub fn take_frontier_mask(&self, v: u32) -> u64 {
        let cell = &self.frontier[v as usize];
        if cell.load(Ordering::Relaxed) == 0 {
            0
        } else {
            cell.swap(0, Ordering::Relaxed)
        }
    }

    /// `true` if lane `lane` identified `v` as a Central Node.
    #[inline]
    pub fn is_central(&self, v: u32, lane: usize) -> bool {
        self.central[self.flag(v, lane)].load(Ordering::Relaxed) != 0
    }

    /// Mark `v` central for lane `lane`, identified at `depth`.
    #[inline]
    pub fn mark_central(&self, v: u32, lane: usize, depth: u8) {
        debug_assert!(depth < u8::MAX);
        self.central[self.flag(v, lane)].store(depth + 1, Ordering::Relaxed);
    }

    /// The identification depth of `v` in lane `lane`, if central.
    #[inline]
    pub fn central_depth(&self, v: u32, lane: usize) -> Option<u8> {
        match self.central[self.flag(v, lane)].load(Ordering::Relaxed) {
            0 => None,
            d => Some(d - 1),
        }
    }

    /// `true` if `v` holds at least one of lane `lane`'s query keywords.
    #[inline]
    pub fn is_keyword_node(&self, v: u32, lane: usize) -> bool {
        self.is_keyword[lane * self.kw_words + v as usize / 64] >> (v % 64) & 1 != 0
    }
}

/// One lane of a [`BatchState`] through the single-query [`HitLevels`]
/// lens — what the unchanged top-down extractor reads.
pub struct LaneView<'a> {
    state: &'a BatchState,
    lane: usize,
}

impl HitLevels for LaneView<'_> {
    fn num_keywords(&self) -> usize {
        self.state.lane_keywords(self.lane)
    }
    fn hit(&self, v: u32, i: usize) -> u8 {
        self.state.hit(v, self.lane, i)
    }
    fn is_keyword_node(&self, v: u32) -> bool {
        self.state.is_keyword_node(v, self.lane)
    }
    fn central_depth(&self, v: u32) -> Option<u8> {
        self.state.central_depth(v, self.lane)
    }
}

// ---------------------------------------------------------------------------
// Lane-indexed expansion kernels (verbatim ports of crate::bottom_up)
// ---------------------------------------------------------------------------

/// Everything one lane's expansion step needs.
#[derive(Clone, Copy)]
struct LaneCtx<'a> {
    graph: &'a KnowledgeGraph,
    act: &'a ActivationMap<'a>,
    state: &'a BatchState,
    budget: &'a BudgetTracker,
    lane: usize,
    q: usize,
}

/// Expand one frontier node across all of one lane's BFS instances —
/// [`crate::bottom_up::expand_frontier`] with lane-indexed state.
#[inline]
fn expand_lane_frontier(ctx: &LaneCtx<'_>, f: u32, level: u8) {
    if ctx.budget.cancelled() {
        return;
    }
    ctx.budget.charge(ctx.q as u64);
    if ctx.state.is_central(f, ctx.lane) {
        return;
    }
    let vf = NodeId(f);
    if ctx.act.level(vf) > level {
        ctx.state.mark_frontier(f, ctx.lane);
        return;
    }
    for i in 0..ctx.q {
        expand_lane_instance(ctx, f, vf, i, level);
    }
}

/// Expand one `(frontier, instance)` pair of one lane —
/// [`crate::bottom_up::expand_work_item`] with lane-indexed state.
#[inline]
fn expand_lane_work_item(ctx: &LaneCtx<'_>, f: u32, i: usize, level: u8) {
    if ctx.budget.cancelled() {
        return;
    }
    ctx.budget.charge(1);
    if ctx.state.is_central(f, ctx.lane) {
        return;
    }
    let vf = NodeId(f);
    if ctx.act.level(vf) > level {
        ctx.state.mark_frontier(f, ctx.lane);
        return;
    }
    expand_lane_instance(ctx, f, vf, i, level);
}

/// Inner loop shared by both granularities (Alg. 2 lines 8–22, one lane).
#[inline]
fn expand_lane_instance(ctx: &LaneCtx<'_>, f: u32, vf: NodeId, i: usize, level: u8) {
    let state = ctx.state;
    let hf = state.hit(f, ctx.lane, i);
    if hf > level {
        return; // includes the ∞ sentinel
    }
    for adj in ctx.graph.neighbors(vf) {
        let n = adj.target().0;
        if state.hit(n, ctx.lane, i) != INFINITE_LEVEL {
            continue;
        }
        if !state.is_keyword_node(n, ctx.lane) && ctx.act.level(adj.target()) > level + 1 {
            state.mark_frontier(f, ctx.lane);
            continue;
        }
        state.set_hit(n, ctx.lane, i, level + 1);
        state.mark_frontier(n, ctx.lane);
    }
}

// ---------------------------------------------------------------------------
// The fused multi-query sweep
// ---------------------------------------------------------------------------

/// Where a lane stands during the fused sweep.
enum LaneStatus {
    /// Still expanding.
    Running,
    /// Bottom-up finished; top-down still owed.
    Finished(TerminationReason),
    /// Budget tripped; the error is the lane's verdict.
    Failed(SearchError),
}

/// The per-lane mutable run state of one fused sweep.
struct LaneRun<'a> {
    /// Index into the submitted request slice (demux address).
    slot: usize,
    /// Lane index inside the [`BatchState`].
    lane: usize,
    query: &'a ParsedQuery,
    params: &'a SearchParams,
    act: ActivationMap<'a>,
    tracker: BudgetTracker,
    q: usize,
    max_level: u8,
    profile: PhaseProfile,
    frontiers: Vec<u32>,
    newly: Vec<u32>,
    central_nodes: Vec<(NodeId, u8)>,
    peak_frontier: usize,
    trace: Vec<LevelTrace>,
    records: Option<Vec<TraceLevelRecord>>,
    last_level: u8,
    status: LaneStatus,
}

impl LaneRun<'_> {
    fn running(&self) -> bool {
        matches!(self.status, LaneStatus::Running)
    }
}

/// Per-lane pre-flight verdict.
enum PreFlight {
    /// Short-circuited before the sweep (empty query, early budget trip).
    Short(Result<SearchOutcome, SearchError>),
    /// Armed and ready to join the fused sweep.
    Join(BudgetTracker),
}

/// Executes batches of queries as fused multi-query sweeps on a leased
/// [`BatchState`], demultiplexing per-lane answers through the unchanged
/// top-down extractor. One executor serves one `(graph, backend)` pair;
/// states are pooled in a freelist and re-armed epoch-style per batch.
pub struct BatchExecutor {
    backend: ShardBackend,
    compute: rayon::ThreadPool,
    states: Mutex<Vec<BatchState>>,
    states_created: Counter,
    states_quarantined: Counter,
    batch_seq: AtomicU64,
}

/// RAII lease of a pooled [`BatchState`]: returns the state to the
/// freelist on drop, unless the thread is unwinding — a state abandoned
/// mid-panic is quarantined (dropped and counted) rather than refreelisted.
struct StateLease<'e> {
    exec: &'e BatchExecutor,
    state: Option<BatchState>,
}

impl Drop for StateLease<'_> {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            if std::thread::panicking() {
                self.exec.states_quarantined.inc();
            } else {
                lock(&self.exec.states).push(state);
            }
        }
    }
}

/// Lock a mutex, transparently recovering from poisoning (the guarded
/// data is either a state freelist or the batcher queue, both of which
/// are only mutated by push/pop/take — never left half-updated).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl BatchExecutor {
    /// An executor running fused sweeps with `backend`'s kernel mapping
    /// and thread count.
    pub fn new(backend: ShardBackend) -> Self {
        BatchExecutor {
            backend,
            compute: crate::engine::build_pool(backend.threads()),
            states: Mutex::new(Vec::new()),
            states_created: Counter::new(),
            states_quarantined: Counter::new(),
            batch_seq: AtomicU64::new(0),
        }
    }

    /// The backend this executor fuses for.
    pub fn backend(&self) -> ShardBackend {
        self.backend
    }

    /// States abandoned by a panicking batch (monitoring).
    pub fn states_quarantined(&self) -> u64 {
        self.states_quarantined.get()
    }

    fn lease_state(&self) -> StateLease<'_> {
        let state = lock(&self.states).pop().unwrap_or_else(|| {
            self.states_created.inc();
            BatchState::empty()
        });
        StateLease { exec: self, state: Some(state) }
    }

    /// Run one batch of requests as a single fused sweep, returning one
    /// [`LaneOutcome`] per request, in request order. Answers, stats,
    /// traces and errors per lane are byte-identical to running each
    /// request alone on the corresponding solo engine; traces additionally
    /// carry the batch id and co-batched count.
    pub fn run_batch(&self, graph: &KnowledgeGraph, requests: &[BatchRequest]) -> Vec<LaneOutcome> {
        let batch_id = self.batch_seq.fetch_add(1, Ordering::Relaxed);
        let co = requests.len();
        let mut results: Vec<Option<LaneOutcome>> = (0..co).map(|_| None).collect();

        // Per-lane pre-flight under per-lane catch_unwind: validation
        // panics and fault-injected panics are demoted to this lane's
        // outcome, never the batch's.
        let mut joiners: Vec<(usize, BudgetTracker)> = Vec::with_capacity(co);
        for (slot, req) in requests.iter().enumerate() {
            let name = self.backend.base_name();
            match catch_unwind(AssertUnwindSafe(|| pre_flight(graph, req, name))) {
                Err(payload) => results[slot] = Some(LaneOutcome::Panicked(payload)),
                Ok(PreFlight::Short(verdict)) => {
                    let verdict = verdict.map(|out| annotate(out, batch_id, co));
                    results[slot] = Some(LaneOutcome::Done(verdict));
                }
                Ok(PreFlight::Join(tracker)) => joiners.push((slot, tracker)),
            }
        }

        if !joiners.is_empty() {
            let mut lease = self.lease_state();
            let state = lease.state.as_mut().expect("lease holds a state until drop");
            let queries: Vec<&ParsedQuery> =
                joiners.iter().map(|&(slot, _)| &requests[slot].query).collect();
            let t = Instant::now();
            state.begin_batch(graph.num_nodes(), &queries);

            // Shared activation tables: fused lanes with the same
            // (alpha, average_distance) and no user-supplied table share
            // one precomputed per-node level map, so the per-neighbor
            // Eq. 3–5 math runs once per batch instead of once per lane.
            // A solo (single-joiner) batch keeps computing on the fly —
            // the table costs more to build than it saves there. The
            // table holds exactly the values `ActivationMap::Computed`
            // would return, so hit levels stay byte-identical.
            let mut act_tables: Vec<((u32, u64), Vec<u8>)> = Vec::new();
            if joiners.len() >= 2 {
                for &(slot, _) in &joiners {
                    let p = &requests[slot].params;
                    if p.explicit_activation.is_some() {
                        continue;
                    }
                    let key = (p.alpha.to_bits(), p.average_distance.to_bits());
                    if !act_tables.iter().any(|(k, _)| *k == key) {
                        let config = ActivationConfig {
                            alpha: p.alpha,
                            average_distance: p.average_distance,
                        };
                        let table = (0..graph.num_nodes() as u32)
                            .map(|v| config.level_for_weight(graph.weight(NodeId(v))))
                            .collect();
                        act_tables.push((key, table));
                    }
                }
            }
            let init = t.elapsed();

            let mut lanes: Vec<LaneRun<'_>> = joiners
                .into_iter()
                .enumerate()
                .map(|(lane, (slot, tracker))| {
                    let req = &requests[slot];
                    let act = match &req.params.explicit_activation {
                        Some(levels) => ActivationMap::Explicit(levels),
                        None => {
                            let key =
                                (req.params.alpha.to_bits(), req.params.average_distance.to_bits());
                            match act_tables.iter().find(|(k, _)| *k == key) {
                                Some((_, table)) => ActivationMap::Explicit(table),
                                None => ActivationMap::Computed {
                                    graph,
                                    config: ActivationConfig {
                                        alpha: req.params.alpha,
                                        average_distance: req.params.average_distance,
                                    },
                                },
                            }
                        }
                    };
                    let profile = PhaseProfile { init, ..PhaseProfile::default() };
                    LaneRun {
                        slot,
                        lane,
                        query: &req.query,
                        params: &req.params,
                        act,
                        tracker,
                        q: req.query.num_keywords(),
                        max_level: req.params.max_level.min(254),
                        profile,
                        frontiers: Vec::new(),
                        newly: Vec::new(),
                        central_nodes: Vec::new(),
                        peak_frontier: 0,
                        trace: Vec::new(),
                        records: req.params.trace.enabled().then(Vec::new),
                        last_level: 0,
                        status: LaneStatus::Running,
                    }
                })
                .collect();

            self.fused_sweep(graph, state, &mut lanes);

            for lane in lanes {
                let slot = lane.slot;
                let verdict =
                    self.finalize_lane(graph, state, lane).map(|out| annotate(out, batch_id, co));
                results[slot] = Some(LaneOutcome::Done(verdict));
            }
        }

        results
            .into_iter()
            .map(|r| r.expect("every request slot received an outcome"))
            .collect()
    }

    /// The fused level-synchronous loop: one node-space scan per level
    /// drains every lane's frontier bits at once, then each lane runs its
    /// identification and its own expansion back to back — the lane's
    /// matrix and flag block stays cache-hot between the two touches, and
    /// per-lane work never grows with the batch width.
    fn fused_sweep(&self, graph: &KnowledgeGraph, state: &BatchState, lanes: &mut [LaneRun<'_>]) {
        let n = graph.num_nodes();
        let mut level: u8 = 0;
        loop {
            // Per-lane level checkpoint (the solo driver's `checkpoint()?`):
            // a tripped budget fails only its own lane.
            for lane in lanes.iter_mut().filter(|l| l.running()) {
                if let Err(e) = lane.tracker.checkpoint() {
                    lane.status = LaneStatus::Failed(e);
                }
            }
            let mut running: Vec<&mut LaneRun<'_>> =
                lanes.iter_mut().filter(|l| l.running()).collect();
            if running.is_empty() {
                break;
            }

            // Fused enqueue: one ascending scan of the node space drains
            // every lane's frontier bits at once — a single mask word read
            // per node, whatever the batch width — preserving each lane's
            // solo (ascending node id) frontier order. Stale bits left by
            // lanes that already terminated are dropped by the
            // running-lane mask.
            let t = Instant::now();
            let mut running_mask = 0u64;
            for lane in running.iter_mut() {
                lane.frontiers.clear();
                running_mask |= 1 << lane.lane;
            }
            for v in 0..n as u32 {
                let mask = state.take_frontier_mask(v) & running_mask;
                if mask == 0 {
                    continue;
                }
                for lane in running.iter_mut() {
                    if mask & (1 << lane.lane) != 0 {
                        lane.frontiers.push(v);
                    }
                }
            }
            let enqueue = t.elapsed();

            // Lane-blocked identify + expand, each lane in the solo
            // driver's exact phase order. Lanes are data-independent
            // (disjoint matrix/flag blocks, disjoint frontier bits), so
            // running lane B's whole level after lane A's is one of the
            // schedules Theorem V.2 already covers.
            let mut any_expanded = false;
            for lane in running.iter_mut() {
                lane.profile.enqueue += enqueue;
                lane.peak_frontier = lane.peak_frontier.max(lane.frontiers.len());
                let t = Instant::now();
                if lane.frontiers.is_empty() {
                    lane.last_level = level;
                    lane.status = LaneStatus::Finished(TerminationReason::FrontierExhausted);
                    lane.profile.identify += t.elapsed();
                    continue;
                }
                lane.newly.clear();
                for &f in &lane.frontiers {
                    if !state.is_central(f, lane.lane) && state.row_complete(f, lane.lane) {
                        state.mark_central(f, lane.lane, level);
                        lane.newly.push(f);
                    }
                }
                lane.trace.push(LevelTrace {
                    level,
                    frontier: lane.frontiers.len(),
                    identified: lane.newly.len(),
                });
                if lane.records.is_some() {
                    let rec = observe_lane_level(state, lane, level);
                    if let Some(records) = lane.records.as_mut() {
                        records.push(rec);
                    }
                }
                let newly = std::mem::take(&mut lane.newly);
                lane.central_nodes.extend(newly.iter().map(|&f| (NodeId(f), level)));
                lane.newly = newly;
                if lane.central_nodes.len() >= lane.params.top_k {
                    lane.last_level = level;
                    lane.status = LaneStatus::Finished(TerminationReason::EnoughCentralNodes);
                } else if level >= lane.max_level {
                    lane.last_level = level;
                    lane.status = LaneStatus::Finished(TerminationReason::LevelCap);
                }
                lane.profile.identify += t.elapsed();
                if !lane.running() {
                    continue;
                }
                any_expanded = true;
                let before = lane.records.is_some().then(|| lane.tracker.expansions());
                let t = Instant::now();
                self.expand_lane(graph, state, lane, level);
                lane.profile.expansion += t.elapsed();
                if let Some(before) = before {
                    if let Some(last) = lane.records.as_mut().and_then(|r| r.last_mut()) {
                        last.expansions = lane.tracker.expansions() - before;
                        last.budget_remaining = lane.tracker.remaining();
                    }
                }
            }
            if !any_expanded {
                // Every lane terminated or failed this level; the sweep
                // is over.
                break;
            }
            level += 1;
        }
    }

    /// Expand one lane's frontier with the backend's kernel granularity —
    /// the solo engine's expansion phase verbatim, against lane-indexed
    /// state. The tracker sees exactly the solo charge sequence.
    fn expand_lane(
        &self,
        graph: &KnowledgeGraph,
        state: &BatchState,
        lane: &LaneRun<'_>,
        level: u8,
    ) {
        use rayon::prelude::*;
        let ctx = LaneCtx {
            graph,
            act: &lane.act,
            state,
            budget: &lane.tracker,
            lane: lane.lane,
            q: lane.q,
        };
        match self.backend {
            ShardBackend::Seq | ShardBackend::DynPar(_) => {
                for &f in &lane.frontiers {
                    expand_lane_frontier(&ctx, f, level);
                }
            }
            ShardBackend::ParCpu(_) => {
                self.compute.install(|| {
                    lane.frontiers.par_iter().for_each(|&f| expand_lane_frontier(&ctx, f, level))
                });
            }
            ShardBackend::GpuStyle(_) => {
                // The warp grid: one work item per (frontier, instance),
                // charging one unit each — the solo GPU-style totals.
                let items: Vec<(u32, usize)> =
                    lane.frontiers.iter().flat_map(|&f| (0..lane.q).map(move |i| (f, i))).collect();
                self.compute.install(|| {
                    items.par_iter().for_each(|&(f, i)| expand_lane_work_item(&ctx, f, i, level));
                });
            }
        }
    }

    /// Top-down per lane: extract, prune, rank through the unchanged
    /// single-query extractor reading this lane's [`LaneView`].
    fn finalize_lane(
        &self,
        graph: &KnowledgeGraph,
        state: &BatchState,
        mut lane: LaneRun<'_>,
    ) -> Result<SearchOutcome, SearchError> {
        let terminated = match lane.status {
            LaneStatus::Failed(e) => return Err(e),
            LaneStatus::Finished(term) => term,
            LaneStatus::Running => unreachable!("the sweep only ends once every lane settles"),
        };
        lane.central_nodes.truncate(lane.params.max_candidates);
        let view = LaneView { state, lane: lane.lane };
        let tracker = &lane.tracker;
        let act = &lane.act;
        let params = lane.params;
        let t = Instant::now();
        let extract_one = |&(c, d): &(NodeId, u8)| {
            if tracker.should_stop() {
                return None;
            }
            let e = top_down::extract(graph, act, &view, c.0, d);
            Some(top_down::prune_and_score(graph, &view, &e, params))
        };
        let candidates: Option<Vec<CentralGraph>> = match self.backend {
            ShardBackend::Seq | ShardBackend::DynPar(_) => {
                lane.central_nodes.iter().map(extract_one).collect()
            }
            ShardBackend::ParCpu(_) | ShardBackend::GpuStyle(_) => self.compute.install(|| {
                use rayon::prelude::*;
                lane.central_nodes.par_iter().map(extract_one).collect()
            }),
        };
        let Some(candidates) = candidates else {
            return Err(tracker
                .error()
                .expect("a stopped top-down stage implies a tripped budget"));
        };
        let answers = top_down::select_top_k(candidates, params);
        lane.profile.top_down = t.elapsed();

        let trace = lane.records.take().map(|levels| {
            Box::new(QueryTrace {
                engine: self.backend.base_name().to_string(),
                keywords: lane.query.num_keywords(),
                total_expansions: lane.tracker.expansions(),
                terminated: terminated == TerminationReason::LevelCap,
                levels,
                cache: None,
                session_id: None,
                session_queries: None,
                batch_id: None, // stamped by `annotate` with the batch id
                co_batched: None,
                phase_ms: PhaseMillis::from(&lane.profile),
                qid: None,
                cache_source_qid: None,
                shard_timelines: None,
            })
        });
        Ok(SearchOutcome {
            answers,
            profile: lane.profile,
            stats: SearchStats {
                last_level: lane.last_level,
                central_candidates: lane.central_nodes.len(),
                peak_frontier: lane.peak_frontier,
                trace: lane.trace,
            },
            trace,
        })
    }

    /// Run a batch against a sharded coordinator: each lane flows through
    /// the unchanged scatter-gather path (which already batches its local
    /// rounds across shards), sequentially, with uniform batch
    /// annotations. Fusing lanes *across* shard boundaries is out of
    /// scope (see DESIGN.md).
    pub fn run_sharded_batch(
        &self,
        sharded: &ShardedSearch,
        graph: &KnowledgeGraph,
        requests: &[BatchRequest],
    ) -> Vec<LaneOutcome> {
        let batch_id = self.batch_seq.fetch_add(1, Ordering::Relaxed);
        let co = requests.len();
        requests
            .iter()
            .map(|req| {
                let run = catch_unwind(AssertUnwindSafe(|| {
                    sharded.try_search(graph, &req.query, &req.params, &req.budget)
                }));
                match run {
                    Ok(verdict) => {
                        LaneOutcome::Done(verdict.map(|out| annotate(out, batch_id, co)))
                    }
                    Err(payload) => LaneOutcome::Panicked(payload),
                }
            })
            .collect()
    }
}

/// Stamp a finished outcome's trace with its batch id and co-batched
/// count (the only fields where batched execution is visible).
fn annotate(mut out: SearchOutcome, batch_id: u64, co: usize) -> SearchOutcome {
    if let Some(trace) = out.trace.as_mut() {
        trace.batch_id = Some(batch_id);
        trace.co_batched = Some(co);
    }
    out
}

/// The solo driver's pre-search sequence for one lane: validate, arm the
/// tracker, checkpoint, inject faults, short-circuit empty queries.
/// Mirrors `run_matrix_search` up to the state arming.
fn pre_flight(graph: &KnowledgeGraph, req: &BatchRequest, name: &str) -> PreFlight {
    if let Err(e) = req.params.validate() {
        panic!("invalid search parameters: {e}");
    }
    if let Some(levels) = &req.params.explicit_activation {
        // The solo path would panic on the first out-of-range node access
        // mid-expansion; fail fast here so the panic stays on this lane
        // instead of unwinding the shared sweep.
        assert!(
            levels.len() >= graph.num_nodes(),
            "explicit activation table holds {} levels for {} nodes",
            levels.len(),
            graph.num_nodes()
        );
    }
    let tracker = if req.params.trace.enabled() {
        req.budget.start_counting()
    } else {
        req.budget.start()
    };
    if let Err(e) = tracker.checkpoint() {
        return PreFlight::Short(Err(e));
    }
    #[cfg(feature = "fault-inject")]
    if let Err(e) = crate::fault::inject(&req.query, &tracker) {
        return PreFlight::Short(Err(e));
    }
    if req.query.is_empty() {
        let mut out = SearchOutcome::default();
        if req.params.trace.enabled() {
            out.trace =
                Some(Box::new(QueryTrace { engine: name.to_string(), ..QueryTrace::default() }));
        }
        return PreFlight::Short(Ok(out));
    }
    PreFlight::Join(tracker)
}

/// Rich trace record for one lane's level — the lane-indexed
/// [`crate::bottom_up`] `observe_level`.
fn observe_lane_level(state: &BatchState, lane: &LaneRun<'_>, level: u8) -> TraceLevelRecord {
    let mut new_hits = 0usize;
    let mut activation_deferred = 0usize;
    for &f in &lane.frontiers {
        for i in 0..lane.q {
            if state.hit(f, lane.lane, i) == level {
                new_hits += 1;
            }
        }
        if lane.act.level(NodeId(f)) > level {
            activation_deferred += 1;
        }
    }
    TraceLevelRecord {
        level: u32::from(level),
        frontier: lane.frontiers.len(),
        identified: lane.newly.len(),
        new_hits,
        activation_deferred,
        expansions: 0, // filled in after this level's expansion runs
        budget_remaining: lane.tracker.remaining(),
    }
}

// ---------------------------------------------------------------------------
// The Batcher: window-bounded leader/follower collection
// ---------------------------------------------------------------------------

/// Shared collection queue: the leader claims (a prefix of) it when the
/// batch closes. Tickets identify entries so a still-queued follower can
/// tell "claimed by a leader" from "waiting for one".
struct Collector {
    queue: Vec<(u64, BatchRequest, mpsc::Sender<LaneOutcome>)>,
    next_ticket: u64,
    leader_active: bool,
}

/// Clears `leader_active` and wakes every waiter when the leader is done
/// — including by panic, so queued followers always get a chance to
/// promote themselves instead of waiting forever.
struct LeaderGuard<'b> {
    batcher: &'b Batcher,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        lock(&self.batcher.inner).leader_active = false;
        self.batcher.cv.notify_all();
    }
}

/// Collects concurrently submitted queries into batches: the first
/// submitter of a batch becomes its *leader*, waits up to
/// [`BatchConfig::window`] for co-travellers (or until
/// [`BatchConfig::max_batch`] are pending, or the batcher drains), then
/// runs the whole batch on its own thread and demultiplexes the outcomes
/// back to each submitter exactly once.
pub struct Batcher {
    cfg: BatchConfig,
    inner: Mutex<Collector>,
    cv: Condvar,
    draining: AtomicBool,
    batches: Counter,
    queries: Counter,
    enqueued: Counter,
    delivered: Counter,
    size_hist: LogHistogram,
    fill_hist: LogHistogram,
}

impl Batcher {
    /// A batcher with the given window and size bound.
    pub fn new(cfg: BatchConfig) -> Self {
        Batcher {
            cfg,
            inner: Mutex::new(Collector {
                queue: Vec::new(),
                next_ticket: 0,
                leader_active: false,
            }),
            cv: Condvar::new(),
            draining: AtomicBool::new(false),
            batches: Counter::new(),
            queries: Counter::new(),
            enqueued: Counter::new(),
            delivered: Counter::new(),
            size_hist: LogHistogram::new(),
            fill_hist: LogHistogram::new(),
        }
    }

    /// The configuration this batcher runs with.
    pub fn config(&self) -> BatchConfig {
        self.cfg
    }

    /// Submit one request and block until its outcome is ready. `run`
    /// executes a whole batch (this request plus any co-batched ones) and
    /// is called by whichever submitter ends up leading; it must return
    /// exactly one outcome per request, in request order.
    ///
    /// # Panics
    /// Re-raises a panic of the batch runner on the leader's thread;
    /// followers of a panicked batch receive [`LaneOutcome::Panicked`].
    pub fn submit<F>(&self, req: BatchRequest, run: F) -> LaneOutcome
    where
        F: FnOnce(Vec<BatchRequest>) -> Vec<LaneOutcome>,
    {
        self.enqueued.inc();
        if self.cfg.max_batch <= 1 || self.cfg.window.is_zero() {
            // Degenerate config: no batch can form, run alone. (The
            // engine facade bypasses the batcher entirely at window 0;
            // this path keeps the accounting exact if one is built
            // anyway.)
            let out = self.run_closed_batch(vec![req], Vec::new(), Duration::ZERO, run);
            self.delivered.inc();
            return out;
        }

        let mut inner = lock(&self.inner);
        let req = if inner.leader_active {
            // Follower: enqueue, then wait to be claimed by a closing
            // leader — or, if the leader finishes (or dies) without
            // claiming this entry, promote to leader of the next batch.
            // The current leader keeps `leader_active` through its whole
            // execution, so arrivals during a running batch pool up here
            // and fuse into one wide follow-up batch instead of racing
            // off as concurrent singletons.
            let (tx, rx) = mpsc::channel();
            let ticket = inner.next_ticket;
            inner.next_ticket += 1;
            inner.queue.push((ticket, req, tx));
            if inner.queue.len() + 1 >= self.cfg.max_batch {
                self.cv.notify_all();
            }
            loop {
                match inner.queue.iter().position(|(t, _, _)| *t == ticket) {
                    None => {
                        // Claimed: the leader owns this entry and will
                        // send exactly one outcome (or drop the sender
                        // if it panics).
                        drop(inner);
                        let out = rx.recv().unwrap_or_else(|_| {
                            LaneOutcome::Panicked(Box::new("co-batched batch leader panicked"))
                        });
                        self.delivered.inc();
                        return out;
                    }
                    Some(pos) if !inner.leader_active => {
                        // No leader left and this entry is still queued:
                        // take the lead ourselves.
                        let (_, req, _tx) = inner.queue.remove(pos);
                        break req;
                    }
                    Some(_) => {
                        inner =
                            self.cv.wait(inner).unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                }
            }
        } else {
            req
        };

        // Leader (first arrival, or a promoted follower): hold the
        // collection window open, then claim at most `max_batch - 1`
        // queued co-travellers — oldest first; any overflow stays queued
        // for the next leader.
        inner.leader_active = true;
        let guard = LeaderGuard { batcher: self };
        let opened = Instant::now();
        loop {
            let pending = inner.queue.len() + 1;
            let draining = self.draining.load(Ordering::Relaxed);
            if close_reason(pending, opened.elapsed(), draining, &self.cfg).is_some() {
                break;
            }
            let remaining = self.cfg.window.saturating_sub(opened.elapsed());
            inner = self
                .cv
                .wait_timeout(inner, remaining)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
        let claim = inner.queue.len().min(self.cfg.max_batch - 1);
        let followers: Vec<_> = inner.queue.drain(..claim).collect();
        drop(inner);
        // Wake claimed followers so they settle onto their channels (and
        // unclaimed ones re-check, see a live leader, and keep waiting).
        self.cv.notify_all();

        let mut reqs = Vec::with_capacity(1 + followers.len());
        reqs.push(req);
        let mut txs = Vec::with_capacity(followers.len());
        for (_, r, tx) in followers {
            reqs.push(r);
            txs.push(tx);
        }
        // `leader_active` stays set while the batch runs; the guard
        // clears it (and notifies) afterwards — panic included.
        let out = self.run_closed_batch(reqs, txs, opened.elapsed(), run);
        drop(guard);
        self.delivered.inc();
        out
    }

    /// Run a closed batch, record its metrics, and demux the outcomes:
    /// slot 0 (the leader's own request) is returned, slots 1.. are sent
    /// to the followers' channels.
    fn run_closed_batch<F>(
        &self,
        reqs: Vec<BatchRequest>,
        txs: Vec<mpsc::Sender<LaneOutcome>>,
        fill: Duration,
        run: F,
    ) -> LaneOutcome
    where
        F: FnOnce(Vec<BatchRequest>) -> Vec<LaneOutcome>,
    {
        let co = reqs.len();
        self.batches.inc();
        self.queries.add(co as u64);
        self.size_hist.record(co as u64);
        self.fill_hist.record(u64::try_from(fill.as_micros()).unwrap_or(u64::MAX));
        match catch_unwind(AssertUnwindSafe(|| run(reqs))) {
            Ok(mut outs) => {
                debug_assert_eq!(outs.len(), co, "batch runner must answer every request");
                let mut rest = outs.split_off(1.min(outs.len()));
                let mine = outs.pop().unwrap_or_else(|| {
                    LaneOutcome::Panicked(Box::new("batch runner returned no outcomes"))
                });
                for tx in txs {
                    let out = if rest.is_empty() {
                        LaneOutcome::Panicked(Box::new("batch runner under-delivered"))
                    } else {
                        rest.remove(0)
                    };
                    let _ = tx.send(out);
                }
                mine
            }
            Err(payload) => {
                // Dropping the senders fails every follower's `recv`,
                // which they surface as a panicked lane; the leader
                // re-raises the original payload.
                drop(txs);
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Start draining: pending and future collection windows close
    /// immediately ([`CloseReason::QueueDrained`]), so no submitter waits
    /// out a window during shutdown.
    pub fn flush(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// Monitoring snapshot.
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            window_us: u64::try_from(self.cfg.window.as_micros()).unwrap_or(u64::MAX),
            max_batch: self.cfg.max_batch,
            batches: self.batches.get(),
            queries: self.queries.get(),
            enqueued: self.enqueued.get(),
            delivered: self.delivered.get(),
            size: self.size_hist.snapshot(),
            fill_us: self.fill_hist.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{
        DynParEngine, GpuStyleEngine, KeywordSearchEngine, ParCpuEngine, SeqEngine,
    };
    use crate::trace::TraceLevel;
    use kgraph::GraphBuilder;
    use proptest::prelude::*;
    use std::sync::Arc;
    use textindex::InvertedIndex;

    fn fixture() -> (KnowledgeGraph, InvertedIndex) {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", "xml standard");
        let r = b.add_node("r", "rdf model");
        let s = b.add_node("s", "sql database");
        let q = b.add_node("q", "query language");
        let h = b.add_node("h", "hub");
        b.add_edge(x, q, "e");
        b.add_edge(r, q, "e");
        b.add_edge(s, q, "e");
        b.add_edge(x, h, "e");
        b.add_edge(r, h, "e");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        (g, idx)
    }

    fn request(idx: &InvertedIndex, raw: &str) -> BatchRequest {
        BatchRequest {
            query: ParsedQuery::parse(idx, raw),
            params: SearchParams::default().with_average_distance(1.0),
            budget: QueryBudget::unlimited(),
        }
    }

    fn solo_engine(backend: ShardBackend) -> Box<dyn KeywordSearchEngine> {
        match backend {
            ShardBackend::Seq => Box::new(SeqEngine::new()),
            ShardBackend::ParCpu(t) => Box::new(ParCpuEngine::new(t)),
            ShardBackend::GpuStyle(t) => Box::new(GpuStyleEngine::new(t)),
            ShardBackend::DynPar(t) => Box::new(DynParEngine::new(t)),
        }
    }

    fn assert_same_outcome(batched: &SearchOutcome, solo: &SearchOutcome, tag: &str) {
        assert_eq!(batched.answers.len(), solo.answers.len(), "{tag}: answer count");
        for (a, b) in batched.answers.iter().zip(&solo.answers) {
            assert_eq!(a.central, b.central, "{tag}");
            assert_eq!(a.depth, b.depth, "{tag}");
            assert_eq!(a.nodes, b.nodes, "{tag}");
            assert_eq!(a.edges, b.edges, "{tag}");
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "{tag}: score bits");
        }
        assert_eq!(batched.stats.last_level, solo.stats.last_level, "{tag}");
        assert_eq!(batched.stats.central_candidates, solo.stats.central_candidates, "{tag}");
        assert_eq!(batched.stats.peak_frontier, solo.stats.peak_frontier, "{tag}");
        assert_eq!(batched.stats.trace, solo.stats.trace, "{tag}");
    }

    #[test]
    fn batched_answers_match_solo_on_all_backends() {
        let (g, idx) = fixture();
        let raws = ["xml rdf", "sql xml", "rdf query", "xml rdf sql"];
        for backend in [
            ShardBackend::Seq,
            ShardBackend::ParCpu(3),
            ShardBackend::GpuStyle(3),
            ShardBackend::DynPar(3),
        ] {
            let exec = BatchExecutor::new(backend);
            let reqs: Vec<BatchRequest> = raws.iter().map(|r| request(&idx, r)).collect();
            let outs = exec.run_batch(&g, &reqs);
            let engine = solo_engine(backend);
            for (raw, out) in raws.iter().zip(outs) {
                let LaneOutcome::Done(Ok(batched)) = out else {
                    panic!("{backend:?} {raw}: batched lane failed");
                };
                let solo = engine.search(&g, &ParsedQuery::parse(&idx, raw), &reqs[0].params);
                assert_same_outcome(&batched, &solo, &format!("{backend:?} {raw}"));
            }
        }
    }

    #[test]
    fn traced_batches_match_solo_traces_modulo_annotations() {
        let (g, idx) = fixture();
        let exec = BatchExecutor::new(ShardBackend::Seq);
        let mut reqs: Vec<BatchRequest> = ["xml rdf", "sql query", "xml sql rdf"]
            .iter()
            .map(|r| request(&idx, r))
            .collect();
        for r in &mut reqs {
            r.params.trace = TraceLevel::Full;
        }
        let outs = exec.run_batch(&g, &reqs);
        let engine = SeqEngine::new();
        for (req, out) in reqs.iter().zip(outs) {
            let LaneOutcome::Done(Ok(batched)) = out else {
                panic!("lane failed")
            };
            let solo = engine.search(&g, &req.query, &req.params);
            let mut bt = *batched.trace.expect("traced");
            let st = *solo.trace.expect("traced");
            assert_eq!(bt.batch_id, Some(0), "first batch of this executor");
            assert_eq!(bt.co_batched, Some(3));
            // The annotations and wall-clock phases are the only deltas.
            bt.batch_id = None;
            bt.co_batched = None;
            bt.phase_ms = st.phase_ms;
            assert_eq!(bt, st);
        }
    }

    #[test]
    fn budget_isolation_one_exhausted_lane_never_perturbs_the_rest() {
        let (g, idx) = fixture();
        let exec = BatchExecutor::new(ShardBackend::Seq);
        let mut reqs: Vec<BatchRequest> =
            ["xml rdf", "sql xml", "rdf query"].iter().map(|r| request(&idx, r)).collect();
        // Lane 1 gets a 1-unit expansion cap: it must fail, alone.
        reqs[1].budget = QueryBudget::unlimited().with_max_expansions(1);
        let outs = exec.run_batch(&g, &reqs);
        let engine = SeqEngine::new();
        for (slot, (req, out)) in reqs.iter().zip(outs).enumerate() {
            let LaneOutcome::Done(verdict) = out else {
                panic!("no panic expected")
            };
            if slot == 1 {
                assert_eq!(verdict.unwrap_err(), SearchError::BudgetExhausted { limit: 1 });
            } else {
                let batched = verdict.expect("healthy lane");
                let solo = engine.search(&g, &req.query, &req.params);
                assert_same_outcome(&batched, &solo, &format!("lane {slot}"));
            }
        }
    }

    #[test]
    fn empty_and_matching_queries_share_a_batch() {
        let (g, idx) = fixture();
        let exec = BatchExecutor::new(ShardBackend::Seq);
        let reqs =
            vec![request(&idx, "zzz unknown"), request(&idx, "xml rdf"), request(&idx, "qqq")];
        let outs = exec.run_batch(&g, &reqs);
        assert_eq!(outs.len(), 3);
        let LaneOutcome::Done(Ok(empty)) = &outs[0] else {
            panic!()
        };
        assert!(empty.answers.is_empty());
        let LaneOutcome::Done(Ok(real)) = &outs[1] else {
            panic!()
        };
        assert!(!real.answers.is_empty());
    }

    #[test]
    fn state_freelist_reuses_and_quarantines() {
        let (g, idx) = fixture();
        let exec = BatchExecutor::new(ShardBackend::Seq);
        let reqs = vec![request(&idx, "xml rdf")];
        exec.run_batch(&g, &reqs);
        assert_eq!(lock(&exec.states).len(), 1, "state returned to the freelist");
        exec.run_batch(&g, &reqs);
        assert_eq!(lock(&exec.states).len(), 1, "state reused, not duplicated");
        assert_eq!(exec.states_created.get(), 1);
        assert_eq!(exec.states_quarantined(), 0);
    }

    #[test]
    fn invalid_params_panic_stays_on_its_lane() {
        let (g, idx) = fixture();
        let exec = BatchExecutor::new(ShardBackend::Seq);
        let mut bad = request(&idx, "xml rdf");
        bad.params.alpha = 2.0; // fails validate() → solo path panics
        let reqs = vec![request(&idx, "sql query"), bad, request(&idx, "xml sql")];
        let outs = exec.run_batch(&g, &reqs);
        assert!(matches!(outs[0], LaneOutcome::Done(Ok(_))));
        assert!(matches!(outs[1], LaneOutcome::Panicked(_)));
        assert!(matches!(outs[2], LaneOutcome::Done(Ok(_))));
    }

    #[test]
    fn batch_state_rearm_isolates_batches() {
        let (g, idx) = fixture();
        let q1 = ParsedQuery::parse(&idx, "xml rdf");
        let q2 = ParsedQuery::parse(&idx, "sql query");
        let mut s = BatchState::empty();
        s.begin_batch(g.num_nodes(), &[&q1, &q2]);
        s.set_hit(4, 0, 0, 3);
        s.mark_central(4, 1, 2);
        assert_eq!(s.hit(4, 0, 0), 3);
        assert!(s.is_central(4, 1));
        s.begin_batch(g.num_nodes(), &[&q2]);
        assert!(!s.is_central(4, 0), "previous batch's marks must not leak");
        assert_eq!(s.hit(0, 0, 0), INFINITE_LEVEL, "x is not a source of sql");
        assert_eq!(s.hit(2, 0, 0), 0, "s is the sql source");
    }

    #[test]
    fn batch_state_rearm_survives_width_changes() {
        let (g, idx) = fixture();
        let q = ParsedQuery::parse(&idx, "xml rdf");
        let wide: Vec<&ParsedQuery> = (0..8).map(|_| &q).collect();
        let mut s = BatchState::empty();
        s.begin_batch(g.num_nodes(), &wide);
        for lane in 0..8 {
            s.set_hit(4, lane, 1, 9);
            s.mark_central(4, lane, 3);
        }
        // Narrowing reuses the same (larger) buffers; nothing from the
        // wide batch may leak through, whatever the lane now maps to.
        s.begin_batch(g.num_nodes(), &[&q]);
        assert_eq!(s.hit(4, 0, 1), INFINITE_LEVEL, "wide-batch write must not survive");
        assert!(!s.is_central(4, 0));
        assert_eq!(s.hit(0, 0, 0), 0, "sources re-seeded after the re-arm");
        assert!(s.is_keyword_node(0, 0));
        assert!(!s.is_keyword_node(2, 0), "s holds no keyword of \"xml rdf\"");
    }

    // --- Batcher unit + model tests ---------------------------------------

    fn echo_run(reqs: Vec<BatchRequest>) -> Vec<LaneOutcome> {
        reqs.iter().map(|_| LaneOutcome::Done(Ok(SearchOutcome::default()))).collect()
    }

    #[test]
    fn close_reason_priorities() {
        let cfg = BatchConfig::new(Duration::from_millis(5), 4);
        assert_eq!(close_reason(1, Duration::ZERO, false, &cfg), None);
        assert_eq!(close_reason(4, Duration::ZERO, false, &cfg), Some(CloseReason::BatchFull));
        assert_eq!(close_reason(1, Duration::ZERO, true, &cfg), Some(CloseReason::QueueDrained));
        assert_eq!(
            close_reason(1, Duration::from_millis(5), false, &cfg),
            Some(CloseReason::WindowElapsed)
        );
        // Full wins over draining wins over the window.
        assert_eq!(
            close_reason(4, Duration::from_secs(1), true, &cfg),
            Some(CloseReason::BatchFull)
        );
        assert_eq!(
            close_reason(2, Duration::from_secs(1), true, &cfg),
            Some(CloseReason::QueueDrained)
        );
    }

    #[test]
    fn solo_submit_runs_as_a_batch_of_one() {
        let b = Batcher::new(BatchConfig::new(Duration::ZERO, 16));
        let (g, idx) = fixture();
        let exec = BatchExecutor::new(ShardBackend::Seq);
        let out = b.submit(request(&idx, "xml rdf"), |reqs| exec.run_batch(&g, &reqs));
        assert!(matches!(out, LaneOutcome::Done(Ok(_))));
        let stats = b.stats();
        assert_eq!((stats.batches, stats.queries), (1, 1));
        assert_eq!((stats.enqueued, stats.delivered), (1, 1));
        assert_eq!(stats.size.percentile(1.0), 1);
    }

    #[test]
    fn concurrent_submits_fuse_into_one_batch() {
        let b = Arc::new(Batcher::new(BatchConfig::new(Duration::from_millis(300), 8)));
        let (g, idx) = fixture();
        let exec = Arc::new(BatchExecutor::new(ShardBackend::Seq));
        let g = Arc::new(g);
        let mut handles = Vec::new();
        for raw in ["xml rdf", "sql xml", "rdf query", "xml sql rdf"] {
            let (b, exec, g, req) =
                (Arc::clone(&b), Arc::clone(&exec), Arc::clone(&g), request(&idx, raw));
            handles
                .push(std::thread::spawn(move || b.submit(req, |reqs| exec.run_batch(&g, &reqs))));
        }
        for h in handles {
            assert!(matches!(h.join().unwrap(), LaneOutcome::Done(Ok(_))));
        }
        let stats = b.stats();
        assert_eq!(stats.queries, 4);
        assert_eq!(stats.enqueued, 4);
        assert_eq!(stats.delivered, 4, "demux is exactly-once");
        assert!(
            stats.batches < 4,
            "a 300ms window must fuse at least two of the four ({} batches)",
            stats.batches
        );
    }

    #[test]
    fn max_batch_closes_the_window_early() {
        let b = Arc::new(Batcher::new(BatchConfig::new(Duration::from_secs(30), 2)));
        let (g, idx) = fixture();
        let exec = Arc::new(BatchExecutor::new(ShardBackend::Seq));
        let g = Arc::new(g);
        let started = Instant::now();
        let mut handles = Vec::new();
        for raw in ["xml rdf", "sql xml"] {
            let (b, exec, g, req) =
                (Arc::clone(&b), Arc::clone(&exec), Arc::clone(&g), request(&idx, raw));
            handles
                .push(std::thread::spawn(move || b.submit(req, |reqs| exec.run_batch(&g, &reqs))));
        }
        for h in handles {
            assert!(matches!(h.join().unwrap(), LaneOutcome::Done(Ok(_))));
        }
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "a full batch must not wait out a 30s window"
        );
        assert_eq!(b.stats().batches, 1);
    }

    #[test]
    fn flush_closes_a_waiting_leader_immediately() {
        let b = Arc::new(Batcher::new(BatchConfig::new(Duration::from_secs(30), 8)));
        let (g, idx) = fixture();
        let exec = Arc::new(BatchExecutor::new(ShardBackend::Seq));
        let g = Arc::new(g);
        let leader = {
            let (b, exec, g, req) =
                (Arc::clone(&b), Arc::clone(&exec), Arc::clone(&g), request(&idx, "xml rdf"));
            std::thread::spawn(move || b.submit(req, |reqs| exec.run_batch(&g, &reqs)))
        };
        // Wait for the leader to open its window, then drain.
        while b.stats().enqueued == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(20));
        let started = Instant::now();
        b.flush();
        assert!(matches!(leader.join().unwrap(), LaneOutcome::Done(Ok(_))));
        assert!(started.elapsed() < Duration::from_secs(10), "flush must close the window");
        let stats = b.stats();
        assert_eq!((stats.enqueued, stats.delivered), (1, 1));
    }

    #[test]
    fn panicking_runner_fails_leader_and_followers() {
        let b = Batcher::new(BatchConfig::new(Duration::ZERO, 1));
        let (_, idx) = fixture();
        let result = catch_unwind(AssertUnwindSafe(|| {
            b.submit(request(&idx, "xml"), |_| panic!("runner exploded"))
        }));
        assert!(result.is_err(), "the leader re-raises the runner's panic");
        let stats = b.stats();
        assert_eq!(stats.enqueued, 1);
        assert_eq!(stats.delivered, 0, "a panicked lane is not a delivery");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        /// Model check: the close oracle fires exactly when one of its
        /// three conditions holds, and names the highest-priority one.
        #[test]
        fn close_reason_model(
            pending in 0usize..130,
            waited_us in 0u64..2_000,
            window_us in 0u64..2_000,
            max_batch in 1usize..100,
            draining in true, // the shim: any bool literal is a coin flip
        ) {
            let cfg = BatchConfig::new(Duration::from_micros(window_us), max_batch);
            let waited = Duration::from_micros(waited_us);
            let got = close_reason(pending, waited, draining, &cfg);
            let full = pending >= cfg.max_batch;
            let timed = waited >= cfg.window;
            let expected = if full {
                Some(CloseReason::BatchFull)
            } else if draining {
                Some(CloseReason::QueueDrained)
            } else if timed {
                Some(CloseReason::WindowElapsed)
            } else {
                None
            };
            prop_assert_eq!(got, expected);
        }

        /// Model check: demux accounting is exactly-once over arbitrary
        /// interleavings of submitter threads and batch sizes.
        #[test]
        fn demux_exactly_once(
            submitters in 1usize..10,
            max_batch in 1usize..6,
            window_ms in 0u64..20,
        ) {
            let b = Arc::new(Batcher::new(BatchConfig::new(
                Duration::from_millis(window_ms),
                max_batch,
            )));
            let handles: Vec<_> = (0..submitters)
                .map(|_| {
                    let b = Arc::clone(&b);
                    std::thread::spawn(move || {
                        let req = BatchRequest {
                            query: ParsedQuery::default(),
                            params: SearchParams::default(),
                            budget: QueryBudget::unlimited(),
                        };
                        b.submit(req, echo_run)
                    })
                })
                .collect();
            for h in handles {
                prop_assert!(matches!(h.join().unwrap(), LaneOutcome::Done(Ok(_))));
            }
            let stats = b.stats();
            prop_assert_eq!(stats.enqueued, submitters as u64);
            prop_assert_eq!(stats.delivered, submitters as u64);
            prop_assert_eq!(stats.queries, submitters as u64);
            prop_assert_eq!(stats.size.count, stats.batches);
            prop_assert!(stats.batches >= submitters.div_ceil(MAX_BATCH_LANES) as u64);
        }
    }
}
