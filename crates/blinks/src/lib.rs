//! # blinks — a BLINKS-style indexed keyword-search baseline
//!
//! BLINKS (He, Wang, Yang, Yu — SIGMOD'07) answers keyword queries with
//! rooted trees like BANKS, but accelerates search with two precomputed
//! structures:
//!
//! * the **node–keyword map** (NKM): for every node and every keyword in
//!   the corpus, the shortest distance to the nearest node containing it;
//! * **keyword–node lists** (KNL): per keyword, all nodes sorted by that
//!   distance.
//!
//! The reproduced paper evaluates against BANKS-II instead of BLINKS for
//! one reason (Sec. VI, *Competitors*): these indexes "are infeasible on
//! Wikidata KB with 30 million nodes and over 5 million keywords" — the
//! NKM alone is `|V| × |keywords|`. This crate implements BLINKS faithfully
//! enough to *measure* that argument: [`NodeKeywordIndex::build`] really
//! materializes the full NKM (one multi-source BFS per distinct term), and
//! the `blinks_index_cost` harness in `wikisearch-bench` shows its
//! super-linear growth against the Central Graph engine's O(q·|V| + |E|)
//! running storage (Table IV).
//!
//! With the index in hand, queries are fast — [`BlinksSearch`] scores all
//! candidate roots with `Σ_i dist(v, T_i)` directly from the NKM — which
//! is exactly the trade BLINKS makes and Wikidata-scale KBs cannot afford.

#![warn(missing_docs)]

pub mod index;
pub mod search;

pub use index::NodeKeywordIndex;
pub use search::{BlinksAnswer, BlinksSearch};
