//! Indexed parallel iterators: sources (slices, ranges, vectors) compose
//! with `copied`/`map`/`filter` adapters; `for_each`/`collect` drive the
//! pipeline through [`crate::bridge`].

use std::sync::Mutex;

/// An indexed source of items: random access by position, where a
/// position may produce nothing (after `filter`).
pub trait ParallelIterator: Sized + Sync {
    /// Item produced by the pipeline.
    type Item: Send;

    /// Upper bound of the index space.
    fn range_len(&self) -> usize;

    /// Produce the item at index `i`, if the pipeline keeps it.
    fn produce(&self, i: usize) -> Option<Self::Item>;

    /// Dereference-copy the items (`&T → T`).
    fn copied<'a, T>(self) -> Copied<Self>
    where
        T: 'a + Copy + Send + Sync,
        Self: ParallelIterator<Item = &'a T>,
    {
        Copied { base: self }
    }

    /// Clone the items (`&T → T`).
    fn cloned<'a, T>(self) -> Cloned<Self>
    where
        T: 'a + Clone + Send + Sync,
        Self: ParallelIterator<Item = &'a T>,
    {
        Cloned { base: self }
    }

    /// Transform each item.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Keep items satisfying `pred`.
    fn filter<F: Fn(&Self::Item) -> bool + Sync>(self, pred: F) -> Filter<Self, F> {
        Filter { base: self, pred }
    }

    /// Run `f` on every item, in parallel over the ambient pool.
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        crate::bridge(self.range_len(), &|lo, hi| {
            for i in lo..hi {
                if let Some(item) = self.produce(i) {
                    f(item);
                }
            }
        });
    }

    /// Number of items the pipeline keeps.
    fn count(self) -> usize {
        let counter = std::sync::atomic::AtomicUsize::new(0);
        crate::bridge(self.range_len(), &|lo, hi| {
            let mut local = 0usize;
            for i in lo..hi {
                if self.produce(i).is_some() {
                    local += 1;
                }
            }
            counter.fetch_add(local, std::sync::atomic::Ordering::Relaxed);
        });
        counter.into_inner()
    }

    /// Collect kept items, preserving index order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Collection types a parallel iterator can gather into.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Gather all produced items in index order.
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self {
        // Each block pushes `(lo, items)`; blocks are then concatenated in
        // ascending `lo`, which equals sequential order.
        let buckets: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());
        crate::bridge(iter.range_len(), &|lo, hi| {
            let mut local = Vec::new();
            for i in lo..hi {
                if let Some(item) = iter.produce(i) {
                    local.push(item);
                }
            }
            buckets.lock().unwrap().push((lo, local));
        });
        let mut buckets = buckets.into_inner().unwrap();
        buckets.sort_unstable_by_key(|&(lo, _)| lo);
        let mut out = Vec::with_capacity(buckets.iter().map(|(_, b)| b.len()).sum());
        for (_, mut bucket) in buckets.drain(..) {
            out.append(&mut bucket);
        }
        out
    }
}

impl<T: Send> FromParallelIterator<Option<T>> for Option<Vec<T>> {
    /// Short-circuiting collect, as in upstream rayon: `None` as soon as
    /// any item is `None`, else `Some(Vec)` in index order. (The shim
    /// still produces every item; only the gathering short-circuits.)
    fn from_par_iter<P: ParallelIterator<Item = Option<T>>>(iter: P) -> Self {
        let items: Vec<Option<T>> = Vec::from_par_iter(iter);
        items.into_iter().collect()
    }
}

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn range_len(&self) -> usize {
        self.slice.len()
    }
    fn produce(&self, i: usize) -> Option<&'a T> {
        Some(&self.slice[i])
    }
}

/// Parallel iterator over an owned `Vec<T>` (items cloned out; the
/// workspace only moves `Copy`-like data through this path).
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Clone + Send + Sync> ParallelIterator for VecIter<T> {
    type Item = T;
    fn range_len(&self) -> usize {
        self.items.len()
    }
    fn produce(&self, i: usize) -> Option<T> {
        Some(self.items[i].clone())
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct RangeIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;
    fn range_len(&self) -> usize {
        self.len
    }
    fn produce(&self, i: usize) -> Option<usize> {
        Some(self.start + i)
    }
}

/// Adapter: `copied`.
pub struct Copied<P> {
    base: P,
}

impl<'a, T, P> ParallelIterator for Copied<P>
where
    T: 'a + Copy + Send + Sync,
    P: ParallelIterator<Item = &'a T>,
{
    type Item = T;
    fn range_len(&self) -> usize {
        self.base.range_len()
    }
    fn produce(&self, i: usize) -> Option<T> {
        self.base.produce(i).copied()
    }
}

/// Adapter: `cloned`.
pub struct Cloned<P> {
    base: P,
}

impl<'a, T, P> ParallelIterator for Cloned<P>
where
    T: 'a + Clone + Send + Sync,
    P: ParallelIterator<Item = &'a T>,
{
    type Item = T;
    fn range_len(&self) -> usize {
        self.base.range_len()
    }
    fn produce(&self, i: usize) -> Option<T> {
        self.base.produce(i).cloned()
    }
}

/// Adapter: `map`.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Sync,
    R: Send,
{
    type Item = R;
    fn range_len(&self) -> usize {
        self.base.range_len()
    }
    fn produce(&self, i: usize) -> Option<R> {
        self.base.produce(i).map(&self.f)
    }
}

/// Adapter: `filter`.
pub struct Filter<P, F> {
    base: P,
    pred: F,
}

impl<P, F> ParallelIterator for Filter<P, F>
where
    P: ParallelIterator,
    F: Fn(&P::Item) -> bool + Sync,
{
    type Item = P::Item;
    fn range_len(&self) -> usize {
        self.base.range_len()
    }
    fn produce(&self, i: usize) -> Option<P::Item> {
        self.base.produce(i).filter(|item| (self.pred)(item))
    }
}

/// Owned-to-parallel conversion (`into_par_iter`).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = RangeIter;
    fn into_par_iter(self) -> RangeIter {
        RangeIter { start: self.start, len: self.end.saturating_sub(self.start) }
    }
}

impl<T: Clone + Send + Sync> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

/// Borrowed-to-parallel conversion (`par_iter`).
pub trait IntoParallelRefIterator<'d> {
    /// Item type (a reference).
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Parallel iterator over borrowed items.
    fn par_iter(&'d self) -> Self::Iter;
}

impl<'d, T: Sync + 'd> IntoParallelRefIterator<'d> for [T] {
    type Item = &'d T;
    type Iter = SliceIter<'d, T>;
    fn par_iter(&'d self) -> SliceIter<'d, T> {
        SliceIter { slice: self }
    }
}

impl<'d, T: Sync + 'd> IntoParallelRefIterator<'d> for Vec<T> {
    type Item = &'d T;
    type Iter = SliceIter<'d, T>;
    fn par_iter(&'d self) -> SliceIter<'d, T> {
        SliceIter { slice: self }
    }
}
