//! Minimal `serde_json` shim: text parsing/printing plus the `json!`
//! macro, over the shared [`serde::Value`] model.

// The `json!` macro necessarily builds containers by pushing entry by
// entry; the lint fires only on same-crate expansions (the tests below).
#![allow(clippy::vec_init_then_push)]

pub use serde::Value;

use serde::{Deserialize, Serialize};

/// JSON error (parse or data-model mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serialize to pretty JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstruct a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(T::from_value(&value)?)
}

/// Build a [`Value`] from a JSON literal with interpolated expressions.
///
/// Object/array literals recurse; any other value position accepts an
/// arbitrary Rust expression whose type implements `serde::Serialize`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($body:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut array: Vec<$crate::Value> = Vec::new();
        $crate::json_array_entries!(array; (); $($body)*);
        $crate::Value::Array(array)
    }};
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut object: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_object_entries!(object; $($body)*);
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal: munch object entries `"key": <value tokens>, ...`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    ($obj:ident;) => {};
    ($obj:ident; $key:literal : $($rest:tt)*) => {
        $crate::json_object_value!($obj; $key; (); $($rest)*);
    };
}

/// Internal: accumulate one object value up to a top-level comma.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_value {
    ($obj:ident; $key:literal; ($($val:tt)*); , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::json!($($val)*)));
        $crate::json_object_entries!($obj; $($rest)*);
    };
    ($obj:ident; $key:literal; ($($val:tt)*);) => {
        $obj.push(($key.to_string(), $crate::json!($($val)*)));
    };
    ($obj:ident; $key:literal; ($($val:tt)*); $next:tt $($rest:tt)*) => {
        $crate::json_object_value!($obj; $key; ($($val)* $next); $($rest)*);
    };
}

/// Internal: munch array elements up to top-level commas.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_entries {
    ($arr:ident; ();) => {};
    ($arr:ident; ($($val:tt)+);) => {
        $arr.push($crate::json!($($val)+));
    };
    ($arr:ident; ($($val:tt)+); , $($rest:tt)*) => {
        $arr.push($crate::json!($($val)+));
        $crate::json_array_entries!($arr; (); $($rest)*);
    };
    ($arr:ident; ($($val:tt)*); $next:tt $($rest:tt)*) => {
        $crate::json_array_entries!($arr; ($($val)* $next); $($rest)*);
    };
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.parse_value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: must pair with `\uDC00..`.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.error("lone high surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + (((unit - 0xD800) << 10) | (low - 0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.error("invalid escape character")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(x) = text.parse::<i64>() {
                    return Ok(Value::I64(x));
                }
            } else if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_nested_document() {
        let text = r#"{"a": [1, -2, 3.5, true, null], "b": {"c": "hi\nA"}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_i64(), Some(-2));
        assert_eq!(v["a"][2].as_f64(), Some(3.5));
        assert_eq!(v["b"]["c"].as_str(), Some("hi\nA"));
        let reparsed: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn json_macro_handles_expressions_and_nesting() {
        let n = 7u32;
        let words = vec!["a".to_string(), "b".to_string()];
        let v = json!({
            "n": n,
            "sum": n * 2 + 1,
            "words": words,
            "nested": { "flag": true, "list": [1, n, null] },
            "empty": [],
        });
        assert_eq!(v["n"].as_u64(), Some(7));
        assert_eq!(v["sum"].as_u64(), Some(15));
        assert_eq!(v["words"][1].as_str(), Some("b"));
        assert_eq!(v["nested"]["list"][1].as_u64(), Some(7));
        assert_eq!(v["empty"].as_array().map(<[Value]>::len), Some(0));
    }

    #[test]
    fn large_integers_survive_round_trip() {
        let v: Value = from_str(&u64::MAX.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
