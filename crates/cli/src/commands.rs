//! The CLI commands: dataset generation, stats, search and conversion.

use crate::args::ParsedArgs;
use central::QueryBudget;
use datagen::synthetic::SyntheticConfig;
use kgraph::{GraphStats, KnowledgeGraph};
use std::io::Write;
use std::path::Path;
use wikisearch_engine::{Backend, WikiSearch};

/// The `wikisearch help` text.
pub const HELP: &str = "\
wikisearch — Central Graph keyword search over knowledge graphs

commands:
  generate --dataset tiny|wiki2017-sim|wiki2018-sim --out FILE
           [--entities N] [--seed S]      synthesize a Wikidata-shaped KB
  stats    --graph FILE [--pairs N]       dataset statistics (Table II row)
  search   --graph FILE|--mmap SNAP --query WORDS
           [--top-k K] [--alpha A] [--backend seq|cpu|gpu|dyn]
           [--threads T] [--json true] [--trace true] [--dot true]
           [--explain true] [--cache-capacity BYTES]
           [--timeout-ms MS] [--max-expansions N] [--shards N]
                                           run a top-k keyword search
                                           (a query past its deadline or
                                           expansion cap aborts with a
                                           structured error, 0 = off;
                                           --explain runs the query traced
                                           and prints the per-level
                                           execution trace as JSON;
                                           --shards N > 1 partitions the
                                           graph and answers through the
                                           scatter-gather coordinator,
                                           byte-identical answers)
  convert  --in FILE --out FILE           convert between graph formats
  build-snapshot --in FILE --out FILE.wsnap
                                          compile a dataset into one
                                          memory-mappable snapshot
                                          (graph columns + inverted index
                                          + engine metadata); serve it
                                          zero-copy with --mmap
  serve    --graph FILE|--mmap SNAP [--port P] [--backend B] [--top-k K]
           [--workers W] [--max-requests N] [--cache-capacity BYTES]
           [--timeout-ms MS] [--max-expansions N] [--max-queue Q]
           [--slow-query-ms MS] [--slow-query-log PATH]
           [--slow-query-trace off|on] [--telemetry-interval-ms MS]
           [--shards N]
                                           TCP line-protocol query service
                                           (W concurrent connection workers;
                                           result cache sized by BYTES with
                                           k/m/g suffixes, default 64m,
                                           0 disables; per-query deadline
                                           MS ms / expansion cap N, 0 = off;
                                           at most Q connections queued,
                                           beyond that new connections get
                                           an `overloaded` error; verbs:
                                           QUERY, EXPLAIN (query + trace),
                                           PING, STATS (JSON counters +
                                           latency percentiles),
                                           STATS WINDOW S (rates and
                                           percentile deltas over the last
                                           S seconds), TOP (one-line live
                                           summary: qps, in-flight, cache
                                           hit rate, slowest recent qid),
                                           METRICS (Prometheus text, ends
                                           with `# EOF`), QUIT; every
                                           QUERY/EXPLAIN response carries a
                                           fleet-wide \"qid\";
                                           --slow-query-ms appends a JSON
                                           line per over-threshold query
                                           (qid + phase timings) to PATH,
                                           default slow_queries.jsonl, and
                                           --slow-query-trace on adds the
                                           full per-level trace;
                                           --telemetry-interval-ms sets the
                                           windowed-snapshot cadence,
                                           default 1000, 0 disables;
                                           --shards N > 1 serves through
                                           the sharded scatter-gather
                                           coordinator, byte-identical
                                           to --shards 1; --mmap SNAP
                                           memory-maps a compiled .wsnap
                                           snapshot and is ready without
                                           rebuilding the index)
           [--shard-workers N | --shard-addr HOST:PORT,…]
           [--degraded-answers true] [--rpc-timeout-ms MS]
           [--rpc-retries N] [--heartbeat-ms MS]
                                           remote shard serving:
                                           --shard-workers N forks and
                                           supervises N shard-worker
                                           processes (respawned if they
                                           die); --shard-addr attaches to
                                           externally managed workers;
                                           a query with an unreachable
                                           shard is refused with
                                           `shard_unavailable` unless
                                           --degraded-answers true, which
                                           serves best-effort answers
                                           marked `degraded`
  shard-worker --graph FILE|--mmap SNAP --shards N --shard-index I
           [--port P] [--watch-stdin true]
                                           serve one shard of the
                                           deterministic N-way partition
                                           to a remote coordinator;
                                           prints `READY <addr> …` once
                                           listening (--port 0 picks an
                                           ephemeral port); with
                                           --watch-stdin true the worker
                                           exits at stdin EOF so a dead
                                           supervisor never leaks it
  help                                    this text

graph files by extension: .tsv (line format), .bin (compact binary),
.json (serde), .nt (RDF N-Triples, read-only), .wsnap (memory-mapped
zero-copy snapshot; answers are byte-identical to every other format).";

/// `wikisearch generate`.
pub fn generate(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), String> {
    args.allow_only(&["dataset", "out", "entities", "seed"])?;
    let which = args.required("dataset")?;
    let path = args.required("out")?.to_string();
    let mut config = match which {
        "tiny" => SyntheticConfig::tiny(args.get_or("seed", 7u64)?),
        "wiki2017-sim" => SyntheticConfig::wiki2017_sim(),
        "wiki2018-sim" => SyntheticConfig::wiki2018_sim(),
        other => return Err(format!("unknown dataset {other:?}")),
    };
    if let Some(e) = args.optional("entities") {
        config.num_entities = e.parse().map_err(|_| format!("--entities: cannot parse {e:?}"))?;
    }
    if let Some(s) = args.optional("seed") {
        config.seed = s.parse().map_err(|_| format!("--seed: cannot parse {s:?}"))?;
    }
    let ds = config.generate();
    write_graph(&ds.graph, &path)?;
    writeln!(
        out,
        "wrote {} ({} nodes, {} edges) to {path}",
        ds.config.name,
        ds.graph.num_nodes(),
        ds.graph.num_directed_edges()
    )
    .map_err(|e| e.to_string())
}

/// `wikisearch stats`.
pub fn stats(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), String> {
    args.allow_only(&["graph", "pairs"])?;
    let graph = read_graph(args.required("graph")?)?;
    let pairs = args.get_or("pairs", 500usize)?;
    let s = GraphStats::compute("graph", &graph, pairs, 7);
    writeln!(out, "{}", GraphStats::table_header()).map_err(|e| e.to_string())?;
    writeln!(out, "{}", s.table_row()).map_err(|e| e.to_string())?;
    writeln!(
        out,
        "labels: {}, max degree: {}, avg degree: {:.2}",
        s.labels, s.max_degree, s.avg_degree
    )
    .map_err(|e| e.to_string())
}

/// `wikisearch search`.
pub fn search(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), String> {
    args.allow_only(&[
        "graph",
        "mmap",
        "query",
        "top-k",
        "alpha",
        "backend",
        "threads",
        "json",
        "trace",
        "dot",
        "explain",
        "cache-capacity",
        "timeout-ms",
        "max-expansions",
        "shards",
    ])?;
    let query = args.required("query")?.to_string();
    let threads: usize = args.get_or("threads", 4)?;
    let shards: usize = args.get_or("shards", 1)?;
    if shards == 0 {
        return Err("--shards must be >= 1".into());
    }
    let backend = Backend::parse(args.optional("backend").unwrap_or("cpu"), threads)?;
    let as_json: bool = args.get_or("json", false)?;
    let as_dot: bool = args.get_or("dot", false)?;
    let as_explain: bool = args.get_or("explain", false)?;
    let timeout_ms: u64 = args.get_or("timeout-ms", 0)?;
    let max_expansions: u64 = args.get_or("max-expansions", 0)?;
    let mut budget = QueryBudget::unlimited();
    if timeout_ms > 0 {
        budget = budget.with_timeout(std::time::Duration::from_millis(timeout_ms));
    }
    if max_expansions > 0 {
        budget = budget.with_max_expansions(max_expansions);
    }

    let mut ws = open_engine(args, backend, shards)?;
    let mut params = ws.params().clone();
    params.top_k = args.get_or("top-k", params.top_k)?;
    params.alpha = args.get_or("alpha", params.alpha)?;
    params.validate()?;
    ws.set_params(params);
    // One-shot searches cannot repeat a query, so the cache is off
    // unless asked for (useful for scripted multi-search shells).
    ws.set_cache_capacity(args.get_bytes("cache-capacity", 0)?);

    let result = if as_explain {
        ws.explain(&query, &budget)
    } else {
        ws.try_search(&query, &budget)
    }
    .map_err(|e| format!("query aborted ({}): {e}", e.kind()))?;
    if as_dot {
        return match result.answers.first() {
            Some(best) => {
                write!(out, "{}", wikisearch_engine::render::render_dot(ws.graph(), best))
                    .map_err(|e| e.to_string())
            }
            None => Err("no answers to render".into()),
        };
    }
    if as_json {
        let answers: Vec<serde_json::Value> = result
            .answers
            .iter()
            .map(|a| {
                serde_json::json!({
                    "central": ws.graph().node_key(a.central),
                    "central_text": ws.graph().node_text(a.central),
                    "depth": a.depth,
                    "score": a.score,
                    "nodes": a.nodes.iter().map(|&v| ws.graph().node_key(v)).collect::<Vec<_>>(),
                    "edges": a.edges.iter().map(|&(x, y)| {
                        (ws.graph().node_key(x), ws.graph().node_key(y))
                    }).collect::<Vec<_>>(),
                })
            })
            .collect();
        let doc = serde_json::json!({
            "query": query,
            "matched_keywords": result.query.num_keywords(),
            "unmatched": result.query.unmatched,
            "kwf": result.kwf,
            "total_ms": result.profile.total().as_secs_f64() * 1e3,
            "answers": answers,
            "trace": result.trace.as_deref().map(serde_json::to_value),
        });
        writeln!(out, "{}", serde_json::to_string_pretty(&doc).unwrap()).map_err(|e| e.to_string())
    } else {
        if !result.query.unmatched.is_empty() {
            writeln!(out, "(no matches for: {})", result.query.unmatched.join(", "))
                .map_err(|e| e.to_string())?;
        }
        writeln!(
            out,
            "{} answers in {:.2} ms",
            result.answers.len(),
            result.profile.total().as_secs_f64() * 1e3
        )
        .map_err(|e| e.to_string())?;
        for (rank, a) in result.answers.iter().enumerate() {
            writeln!(out, "#{rank}:").map_err(|e| e.to_string())?;
            write!(out, "{}", ws.render_answer(a)).map_err(|e| e.to_string())?;
        }
        if args.get_or("trace", false)? {
            writeln!(out, "level  frontier  identified").map_err(|e| e.to_string())?;
            for t in &result.stats.trace {
                writeln!(out, "{:>5}  {:>8}  {:>10}", t.level, t.frontier, t.identified)
                    .map_err(|e| e.to_string())?;
            }
        }
        if let Some(trace) = result.trace.as_deref() {
            writeln!(out, "{}", serde_json::to_string_pretty(trace).unwrap())
                .map_err(|e| e.to_string())?;
        }
        Ok(())
    }
}

/// `wikisearch convert`.
pub fn convert(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), String> {
    args.allow_only(&["in", "out"])?;
    let src = args.required("in")?;
    let dst = args.required("out")?.to_string();
    let graph = read_graph(src)?;
    write_graph(&graph, &dst)?;
    writeln!(
        out,
        "converted {src} -> {dst} ({} nodes, {} edges)",
        graph.num_nodes(),
        graph.num_directed_edges()
    )
    .map_err(|e| e.to_string())
}

/// Build the engine the way the flags ask: `--mmap SNAP` maps a
/// compiled `.wsnap` read-only and serves zero-copy, `--graph FILE`
/// parses into the heap. Exactly one of the two must be given; answers
/// are byte-identical either way.
pub fn open_engine(
    args: &ParsedArgs,
    backend: Backend,
    shards: usize,
) -> Result<WikiSearch, String> {
    match (args.optional("mmap"), args.optional("graph")) {
        (Some(_), Some(_)) => Err("--graph and --mmap are mutually exclusive".into()),
        (Some(snap), None) => WikiSearch::open_snapshot_sharded(Path::new(snap), backend, shards),
        (None, _) => {
            Ok(WikiSearch::open_sharded(read_graph(args.required("graph")?)?, backend, shards))
        }
    }
}

/// `wikisearch build-snapshot`: compile a dataset (any loadable format)
/// into one memory-mappable `.wsnap` file embedding the graph columns,
/// the inverted index and the sampled average distance, ready for
/// `search --mmap` / `serve --mmap`.
pub fn build_snapshot(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), String> {
    args.allow_only(&["in", "out"])?;
    let src = args.required("in")?;
    let dst = args.required("out")?.to_string();
    if !dst.ends_with(".wsnap") {
        return Err(format!("{dst}: snapshot output must use the .wsnap extension"));
    }
    let graph = read_graph(src)?;
    let info = wikisearch_engine::compile_snapshot(&graph, Path::new(&dst))?;
    writeln!(
        out,
        "compiled {src} -> {dst} ({} nodes, {} edges, {} terms, A={:.4}, {} bytes)",
        info.nodes, info.edges, info.terms, info.average_distance, info.file_bytes
    )
    .map_err(|e| e.to_string())
}

/// Read a graph, dispatching on extension. Thin shim over the unified
/// loader ([`kgraph::store::load_graph`]) — the CLI used to carry its
/// own format dispatch, now there is exactly one.
pub fn read_graph(path: &str) -> Result<KnowledgeGraph, String> {
    kgraph::store::load_graph(Path::new(path))
        .map(kgraph::GraphStore::into_graph)
        .map_err(|e| format!("{path}: {e}"))
}

/// Write a graph, dispatching on extension (see
/// [`kgraph::store::save_graph`]).
pub fn write_graph(graph: &KnowledgeGraph, path: &str) -> Result<(), String> {
    kgraph::store::save_graph(graph, Path::new(path)).map_err(|e| format!("{path}: {e}"))
}

#[cfg(test)]
mod tests {

    use crate::run;

    fn run_cli(line: &str) -> (i32, String) {
        let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        let code = run(&argv, &mut out);
        (code, String::from_utf8(out).unwrap())
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("ws-cli-{}-{name}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn generate_stats_search_convert_round_trip() {
        let tsv = tmp("kb.tsv");
        let bin = tmp("kb.bin");
        let (code, out) =
            run_cli(&format!("generate --dataset tiny --entities 300 --seed 5 --out {tsv}"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("312 nodes"), "300 entities + 12 classes: {out}");

        let (code, out) = run_cli(&format!("stats --graph {tsv} --pairs 50"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("# nodes"));

        let (code, out) =
            run_cli(&format!("search --graph {tsv} --query learning --backend seq --top-k 3"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("answers in"));

        let (code, out) = run_cli(&format!("convert --in {tsv} --out {bin}"));
        assert_eq!(code, 0, "{out}");
        let (code, out) =
            run_cli(&format!("search --graph {bin} --query learning --backend seq --top-k 3"));
        assert_eq!(code, 0, "{out}");
        let _ = std::fs::remove_file(tsv);
        let _ = std::fs::remove_file(bin);
    }

    #[test]
    fn json_output_is_valid_json() {
        let tsv = tmp("kb2.tsv");
        run_cli(&format!("generate --dataset tiny --entities 200 --out {tsv}"));
        let (code, out) =
            run_cli(&format!("search --graph {tsv} --query learning --backend seq --json true"));
        assert_eq!(code, 0, "{out}");
        let doc: serde_json::Value = serde_json::from_str(&out).expect("valid json");
        assert!(doc["answers"].is_array());
        let _ = std::fs::remove_file(tsv);
    }

    #[test]
    fn errors_are_reported_with_nonzero_exit() {
        let (code, out) = run_cli("generate --dataset nope --out x.tsv");
        assert_eq!(code, 1);
        assert!(out.contains("unknown dataset"));

        let (code, out) = run_cli("search --graph /does/not/exist.tsv --query x");
        assert_eq!(code, 1);
        assert!(out.contains("exist"));

        let (code, _) = run_cli("frobnicate");
        assert_eq!(code, 1);

        let (code, out) = run_cli("stats");
        assert_eq!(code, 1);
        assert!(out.contains("--graph"));

        let (code, out) = run_cli("stats --grph x.tsv");
        assert_eq!(code, 1);
        assert!(out.contains("unknown flag"));
    }

    #[test]
    fn trace_flag_prints_level_table() {
        let tsv = tmp("kb4.tsv");
        run_cli(&format!("generate --dataset tiny --entities 200 --out {tsv}"));
        let (code, out) =
            run_cli(&format!("search --graph {tsv} --query learning --backend seq --trace true"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("level  frontier  identified"), "{out}");
        let _ = std::fs::remove_file(tsv);
    }

    #[test]
    fn explain_flag_prints_the_execution_trace() {
        let tsv = tmp("kb8.tsv");
        run_cli(&format!("generate --dataset tiny --entities 200 --out {tsv}"));
        let (code, out) =
            run_cli(&format!("search --graph {tsv} --query learning --backend seq --explain true"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("\"levels\""), "trace JSON follows the answers: {out}");

        // With --json, the trace is embedded in the one JSON document.
        let (code, out) = run_cli(&format!(
            "search --graph {tsv} --query learning --backend seq --explain true --json true"
        ));
        assert_eq!(code, 0, "{out}");
        let doc: serde_json::Value = serde_json::from_str(&out).expect("valid json");
        assert!(doc["trace"]["levels"].is_array(), "{out}");

        // Without --explain, the JSON document's trace is null.
        let (code, out) =
            run_cli(&format!("search --graph {tsv} --query learning --backend seq --json true"));
        assert_eq!(code, 0, "{out}");
        let doc: serde_json::Value = serde_json::from_str(&out).expect("valid json");
        assert!(doc["trace"].is_null(), "{out}");
        let _ = std::fs::remove_file(tsv);
    }

    #[test]
    fn ntriples_files_are_readable() {
        let nt = tmp("kb6.nt");
        std::fs::write(
            &nt,
            "<http://kb/XML> <http://kb/related_to> <http://kb/Query_language> .\n",
        )
        .unwrap();
        let (code, out) = run_cli(&format!("stats --graph {nt} --pairs 10"));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("# nodes"));
        let _ = std::fs::remove_file(nt);
    }

    #[test]
    fn dot_flag_emits_graphviz() {
        let tsv = tmp("kb5.tsv");
        run_cli(&format!("generate --dataset tiny --entities 200 --out {tsv}"));
        let (code, out) =
            run_cli(&format!("search --graph {tsv} --query learning --backend seq --dot true"));
        assert_eq!(code, 0, "{out}");
        assert!(out.starts_with("graph answer {"), "{out}");
        let _ = std::fs::remove_file(tsv);
    }

    #[test]
    fn budget_flags_abort_with_structured_errors() {
        let tsv = tmp("kb7.tsv");
        let mut b = kgraph::GraphBuilder::new();
        let x = b.add_node("x", "xml");
        let q = b.add_node("q", "query language");
        let s = b.add_node("s", "sql");
        let r = b.add_node("r", "rdf");
        b.add_edge(x, q, "rel");
        b.add_edge(s, q, "rel");
        b.add_edge(r, q, "rel");
        std::fs::write(&tsv, kgraph::io::to_tsv(&b.build())).unwrap();

        let run_argv = |argv: &[&str]| {
            let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
            let mut out = Vec::new();
            let code = crate::run(&argv, &mut out);
            (code, String::from_utf8(out).unwrap())
        };

        // A starved expansion cap aborts with a structured error and a
        // nonzero exit instead of a truncated answer.
        let (code, out) = run_argv(&[
            "search",
            "--graph",
            &tsv,
            "--query",
            "xml sql rdf",
            "--backend",
            "seq",
            "--max-expansions",
            "1",
        ]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("budget_exhausted"), "{out}");

        // The same query under generous limits completes normally.
        let (code, out) = run_argv(&[
            "search",
            "--graph",
            &tsv,
            "--query",
            "xml sql rdf",
            "--backend",
            "seq",
            "--timeout-ms",
            "60000",
            "--max-expansions",
            "1000000",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("answers in"), "{out}");
        let _ = std::fs::remove_file(tsv);
    }

    #[test]
    fn help_prints_usage() {
        let (code, out) = run_cli("help");
        assert_eq!(code, 0);
        assert!(out.contains("generate"));
        assert!(out.contains("convert"));
    }

    #[test]
    fn unsupported_extension_is_rejected() {
        let (code, out) = run_cli("generate --dataset tiny --out /tmp/x.parquet");
        assert_eq!(code, 1);
        assert!(out.contains("unsupported extension"));
    }

    #[test]
    fn alpha_validation_flows_through() {
        let tsv = tmp("kb3.tsv");
        run_cli(&format!("generate --dataset tiny --entities 100 --out {tsv}"));
        let (code, out) = run_cli(&format!("search --graph {tsv} --query learning --alpha 7.0"));
        assert_eq!(code, 1);
        assert!(out.contains("alpha"));
        let _ = std::fs::remove_file(tsv);
    }
}
