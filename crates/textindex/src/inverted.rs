//! Inverted index: analyzed term → sorted posting list of nodes.
//!
//! This is the `T_i` provider of the paper (Sec. III): for each query
//! keyword `t_i`, the set of nodes containing it. Unlike BLINKS-style
//! approaches the engine needs **no** precomputed keyword–node distance
//! structures — only these posting lists — which is exactly the paper's
//! scalability argument against BLINKS on a 5M-keyword KB.

use crate::analyzer::analyze_unique;
use kgraph::{KnowledgeGraph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Inverted index over a graph's node texts.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct InvertedIndex {
    term_ids: HashMap<String, u32>,
    term_names: Vec<String>,
    postings: Vec<Vec<NodeId>>,
    num_nodes: usize,
}

impl InvertedIndex {
    /// Build the index by analyzing every node's text.
    pub fn build(g: &KnowledgeGraph) -> Self {
        let mut idx = InvertedIndex { num_nodes: g.num_nodes(), ..Default::default() };
        for v in g.nodes() {
            for term in analyze_unique(g.node_text(v)) {
                let id = *idx.term_ids.entry(term.clone()).or_insert_with(|| {
                    idx.term_names.push(term);
                    idx.postings.push(Vec::new());
                    (idx.term_names.len() - 1) as u32
                });
                idx.postings[id as usize].push(v);
            }
        }
        // Node texts are analyzed in node-id order with per-text dedup, so
        // each posting list is already sorted and unique.
        debug_assert!(idx.postings.iter().all(|p| p.windows(2).all(|w| w[0] < w[1])));
        idx
    }

    /// Number of distinct analyzed terms.
    pub fn num_terms(&self) -> usize {
        self.term_names.len()
    }

    /// Number of indexed nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Posting list for a *raw* (unanalyzed) term; the term is pushed
    /// through the same pipeline as node labels. Multi-word input uses the
    /// first analyzed token. Returns `None` for stopword-only input or
    /// terms absent from the corpus.
    pub fn lookup(&self, raw_term: &str) -> Option<&[NodeId]> {
        let analyzed = analyze_unique(raw_term);
        let term = analyzed.first()?;
        self.lookup_analyzed(term)
    }

    /// Posting list for an already-analyzed term.
    pub fn lookup_analyzed(&self, term: &str) -> Option<&[NodeId]> {
        self.term_ids.get(term).map(|&id| self.postings[id as usize].as_slice())
    }

    /// Document frequency of an analyzed term (0 if absent). This is the
    /// per-keyword `kwf` quantity of the paper's Table V.
    pub fn frequency(&self, term: &str) -> usize {
        self.lookup_analyzed(term).map_or(0, |p| p.len())
    }

    /// Average keyword frequency over a set of analyzed terms — the `kwf`
    /// column of Table V (terms missing from the corpus count as 0).
    pub fn avg_frequency<'a>(&self, terms: impl IntoIterator<Item = &'a str>) -> f64 {
        let mut sum = 0usize;
        let mut n = 0usize;
        for t in terms {
            sum += self.frequency(t);
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Iterator over `(term, document frequency)` pairs.
    pub fn term_frequencies(&self) -> impl Iterator<Item = (&str, usize)> + '_ {
        self.term_names.iter().zip(&self.postings).map(|(t, p)| (t.as_str(), p.len()))
    }

    /// Approximate heap bytes used by the index (postings + term table).
    pub fn approx_bytes(&self) -> usize {
        let postings: usize =
            self.postings.iter().map(|p| p.len() * std::mem::size_of::<NodeId>()).sum();
        let terms: usize = self.term_names.iter().map(|t| t.len() + 24).sum();
        postings + terms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;

    fn sample() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        b.add_node("Q1", "SPARQL query language for RDF");
        b.add_node("Q2", "RDF query language");
        b.add_node("Q3", "XPath");
        b.add_node("Q4", "the of and"); // stopwords only: indexes nothing
        b.build()
    }

    #[test]
    fn postings_are_sorted_unique_node_lists() {
        let g = sample();
        let idx = InvertedIndex::build(&g);
        let rdf = idx.lookup("RDF").unwrap();
        assert_eq!(rdf.len(), 2);
        assert!(rdf.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn lookup_analyzes_its_argument() {
        let g = sample();
        let idx = InvertedIndex::build(&g);
        // "languages" stems to the same term as "language"
        assert_eq!(idx.lookup("languages").unwrap().len(), 2);
        // stopword-only lookups miss
        assert!(idx.lookup("the").is_none());
        assert!(idx.lookup("nonexistent").is_none());
    }

    #[test]
    fn frequencies_and_kwf() {
        let g = sample();
        let idx = InvertedIndex::build(&g);
        assert_eq!(idx.frequency("rdf"), 2);
        assert_eq!(idx.frequency("xpath"), 1);
        assert_eq!(idx.frequency("missing"), 0);
        let kwf = idx.avg_frequency(["rdf", "xpath"]);
        assert!((kwf - 1.5).abs() < 1e-9);
        assert_eq!(idx.avg_frequency(std::iter::empty::<&str>()), 0.0);
    }

    #[test]
    fn stopword_only_node_is_unindexed() {
        let g = sample();
        let idx = InvertedIndex::build(&g);
        for (_, freq) in idx.term_frequencies() {
            assert!(freq >= 1);
        }
        // no term points at Q4
        let q4 = g.find_node_by_key("Q4").unwrap();
        for (t, _) in idx.term_frequencies() {
            assert!(!idx.lookup_analyzed(t).unwrap().contains(&q4));
        }
    }

    #[test]
    fn index_counts() {
        let g = sample();
        let idx = InvertedIndex::build(&g);
        assert_eq!(idx.num_nodes(), 4);
        // sparql, query, languag, rdf, xpath
        assert_eq!(idx.num_terms(), 5);
        assert!(idx.approx_bytes() > 0);
    }

    #[test]
    fn duplicate_words_in_one_label_index_once() {
        let mut b = GraphBuilder::new();
        b.add_node("n", "data data data");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        assert_eq!(idx.frequency("data"), 1);
    }
}
