//! The batch-invariance differential property: fusing a stream of
//! queries into one multi-query level-synchronous sweep through
//! [`BatchExecutor`] is *byte-identical* to running each query alone —
//! answers, score bits, statistics, and per-level traces — for all four
//! backends, at every batch partition of the stream (window 0 ≡ solo
//! engines, one-query batches, the whole stream fused), through the
//! sharded coordinator at shard counts {1, 4}, and through the
//! [`WikiSearch`] facade with the result cache on both the miss and the
//! hit path.
//!
//! This is the batched form of `shard_equivalence`: the fused sweep's
//! per-lane hitting levels must reproduce exactly the matrix each solo
//! engine computes (Theorem V.2 makes the lane interleaving irrelevant),
//! so every downstream artifact matches bit for bit. Traces are compared
//! modulo the engine-name string and the batch annotations (`batch_id`,
//! `co_batched`) that only the batched path stamps, and modulo wall-clock
//! phase timings.

use central::engine::{DynParEngine, GpuStyleEngine, KeywordSearchEngine, ParCpuEngine, SeqEngine};
use central::{
    BatchExecutor, BatchRequest, LaneOutcome, QueryBudget, QueryTrace, SearchOutcome, SearchParams,
    ShardBackend, ShardedSearch, TraceLevel,
};
use kgraph::{GraphBuilder, KnowledgeGraph};
use proptest::prelude::*;
use std::fmt::Write as _;
use std::time::Duration;
use textindex::{InvertedIndex, ParsedQuery};
use wikisearch_engine::{Backend, WikiSearch, WikiSearchResult};

/// Same overlap-heavy pool the shard- and cache-equivalence suites use.
const WORDS: &[&str] = &["alpha", "beta", "gamma", "delta", "omega", "sigma", "kappa", "lambda"];

/// Shard counts for the batched scatter-gather rounds; 1 pins the
/// degenerate plan.
const SHARD_COUNTS: &[usize] = &[1, 4];

#[derive(Debug, Clone)]
struct Case {
    nodes: usize,
    texts: Vec<Vec<usize>>,     // word indices per node
    edges: Vec<(usize, usize)>, // node index pairs
    activation: Vec<u8>,        // explicit per-node activation
    /// The interleaved stream: each entry is one query's word indices.
    queries: Vec<Vec<usize>>,
    top_k: usize,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (2usize..24).prop_flat_map(|nodes| {
        let texts =
            proptest::collection::vec(proptest::collection::vec(0usize..WORDS.len(), 1..3), nodes);
        let edges = proptest::collection::vec((0usize..nodes, 0usize..nodes), 1..50);
        let activation = proptest::collection::vec(0u8..5, nodes);
        let queries =
            proptest::collection::vec(proptest::collection::vec(0usize..WORDS.len(), 2..4), 2..6);
        let top_k = 1usize..8;
        (texts, edges, activation, queries, top_k).prop_map(
            move |(texts, edges, activation, queries, top_k)| Case {
                nodes,
                texts,
                edges,
                activation,
                queries,
                top_k,
            },
        )
    })
}

fn build_graph(case: &Case) -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    for (i, words) in case.texts.iter().enumerate() {
        let text: Vec<&str> = words.iter().map(|&w| WORDS[w]).collect();
        b.add_node(&format!("n{i}"), &text.join(" "));
    }
    for (idx, &(s, d)) in case.edges.iter().enumerate() {
        if s != d {
            let s = b.node(&format!("n{s}")).unwrap();
            let d = b.node(&format!("n{d}")).unwrap();
            b.add_edge(s, d, if idx % 3 == 0 { "p" } else { "q" });
        }
    }
    let _ = case.nodes;
    b.build()
}

/// The four batched backends paired with their solo references.
fn backends() -> Vec<(ShardBackend, Box<dyn KeywordSearchEngine>)> {
    vec![
        (ShardBackend::Seq, Box::new(SeqEngine::new())),
        (ShardBackend::ParCpu(3), Box::new(ParCpuEngine::new(3))),
        (ShardBackend::GpuStyle(3), Box::new(GpuStyleEngine::new(3))),
        (ShardBackend::DynPar(3), Box::new(DynParEngine::new(3))),
    ]
}

/// A trace with the fields the batched path is *allowed* to differ on
/// zeroed: the engine-name string (solo engines embed thread counts, the
/// fused sweep reports the backend family), the batch annotations, and
/// wall-clock phase timings. Everything else must match byte for byte.
fn normalized_trace(out: &SearchOutcome) -> Option<QueryTrace> {
    out.trace.as_deref().map(|t| {
        let mut t = t.clone();
        t.engine = String::new();
        t.batch_id = None;
        t.co_batched = None;
        t.phase_ms = Default::default();
        t
    })
}

/// Byte-level comparison of a batched lane's outcome against its solo
/// reference: answers (ids, paths, score *bits*), the statistics block
/// including the per-level trace, and the normalized rich trace.
fn assert_identical(batched: &SearchOutcome, reference: &SearchOutcome, label: &str) {
    assert_eq!(batched.answers.len(), reference.answers.len(), "answer count: {label}");
    for (a, b) in batched.answers.iter().zip(&reference.answers) {
        assert_eq!(a.central, b.central, "central: {label}");
        assert_eq!(a.depth, b.depth, "depth: {label}");
        assert_eq!(a.nodes, b.nodes, "nodes: {label}");
        assert_eq!(a.edges, b.edges, "edges: {label}");
        assert_eq!(a.keyword_nodes, b.keyword_nodes, "keyword nodes: {label}");
        assert_eq!(a.keyword_edges, b.keyword_edges, "keyword paths: {label}");
        assert_eq!(a.score.to_bits(), b.score.to_bits(), "score bits: {label}");
    }
    assert_eq!(batched.stats.last_level, reference.stats.last_level, "last level: {label}");
    assert_eq!(
        batched.stats.central_candidates, reference.stats.central_candidates,
        "cohort: {label}"
    );
    assert_eq!(
        batched.stats.peak_frontier, reference.stats.peak_frontier,
        "peak frontier: {label}"
    );
    assert_eq!(batched.stats.trace, reference.stats.trace, "level trace: {label}");
    assert_eq!(normalized_trace(batched), normalized_trace(reference), "rich trace: {label}");
}

fn unwrap_done(outcome: LaneOutcome, label: &str) -> SearchOutcome {
    match outcome {
        LaneOutcome::Done(Ok(out)) => out,
        LaneOutcome::Done(Err(e)) => panic!("{label}: lane failed: {e}"),
        LaneOutcome::Panicked(_) => panic!("{label}: lane panicked"),
    }
}

/// Parse the stream once; odd lanes run traced so a single fused batch
/// carries mixed tracing.
fn parse_stream(case: &Case, idx: &InvertedIndex) -> Vec<(ParsedQuery, SearchParams)> {
    case.queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let raw: Vec<&str> = q.iter().map(|&w| WORDS[w]).collect();
            let query = ParsedQuery::parse(idx, &raw.join(" "));
            let mut params =
                SearchParams { top_k: case.top_k, max_level: 12, ..SearchParams::default() }
                    .with_explicit_activation(case.activation.clone());
            if i % 2 == 1 {
                params = params.with_trace(TraceLevel::Full);
            }
            (query, params)
        })
        .collect()
}

fn requests(parsed: &[(ParsedQuery, SearchParams)], budget: QueryBudget) -> Vec<BatchRequest> {
    parsed
        .iter()
        .map(|(q, p)| BatchRequest { query: q.clone(), params: p.clone(), budget })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    /// The tentpole property: for arbitrary graphs, interleaved query
    /// streams, explicit activation maps and top-k, every batch
    /// partition of the stream on every backend returns exactly what
    /// the solo engines return query by query — monolithic and through
    /// the sharded coordinator at shard counts {1, 4}.
    #[test]
    fn batched_execution_is_byte_identical_to_one_at_a_time(case in case_strategy()) {
        let graph = build_graph(&case);
        let idx = InvertedIndex::build(&graph);
        let budget = QueryBudget::unlimited();
        let parsed = parse_stream(&case, &idx);

        for (backend, reference_engine) in backends() {
            // Window 0: each query alone on the solo engine — the
            // reference every batched partition must reproduce.
            let references: Vec<SearchOutcome> =
                parsed.iter().map(|(q, p)| reference_engine.search(&graph, q, p)).collect();
            let executor = BatchExecutor::new(backend);

            // One-query windows: every lane is its own batch (the
            // executor's degenerate path, distinct state epochs).
            for (i, reference) in references.iter().enumerate() {
                let outs = executor.run_batch(&graph, &requests(&parsed[i..=i], budget));
                let label = format!("{} solo-batch q{i}", reference_engine.name());
                assert_identical(&unwrap_done(outs.into_iter().next().unwrap(), &label), reference, &label);
            }

            // Full window: the whole stream fused into one sweep.
            let outs = executor.run_batch(&graph, &requests(&parsed, budget));
            prop_assert_eq!(outs.len(), references.len());
            for (i, (out, reference)) in outs.into_iter().zip(&references).enumerate() {
                let label = format!("{} fused q{i}/{}", reference_engine.name(), parsed.len());
                assert_identical(&unwrap_done(out, &label), reference, &label);
            }

            // Batched scatter-gather rounds through the sharded
            // coordinator, whole stream per batch.
            for &shards in SHARD_COUNTS {
                let coordinator = ShardedSearch::new(&graph, backend, shards);
                let outs = executor.run_sharded_batch(&coordinator, &graph, &requests(&parsed, budget));
                for (i, (out, reference)) in outs.into_iter().zip(&references).enumerate() {
                    let label =
                        format!("{} x {shards} shards batched q{i}", reference_engine.name());
                    assert_identical(&unwrap_done(out, &label), reference, &label);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Facade-level: the result cache on the batched path.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct FacadeCase {
    nodes: usize,
    texts: Vec<Vec<usize>>,
    edges: Vec<(usize, usize)>,
    queries: Vec<Vec<usize>>,
    /// The stream as base-query indices; repeats exercise the hit path.
    stream: Vec<usize>,
}

fn facade_case_strategy() -> impl Strategy<Value = FacadeCase> {
    (2usize..24, 1usize..4).prop_flat_map(|(nodes, nqueries)| {
        let texts =
            proptest::collection::vec(proptest::collection::vec(0usize..WORDS.len(), 1..3), nodes);
        let edges = proptest::collection::vec((0usize..nodes, 0usize..nodes), 1..50);
        let queries = proptest::collection::vec(
            proptest::collection::vec(0usize..WORDS.len(), 2..4),
            nqueries,
        );
        let stream = proptest::collection::vec(0usize..nqueries, 3..7);
        (texts, edges, queries, stream).prop_map(move |(texts, edges, queries, stream)| {
            FacadeCase { nodes, texts, edges, queries, stream }
        })
    })
}

fn build_facade_graph(case: &FacadeCase) -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    for (i, words) in case.texts.iter().enumerate() {
        let text: Vec<&str> = words.iter().map(|&w| WORDS[w]).collect();
        b.add_node(&format!("n{i}"), &text.join(" "));
    }
    for (idx, &(s, d)) in case.edges.iter().enumerate() {
        if s != d {
            let s = b.node(&format!("n{s}")).unwrap();
            let d = b.node(&format!("n{d}")).unwrap();
            b.add_edge(s, d, if idx % 3 == 0 { "p" } else { "q" });
        }
    }
    let _ = case.nodes;
    b.build()
}

/// Everything observable about one facade result except timing, as one
/// comparable string (the cache-equivalence digest).
fn digest(r: &WikiSearchResult) -> String {
    let mut s = String::new();
    write!(
        s,
        "groups:{:?} unmatched:{:?} kwf:{} ",
        r.query.groups, r.query.unmatched, r.kwf
    )
    .unwrap();
    write!(
        s,
        "stats:{}/{}/{}/{:?} ",
        r.stats.last_level, r.stats.central_candidates, r.stats.peak_frontier, r.stats.trace
    )
    .unwrap();
    for a in &r.answers {
        write!(
            s,
            "[c:{:?} d:{} n:{:?} e:{:?} kn:{:?} ke:{:?} s:{}]",
            a.central,
            a.depth,
            a.nodes,
            a.edges,
            a.keyword_nodes,
            a.keyword_edges,
            a.score.to_bits()
        )
        .unwrap();
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Through the full facade — result cache in front, batcher behind
    /// it — a batching-enabled `WikiSearch` is observably identical to a
    /// plain one on every step of a repeat-heavy stream, for every
    /// backend at shard counts {1, 4}, and the two facades' cache
    /// accounting agrees exactly (batching fills per-query entries, so
    /// hit/miss counts cannot drift).
    #[test]
    fn batched_facade_is_observably_identical_including_cache_hits(case in facade_case_strategy()) {
        let backends =
            [Backend::Sequential, Backend::ParCpu(3), Backend::GpuStyle(3), Backend::DynPar(3)];
        for backend in backends {
            for &shards in SHARD_COUNTS {
                let mut plain = WikiSearch::build_with(build_facade_graph(&case), backend);
                let mut batched = WikiSearch::build_with(build_facade_graph(&case), backend);
                for ws in [&mut plain, &mut batched] {
                    ws.set_cache_capacity(1 << 20);
                    if shards > 1 {
                        ws.set_shards(shards);
                    }
                }
                // A short real window: sequential submits each lead
                // their own batch, so determinism is untouched.
                batched.set_batching(Duration::from_micros(200), 8);
                let params = plain.params().clone();

                // Force the hit path at least once per case.
                let mut steps = case.stream.clone();
                steps.push(steps[0]);

                for (si, &qi) in steps.iter().enumerate() {
                    let words: Vec<&str> =
                        case.queries[qi].iter().map(|&w| WORDS[w]).collect();
                    let raw = words.join(" ");
                    let want = plain.search_with_params(&raw, &params);
                    let got = batched.search_with_params(&raw, &params);
                    prop_assert_eq!(
                        digest(&got),
                        digest(&want),
                        "step {} diverged on {:?} ({:?}, {} shards)",
                        si,
                        raw,
                        backend,
                        shards
                    );
                }

                let plain_stats = plain.cache_stats().unwrap();
                let batched_stats = batched.cache_stats().unwrap();
                prop_assert_eq!(batched_stats.hits, plain_stats.hits, "{:?}", backend);
                prop_assert_eq!(batched_stats.misses, plain_stats.misses, "{:?}", backend);
                // Every submitted query came back: the batcher never
                // swallowed or duplicated a lane.
                let bstats = batched.batch_stats().unwrap();
                prop_assert_eq!(bstats.enqueued, bstats.delivered, "{:?}", backend);
                prop_assert_eq!(bstats.size.count, bstats.batches, "{:?}", backend);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Deterministic edge cases a shrunken proptest case may never reach.
// ---------------------------------------------------------------------

/// Mixed matching / non-matching / empty queries fused into one batch
/// must each reproduce their solo outcome, on every backend and through
/// both shard counts.
#[test]
fn mixed_hit_miss_and_empty_queries_fuse_without_crosstalk() {
    let mut b = GraphBuilder::new();
    let a1 = b.add_node("a1", "alpha");
    let a2 = b.add_node("a2", "beta");
    let hub = b.add_node("hub", "gamma hub");
    b.add_edge(a1, hub, "p");
    b.add_edge(a2, hub, "q");
    b.add_node("iso", "delta");
    let graph = b.build();
    let idx = InvertedIndex::build(&graph);
    let budget = QueryBudget::unlimited();

    let raws = ["alpha beta", "alpha delta", "", "omega sigma", "gamma"];
    let parsed: Vec<(ParsedQuery, SearchParams)> = raws
        .iter()
        .enumerate()
        .map(|(i, raw)| {
            let query = ParsedQuery::parse(&idx, raw);
            let mut params = SearchParams { max_level: 12, ..SearchParams::default() };
            if i % 2 == 0 {
                params = params.with_trace(TraceLevel::Full);
            }
            (query, params)
        })
        .collect();

    for (backend, reference_engine) in backends() {
        let references: Vec<SearchOutcome> =
            parsed.iter().map(|(q, p)| reference_engine.search(&graph, q, p)).collect();
        let executor = BatchExecutor::new(backend);

        let outs = executor.run_batch(&graph, &requests(&parsed, budget));
        for (i, (out, reference)) in outs.into_iter().zip(&references).enumerate() {
            let label = format!("{} mixed fused q{i} ({:?})", reference_engine.name(), raws[i]);
            assert_identical(&unwrap_done(out, &label), reference, &label);
        }

        for &shards in SHARD_COUNTS {
            let coordinator = ShardedSearch::new(&graph, backend, shards);
            let outs = executor.run_sharded_batch(&coordinator, &graph, &requests(&parsed, budget));
            for (i, (out, reference)) in outs.into_iter().zip(&references).enumerate() {
                let label = format!(
                    "{} x {shards} shards mixed q{i} ({:?})",
                    reference_engine.name(),
                    raws[i]
                );
                assert_identical(&unwrap_done(out, &label), reference, &label);
            }
        }
    }
}

/// A full 64-lane batch — the `MAX_BATCH_LANES` bitmask boundary — where
/// every lane must still match its solo reference.
#[test]
fn a_full_width_batch_matches_its_solo_references() {
    let mut b = GraphBuilder::new();
    let x = b.add_node("x", "alpha");
    let y = b.add_node("y", "beta bridge");
    let z = b.add_node("z", "gamma");
    b.add_edge(x, y, "p");
    b.add_edge(z, y, "q");
    let graph = b.build();
    let idx = InvertedIndex::build(&graph);
    let budget = QueryBudget::unlimited();

    let pool = ["alpha gamma", "alpha beta", "beta gamma", "alpha beta gamma"];
    let parsed: Vec<(ParsedQuery, SearchParams)> = (0..central::MAX_BATCH_LANES)
        .map(|i| {
            let query = ParsedQuery::parse(&idx, pool[i % pool.len()]);
            let params =
                SearchParams { top_k: 1 + i % 4, max_level: 12, ..SearchParams::default() };
            (query, params)
        })
        .collect();

    for (backend, reference_engine) in backends() {
        let references: Vec<SearchOutcome> =
            parsed.iter().map(|(q, p)| reference_engine.search(&graph, q, p)).collect();
        let executor = BatchExecutor::new(backend);
        let outs = executor.run_batch(&graph, &requests(&parsed, budget));
        assert_eq!(outs.len(), central::MAX_BATCH_LANES);
        for (i, (out, reference)) in outs.into_iter().zip(&references).enumerate() {
            let label = format!("{} 64-wide q{i}", reference_engine.name());
            assert_identical(&unwrap_done(out, &label), reference, &label);
        }
    }
}
