//! Table II: dataset statistics (`# nodes`, `# edges`, sampled `A`,
//! `Deviation`) for both Wikidata-sim dumps.

use crate::PreparedDataset;
use eval::runner::ExperimentSink;
use eval::Table;
use serde_json::json;

/// Print Table II for both datasets and persist the JSON record.
pub fn run() -> serde_json::Value {
    println!("== Table II: datasets (synthetic Wikidata-sim dumps) ==");
    let datasets = PreparedDataset::both();
    let mut table = Table::new(vec!["dataset", "# nodes", "# edges", "A", "Deviation"]);
    let mut records = Vec::new();
    for ds in &datasets {
        table.row(vec![
            ds.name.clone(),
            ds.graph.num_nodes().to_string(),
            ds.graph.num_directed_edges().to_string(),
            format!("{:.2}", ds.distance.mean),
            format!("{:.2}", ds.distance.deviation),
        ]);
        records.push(json!({
            "dataset": ds.name,
            "nodes": ds.graph.num_nodes(),
            "edges": ds.graph.num_directed_edges(),
            "labels": ds.graph.num_labels(),
            "avg_distance": ds.distance.mean,
            "deviation": ds.distance.deviation,
            "sampled_pairs": ds.distance.sampled_pairs,
            "keywords": ds.index.num_terms(),
        }));
    }
    table.print();
    println!("(paper: wiki2017 15.1M/124M A=3.87 σ=0.81; wiki2018 30.6M/271M A=3.68 σ=0.98)");
    for ds in &datasets {
        let hist = kgraph::stats::log2_degree_histogram(&ds.graph);
        let cells: Vec<String> =
            hist.iter().enumerate().map(|(i, c)| format!("2^{i}:{c}")).collect();
        println!("{} degree histogram (log2 buckets): {}", ds.name, cells.join(" "));
    }
    println!();
    let record = json!({ "experiment": "table2", "datasets": records });
    if let Ok(path) = ExperimentSink::new().write("table2_datasets", &record) {
        println!("json: {}", path.display());
    }
    record
}
