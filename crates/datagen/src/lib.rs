//! # datagen — datasets and workloads for the WikiSearch reproduction
//!
//! The paper evaluates on two Wikidata dumps (Table II) with keyword
//! queries drawn from AAAI'14 paper keywords, and judges effectiveness
//! manually on eleven queries (Table V). None of those inputs are
//! available offline, so this crate builds their laboratory equivalents
//! (see DESIGN.md §3 for the substitution argument):
//!
//! * [`synthetic`] — a configurable **Wikidata-shaped graph generator**:
//!   class/summary hubs with single-label in-edge floods (`instance of`),
//!   Zipf-skewed entity in-degrees, a small predicate vocabulary, and node
//!   labels drawn from a realistic CS keyword-phrase vocabulary. Presets
//!   `wiki2017_sim` / `wiki2018_sim` mirror the two dumps at laptop scale.
//! * [`workload`] — the embedded keyword-phrase vocabulary and a seeded
//!   query sampler per `Knum` (the Exp-1..Exp-4 workloads).
//! * [`planted`] — effectiveness datasets with **planted ground truth**:
//!   relevant phrase-preserving structures and single-keyword distractors,
//!   plus the relevance judge replacing the paper's manual assessment.
//! * [`figures`] — the paper's worked-example graphs (Figs. 1/2/4/5) as
//!   reusable fixtures.

#![warn(missing_docs)]

pub mod figures;
pub mod planted;
pub mod synthetic;
pub mod workload;

pub use planted::{PlantedDataset, PlantedQuery};
pub use synthetic::{SyntheticConfig, SyntheticDataset};
pub use workload::QueryWorkload;
