//! Stage 2: top-down processing (paper Algorithm 3) — extraction of each
//! Central Graph from the node–keyword matrix, level-cover pruning, Eq. 6
//! scoring, and final top-k selection.
//!
//! Extraction needs no recorded paths: Theorem V.4 lets the hitting paths
//! be recovered from `M` and the activation levels alone. For each keyword
//! `t_i`, `v_n` is a predecessor of `v_j` on a hitting path iff
//!
//! ```text
//! h_j = 1 + max{a_n, h_n}            (v_j contains keywords)
//! h_j = 1 + max{a_n, h_n, a_j − 1}   (v_j contains none)
//! ```
//!
//! because `max{a_n, h_n}` is the first level the neighbor could expand,
//! and a non-keyword `v_j` additionally could not be hit before level
//! `a_j`. Walking these conditions backward from the central node yields,
//! per keyword, exactly the DAG of all hitting paths (Def. 2).

use crate::activation::ActivationMap;
use crate::model::{answer_order, CentralGraph, INFINITE_LEVEL};
use crate::state::HitLevels;
use crate::SearchParams;
use kgraph::{KnowledgeGraph, NodeId};
use std::collections::{HashMap, HashSet};

/// The raw (unpruned) extraction of one Central Graph: per-keyword
/// predecessor DAGs over data-graph nodes.
#[derive(Clone, Debug)]
pub struct Extraction {
    /// The central node.
    pub central: u32,
    /// Depth at identification.
    pub depth: u8,
    /// Per keyword: hitting-path edges as `(pred, succ)` pairs, deduped.
    /// Every edge lies on a hitting path ending at `central`.
    pub dag_edges: Vec<Vec<(u32, u32)>>,
    /// All nodes appearing in any DAG, plus the central node. Sorted.
    pub nodes: Vec<u32>,
}

/// Recover all hitting paths of the Central Graph centered at `central`
/// (Theorem V.4). One backward BFS per keyword.
pub fn extract<H: HitLevels + ?Sized>(
    graph: &KnowledgeGraph,
    act: &ActivationMap<'_>,
    state: &H,
    central: u32,
    depth: u8,
) -> Extraction {
    let q = state.num_keywords();
    let mut dag_edges: Vec<Vec<(u32, u32)>> = Vec::with_capacity(q);
    let mut all_nodes: HashSet<u32> = HashSet::new();
    all_nodes.insert(central);
    for i in 0..q {
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut visited: HashSet<u32> = HashSet::new();
        let mut stack: Vec<u32> = vec![central];
        visited.insert(central);
        while let Some(j) = stack.pop() {
            let hj = state.hit(j, i);
            debug_assert_ne!(hj, INFINITE_LEVEL, "extraction reached an unhit node");
            if hj == 0 {
                continue; // a source of B_i: hitting paths start here
            }
            let hj = hj as u16;
            // The `a_j − 1` term applies only to non-keyword nodes.
            let aj_term = if state.is_keyword_node(j) {
                0u16
            } else {
                (act.level(NodeId(j)) as u16).saturating_sub(1)
            };
            for adj in graph.neighbors(NodeId(j)) {
                let n = adj.target().0;
                let hn = state.hit(n, i);
                if hn == INFINITE_LEVEL {
                    continue;
                }
                // A Central Node freezes at its identification depth and
                // never expands afterwards, so it cannot be the
                // predecessor of a hit beyond that depth.
                if let Some(d) = state.central_depth(n) {
                    if hj > d as u16 {
                        continue;
                    }
                }
                let an = act.level(adj.target()) as u16;
                let required = 1 + (hn as u16).max(an).max(aj_term);
                if hj == required {
                    edges.push((n, j));
                    if visited.insert(n) {
                        stack.push(n);
                    }
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        for &(a, b) in &edges {
            all_nodes.insert(a);
            all_nodes.insert(b);
        }
        dag_edges.push(edges);
    }
    let mut nodes: Vec<u32> = all_nodes.into_iter().collect();
    nodes.sort_unstable();
    Extraction { central, depth, dag_edges, nodes }
}

/// Apply the **level-cover strategy** (paper Sec. V-C, Fig. 5) and build
/// the final scored answer.
///
/// Keyword nodes of the extracted graph are classified by how many query
/// keywords they contain; the central node always forms the top level.
/// Sweeping levels top-down, once the levels processed so far cover every
/// keyword, all keyword nodes below are pruned together with the hitting
/// paths that exist only to support them. The surviving graph is the union
/// of per-keyword DAG edges forward-reachable from *preserved* sources.
///
/// If pruning would disconnect a keyword (possible when a keyword's only
/// coverage sat on another keyword's pruned path), the unpruned graph is
/// kept — an answer must always cover the query.
pub fn prune_and_score<H: HitLevels + ?Sized>(
    graph: &KnowledgeGraph,
    state: &H,
    extraction: &Extraction,
    params: &SearchParams,
) -> CentralGraph {
    let q = state.num_keywords();
    let central = extraction.central;

    // Classify keyword nodes by contained-keyword count, descending; the
    // central node is its own top level.
    let mut by_count: Vec<(usize, u32)> = extraction
        .nodes
        .iter()
        .filter(|&&v| v != central)
        .map(|&v| (state.keyword_count(v), v))
        .filter(|&(c, _)| c > 0)
        .collect();
    by_count.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

    // Greedy cover sweep: central node first, then whole levels until all
    // keywords are covered.
    let mut covered = vec![false; q];
    let mut covered_count = 0usize;
    let cover_node = |v: u32, covered: &mut Vec<bool>, covered_count: &mut usize| {
        for (i, c) in covered.iter_mut().enumerate() {
            if !*c && state.is_source(v, i) {
                *c = true;
                *covered_count += 1;
            }
        }
    };
    cover_node(central, &mut covered, &mut covered_count);
    let mut preserved: HashSet<u32> = HashSet::new();
    preserved.insert(central);
    let mut idx = 0;
    while covered_count < q && idx < by_count.len() {
        let level_count = by_count[idx].0;
        // Take the whole level: nodes are not pruned by same-level peers.
        while idx < by_count.len() && by_count[idx].0 == level_count {
            let v = by_count[idx].1;
            preserved.insert(v);
            cover_node(v, &mut covered, &mut covered_count);
            idx += 1;
        }
    }
    let pruned_any = params.level_cover && idx < by_count.len();

    // Rebuild: per keyword, keep DAG edges forward-reachable from
    // preserved sources.
    let pruned = if pruned_any {
        let mut nodes: HashSet<u32> = HashSet::new();
        nodes.insert(central);
        let mut edges: HashSet<(u32, u32)> = HashSet::new();
        let mut per_keyword: Vec<Vec<(u32, u32)>> = Vec::with_capacity(q);
        for dag in &extraction.dag_edges {
            let mut succ: HashMap<u32, Vec<u32>> = HashMap::new();
            for &(p, s) in dag {
                succ.entry(p).or_default().push(s);
            }
            let mut kept: Vec<(u32, u32)> = Vec::new();
            // Sources of this DAG: predecessors with hitting level 0.
            let mut stack: Vec<u32> = Vec::new();
            let mut seen: HashSet<u32> = HashSet::new();
            for &(p, _) in dag {
                if preserved.contains(&p) && seen.insert(p) {
                    stack.push(p);
                }
            }
            // Forward walk keeps everything downstream of a preserved node;
            // upstream-only support of pruned sources disappears.
            while let Some(v) = stack.pop() {
                nodes.insert(v);
                if let Some(nexts) = succ.get(&v) {
                    for &s in nexts {
                        edges.insert((v.min(s), v.max(s)));
                        kept.push((v.min(s), v.max(s)));
                        nodes.insert(s);
                        if seen.insert(s) {
                            stack.push(s);
                        }
                    }
                }
            }
            kept.sort_unstable();
            kept.dedup();
            per_keyword.push(kept);
        }
        // Soundness check: every keyword must still be covered.
        let all_covered = (0..q).all(|i| nodes.iter().any(|&v| state.is_source(v, i)));
        all_covered.then_some((nodes, edges, per_keyword))
    } else {
        None
    };
    let (final_nodes, final_edges, per_keyword_edges) = match pruned {
        Some(parts) => parts,
        None => (
            full_nodes(extraction),
            full_edges(extraction),
            extraction
                .dag_edges
                .iter()
                .map(|dag| {
                    let mut es: Vec<(u32, u32)> =
                        dag.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
                    es.sort_unstable();
                    es.dedup();
                    es
                })
                .collect(),
        ),
    };

    let mut nodes: Vec<NodeId> = final_nodes.iter().map(|&v| NodeId(v)).collect();
    nodes.sort_unstable();
    let mut edges: Vec<(NodeId, NodeId)> =
        final_edges.iter().map(|&(a, b)| (NodeId(a), NodeId(b))).collect();
    edges.sort_unstable();

    let keyword_nodes: Vec<Vec<NodeId>> = (0..q)
        .map(|i| nodes.iter().copied().filter(|v| state.is_source(v.0, i)).collect())
        .collect();
    let keyword_edges: Vec<Vec<(NodeId, NodeId)>> = per_keyword_edges
        .into_iter()
        .map(|es| es.into_iter().map(|(a, b)| (NodeId(a), NodeId(b))).collect())
        .collect();

    // Eq. 6: S(C) = d(C)^λ · Σ_{v ∈ C} w_v (smaller = better).
    let weight_sum: f64 = nodes.iter().map(|v| graph.weight(*v) as f64).sum();
    let score = (extraction.depth as f64).powf(params.lambda) * weight_sum;

    CentralGraph {
        central: NodeId(central),
        depth: extraction.depth,
        nodes,
        edges,
        keyword_nodes,
        keyword_edges,
        score,
    }
}

fn full_nodes(e: &Extraction) -> HashSet<u32> {
    e.nodes.iter().copied().collect()
}

fn full_edges(e: &Extraction) -> HashSet<(u32, u32)> {
    e.dag_edges.iter().flatten().map(|&(a, b)| (a.min(b), a.max(b))).collect()
}

/// Final selection: sort by Eq. 6 score, remove answers that strictly
/// contain another candidate (repetition removal, Sec. VI-B), truncate to
/// `top_k`.
pub fn select_top_k(mut candidates: Vec<CentralGraph>, params: &SearchParams) -> Vec<CentralGraph> {
    if params.dedup_contained && candidates.len() > 1 {
        // Compare each answer against smaller ones; O(c²) on the candidate
        // set, which Def. 4 already bounds to the smallest-depth cohort.
        // Cap the quadratic work on pathological inputs.
        const DEDUP_CAP: usize = 1024;
        candidates.sort_by(answer_order);
        candidates.truncate(DEDUP_CAP.max(params.top_k * 4));
        let mut by_size: Vec<usize> = (0..candidates.len()).collect();
        by_size.sort_by_key(|&i| candidates[i].nodes.len());
        let mut dropped = vec![false; candidates.len()];
        for pos in (0..by_size.len()).rev() {
            let i = by_size[pos];
            for &j in &by_size[..pos] {
                if !dropped[j] && candidates[i].strictly_contains(&candidates[j]) {
                    dropped[i] = true;
                    break;
                }
            }
        }
        candidates = candidates
            .into_iter()
            .zip(dropped)
            .filter_map(|(c, d)| (!d).then_some(c))
            .collect();
    }
    candidates.sort_by(answer_order);
    candidates.truncate(params.top_k);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::ActivationMap;
    use crate::bottom_up::{
        enqueue_sequential, expand_frontier, identify_sequential, ExecStrategy, ExpandCtx,
    };
    use crate::profile::PhaseProfile;
    use crate::state::SearchState;
    use kgraph::GraphBuilder;
    use textindex::{InvertedIndex, ParsedQuery};

    struct Seq;
    impl ExecStrategy for Seq {
        fn enqueue(&self, state: &SearchState, out: &mut Vec<u32>) {
            enqueue_sequential(state, out);
        }
        fn identify(
            &self,
            state: &SearchState,
            frontiers: &[u32],
            level: u8,
            newly: &mut Vec<u32>,
        ) {
            identify_sequential(state, frontiers, level, newly);
        }
        fn expand(&self, ctx: &ExpandCtx<'_>, frontiers: &[u32], level: u8) {
            for &f in frontiers {
                expand_frontier(ctx, f, level);
            }
        }
    }

    /// End-to-end helper: bottom-up + extraction + pruning on a graph with
    /// zero activation levels.
    fn search_all(
        g: &KnowledgeGraph,
        raw: &str,
        params: &SearchParams,
    ) -> (Vec<CentralGraph>, SearchState) {
        let idx = InvertedIndex::build(g);
        let q = ParsedQuery::parse(&idx, raw);
        let state = SearchState::new(g.num_nodes(), &q);
        let activation = vec![0u8; g.num_nodes()];
        let act = ActivationMap::Explicit(&activation);
        let mut profile = PhaseProfile::default();
        let budget = crate::budget::QueryBudget::unlimited().start();
        let ctx = ExpandCtx { graph: g, act: &act, state: &state, budget: &budget };
        let out = crate::bottom_up::run(
            &Seq,
            &ctx,
            &mut crate::bottom_up::BottomUpScratch::default(),
            params,
            &mut profile,
        )
        .expect("unlimited budget");
        let answers: Vec<CentralGraph> = out
            .central_nodes
            .iter()
            .map(|&(c, d)| {
                let e = extract(g, &act, &state, c.0, d);
                prune_and_score(g, &state, &e, params)
            })
            .collect();
        (select_top_k(answers, params), state)
    }

    /// Diamond: two disjoint length-2 paths between the keyword endpoints.
    /// Both middles become central; both hitting paths are recovered.
    #[test]
    fn extraction_recovers_multi_paths() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", "alpha");
        let m1 = b.add_node("m1", "mid one");
        let m2 = b.add_node("m2", "mid two");
        let z = b.add_node("z", "omega");
        b.add_edge(a, m1, "e");
        b.add_edge(a, m2, "e");
        b.add_edge(m1, z, "e");
        b.add_edge(m2, z, "e");
        let g = b.build();
        let params = SearchParams::default();
        let (answers, _) = search_all(&g, "alpha omega", &params);
        // m1 and m2 are both central at depth 1.
        assert_eq!(answers.len(), 2);
        for ans in &answers {
            ans.check_invariants().unwrap();
            assert_eq!(ans.depth, 1);
            assert_eq!(ans.num_nodes(), 3); // keyword, middle, keyword
            assert_eq!(ans.num_edges(), 2);
        }
    }

    /// The paper's Fig. 5 scenario: keywords {stanford, jeffrey, ullman}.
    /// "Jeffrey Ullman" covers two keywords, "Stanford University" is the
    /// central node; extra nodes containing only "Jeffrey" hang off the
    /// central node and must be pruned by the level-cover strategy.
    #[test]
    fn level_cover_prunes_single_keyword_satellites() {
        let mut b = GraphBuilder::new();
        let stanford = b.add_node("su", "Stanford University");
        let ullman = b.add_node("ju", "Jeffrey Ullman");
        b.add_edge(ullman, stanford, "employer");
        let mut jeffreys = Vec::new();
        for i in 0..3 {
            let j = b.add_node(&format!("j{i}"), &format!("Jeffrey Satellite{i}"));
            b.add_edge(j, stanford, "affiliation");
            jeffreys.push(j);
        }
        let g = b.build();
        let params = SearchParams::default();
        let (answers, _) = search_all(&g, "stanford jeffrey ullman", &params);
        let best = answers
            .iter()
            .find(|a| a.central == stanford)
            .expect("stanford-centered answer");
        best.check_invariants().unwrap();
        // The three "Jeffrey"-only satellites are pruned: Jeffrey Ullman
        // (2 keywords) already completes coverage.
        assert!(best.contains_node(ullman));
        for j in &jeffreys {
            assert!(!best.contains_node(*j), "satellite {j} should be pruned");
        }
        assert_eq!(best.num_nodes(), 2);
        assert_eq!(best.num_edges(), 1);
    }

    /// Without pruning need (all keyword nodes required), the graph is
    /// untouched.
    #[test]
    fn level_cover_keeps_everything_when_all_needed() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", "apple");
        let y = b.add_node("y", "banana");
        let c = b.add_node("c", "hub");
        b.add_edge(x, c, "e");
        b.add_edge(y, c, "e");
        let g = b.build();
        let params = SearchParams::default();
        let (answers, _) = search_all(&g, "apple banana", &params);
        let hub_answer = answers.iter().find(|a| a.central == c).unwrap();
        assert_eq!(hub_answer.num_nodes(), 3);
        assert_eq!(hub_answer.num_edges(), 2);
    }

    /// Ablation: disabling level-cover keeps the redundant satellites.
    #[test]
    fn level_cover_ablation_keeps_satellites() {
        let mut b = GraphBuilder::new();
        let stanford = b.add_node("su", "Stanford University");
        let ullman = b.add_node("ju", "Jeffrey Ullman");
        b.add_edge(ullman, stanford, "employer");
        for i in 0..3 {
            let j = b.add_node(&format!("j{i}"), &format!("Jeffrey Satellite{i}"));
            b.add_edge(j, stanford, "affiliation");
        }
        let g = b.build();
        let pruned_params = SearchParams::default();
        // Disable containment dedup too: the unpruned Stanford answer
        // strictly contains the Ullman-centered one and would be dropped.
        let raw_params =
            SearchParams { level_cover: false, dedup_contained: false, ..SearchParams::default() };
        let (pruned, _) = search_all(&g, "stanford jeffrey ullman", &pruned_params);
        let (raw, _) = search_all(&g, "stanford jeffrey ullman", &raw_params);
        let pruned_su = pruned.iter().find(|a| a.central == stanford).unwrap();
        let raw_su = raw.iter().find(|a| a.central == stanford).unwrap();
        assert_eq!(pruned_su.num_nodes(), 2);
        assert_eq!(raw_su.num_nodes(), 5, "satellites kept without level-cover");
        assert!(raw_su.strictly_contains(pruned_su));
    }

    #[test]
    fn scores_prefer_shallow_low_weight_answers() {
        // Two candidate central structures: a co-occurrence node at depth 0
        // and a depth-1 join — depth 0 scores 0 and ranks first.
        let mut b = GraphBuilder::new();
        let both = b.add_node("b", "apple banana");
        let x = b.add_node("x", "apple");
        let y = b.add_node("y", "banana");
        let c = b.add_node("c", "hub");
        b.add_edge(x, c, "e");
        b.add_edge(y, c, "e");
        b.add_edge(both, c, "e");
        let g = b.build();
        let params = SearchParams::default();
        let (answers, _) = search_all(&g, "apple banana", &params);
        assert!(!answers.is_empty());
        assert_eq!(answers[0].central, both);
        assert_eq!(answers[0].depth, 0);
        assert_eq!(answers[0].score, 0.0);
        for w in answers.windows(2) {
            assert!(w[0].score <= w[1].score, "answers must be score-sorted");
        }
    }

    #[test]
    fn containment_dedup_drops_the_container() {
        let small = CentralGraph {
            central: NodeId(1),
            depth: 1,
            nodes: vec![NodeId(0), NodeId(1)],
            edges: vec![(NodeId(0), NodeId(1))],
            keyword_nodes: vec![vec![NodeId(0)]],
            keyword_edges: vec![vec![(NodeId(0), NodeId(1))]],
            score: 1.0,
        };
        let big = CentralGraph {
            central: NodeId(2),
            depth: 2,
            nodes: vec![NodeId(0), NodeId(1), NodeId(2)],
            edges: vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))],
            keyword_nodes: vec![vec![NodeId(0)]],
            keyword_edges: vec![vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]],
            score: 0.5, // better score, but it strictly contains `small`
        };
        let params = SearchParams::default();
        let kept = select_top_k(vec![small.clone(), big], &params);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].central, small.central);

        let no_dedup = SearchParams { dedup_contained: false, ..SearchParams::default() };
        let kept = select_top_k(
            vec![small.clone(), CentralGraph { score: 0.5, ..small.clone() }],
            &no_dedup,
        );
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn select_truncates_to_top_k() {
        let mk = |i: u32, score: f64| CentralGraph {
            central: NodeId(i),
            depth: 1,
            nodes: vec![NodeId(i)],
            edges: vec![],
            keyword_nodes: vec![vec![NodeId(i)]],
            keyword_edges: vec![vec![]],
            score,
        };
        let cands: Vec<_> = (0..10).map(|i| mk(i, i as f64)).collect();
        let params = SearchParams::default().with_top_k(3);
        let kept = select_top_k(cands, &params);
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].central, NodeId(0));
    }
}
