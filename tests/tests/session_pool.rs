//! `SessionPool` under real contention: many threads checking sessions
//! out of one pool, running genuine searches, and checking them back in.
//! Two properties are on trial:
//!
//! 1. **Exclusivity** — the pool never hands one session to two live
//!    guards (asserted via a shared live-id set);
//! 2. **Transparency** — answers produced through pooled (recycled,
//!    arbitrarily interleaved) sessions are bit-identical to fresh
//!    single-use sessions.
//!
//! A model-based proptest drives random checkout/run/checkin schedules
//! against a reference model of the freelist to pin down the accounting
//! (`queries_run`, `sessions_created`, `in_flight`).

use central::engine::{DynParEngine, GpuStyleEngine, KeywordSearchEngine, ParCpuEngine, SeqEngine};
use central::{SearchParams, SessionPool};
use datagen::synthetic::SyntheticConfig;
use datagen::QueryWorkload;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Mutex;
use textindex::{InvertedIndex, ParsedQuery};

fn dataset() -> (kgraph::KnowledgeGraph, InvertedIndex) {
    let mut cfg = SyntheticConfig::tiny(555);
    cfg.num_entities = 600;
    let ds = cfg.generate();
    let index = InvertedIndex::build(&ds.graph);
    (ds.graph, index)
}

#[test]
fn contended_checkouts_stay_exclusive_and_bit_identical() {
    let (graph, index) = dataset();
    let params = SearchParams::default().with_average_distance(2.5).with_top_k(6);
    let mut workload = QueryWorkload::new(404);
    let queries: Vec<ParsedQuery> =
        workload.batch(3, 6).iter().map(|q| ParsedQuery::parse(&index, q)).collect();
    let seq = SeqEngine::new();
    let references: Vec<_> = queries.iter().map(|q| seq.search(&graph, q, &params)).collect();

    let pool = SessionPool::new();
    let live: Mutex<HashSet<u64>> = Mutex::new(HashSet::new());
    let threads = 6;
    let rounds = 12;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let pool = &pool;
            let live = &live;
            let graph = &graph;
            let queries = &queries;
            let references = &references;
            let params = &params;
            scope.spawn(move || {
                // Each thread alternates engines so recycled sessions
                // cross engine boundaries mid-stream, like a server
                // whose backend differs per deployment.
                let engines: Vec<Box<dyn KeywordSearchEngine>> = vec![
                    Box::new(SeqEngine::new()),
                    Box::new(ParCpuEngine::new(2)),
                    Box::new(GpuStyleEngine::new(2)),
                    Box::new(DynParEngine::new(2)),
                ];
                for r in 0..rounds {
                    let mut guard = pool.checkout();
                    assert!(
                        live.lock().unwrap().insert(guard.session_id()),
                        "session {} live in two guards",
                        guard.session_id()
                    );
                    let qi = (t + r) % queries.len();
                    let engine = &engines[r % engines.len()];
                    let out = engine.search_session(&mut guard, graph, &queries[qi], params);
                    let reference = &references[qi];
                    assert_eq!(out.answers.len(), reference.answers.len(), "{}", engine.name());
                    for (a, b) in out.answers.iter().zip(&reference.answers) {
                        assert_eq!(a.central, b.central, "{}", engine.name());
                        assert_eq!(a.nodes, b.nodes, "{}", engine.name());
                        assert_eq!(a.edges, b.edges, "{}", engine.name());
                        assert_eq!(a.score.to_bits(), b.score.to_bits(), "{}", engine.name());
                    }
                    assert!(live.lock().unwrap().remove(&guard.session_id()));
                    drop(guard);
                }
            });
        }
    });

    assert_eq!(pool.in_flight(), 0);
    assert!(
        pool.sessions_created() <= threads,
        "pool grew past the concurrency peak: {} sessions for {} threads",
        pool.sessions_created(),
        threads
    );
    assert_eq!(pool.idle_sessions(), pool.sessions_created());
    // Every (thread, round) pair ran exactly one query; empty parses
    // short-circuit before touching the session and don't count.
    let mut expected = 0u64;
    for t in 0..threads {
        for r in 0..rounds {
            if queries[(t + r) % queries.len()].num_keywords() > 0 {
                expected += 1;
            }
        }
    }
    assert_eq!(pool.queries_run(), expected);
}

/// One schedule step for the model-based pool test.
#[derive(Debug, Clone, Copy)]
enum Op {
    Checkout,
    RunQuery,
    Checkin,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0usize..3).prop_map(|i| match i {
        0 => Op::Checkout,
        1 => Op::RunQuery,
        _ => Op::Checkin,
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Random checkout/run/checkin schedules: the pool's observable
    /// accounting must match a simple reference model, live guards must
    /// never alias, and the freelist must never grow past the schedule's
    /// peak number of simultaneously live guards.
    #[test]
    fn pool_accounting_matches_a_freelist_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut b = kgraph::GraphBuilder::new();
        let x = b.add_node("x", "alpha");
        let y = b.add_node("y", "beta");
        let m = b.add_node("m", "middle");
        b.add_edge(x, m, "e");
        b.add_edge(y, m, "e");
        let graph = b.build();
        let index = InvertedIndex::build(&graph);
        let query = ParsedQuery::parse(&index, "alpha beta");
        let params = SearchParams::default();
        let engine = SeqEngine::new();

        let pool = SessionPool::new();
        let mut guards = Vec::new();
        let mut model_completed = 0u64; // queries by checked-in guards
        let mut model_pending: Vec<u64> = Vec::new(); // per live guard
        let mut model_peak = 0usize;

        for op in ops {
            match op {
                Op::Checkout => {
                    let guard = pool.checkout();
                    let mut ids: HashSet<u64> =
                        guards.iter().map(|g: &central::PooledSession<'_>| g.session_id()).collect();
                    prop_assert!(ids.insert(guard.session_id()), "live alias");
                    guards.push(guard);
                    model_pending.push(0);
                    model_peak = model_peak.max(guards.len());
                }
                Op::RunQuery => {
                    if let Some(guard) = guards.last_mut() {
                        let out = engine.search_session(guard, &graph, &query, &params);
                        prop_assert!(!out.answers.is_empty());
                        *model_pending.last_mut().unwrap() += 1;
                    }
                }
                Op::Checkin => {
                    if let Some(guard) = guards.pop() {
                        drop(guard);
                        model_completed += model_pending.pop().unwrap();
                    }
                }
            }
            prop_assert_eq!(pool.in_flight(), guards.len());
            prop_assert_eq!(pool.queries_run(), model_completed);
            prop_assert_eq!(pool.sessions_created(), model_peak);
            prop_assert_eq!(
                pool.idle_sessions(),
                pool.sessions_created() - guards.len()
            );
        }
        let pending: u64 = model_pending.iter().sum();
        drop(guards);
        prop_assert_eq!(pool.queries_run(), model_completed + pending);
        prop_assert_eq!(pool.in_flight(), 0);
        prop_assert_eq!(pool.idle_sessions(), pool.sessions_created());
        prop_assert_eq!(pool.sessions_created(), model_peak);
    }
}
