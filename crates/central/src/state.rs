//! Lock-free search state: the node–keyword matrix `M`, the frontier
//! flags `FIdentifier` and the central flags `CIdentifier` (paper
//! Sec. V-B, *Initialization*) — **epoch-stamped** so one allocation can
//! serve many queries (DESIGN.md, *Session reuse & epoch stamping*).
//!
//! Theorem V.2 of the paper is the correctness anchor: during one
//! expansion level every write to `M` stores the same value `l + 1` and
//! every write to `FIdentifier` stores `1`, so concurrent duplicate writes
//! are benign and no locks are needed. We therefore use plain atomics with
//! `Relaxed` ordering inside a level; the level-synchronous driver places
//! the necessary happens-before edges at its fork/join boundaries (rayon's
//! scope joins synchronize).
//!
//! ## Epoch stamping
//!
//! Each cell is an `AtomicU32` packing `(epoch << 8) | value`, where the
//! value byte holds the cell's logical `u8` payload (a hitting level, a
//! frontier flag, or a central depth + 1). A cell is *current* iff its
//! stamped epoch equals the state's query epoch; any other stamp reads as
//! the unset value (`∞` / `0`). [`SearchState::begin_query`] therefore
//! resets the entire `n × q` matrix with a single epoch increment instead
//! of an `O(n·q)` clear — the warm path of a [`crate::session::SearchSession`]
//! allocates nothing and touches only the source cells.
//!
//! Epochs are 24-bit and start at 1; 0 is the never-current stamp of a
//! freshly zeroed cell. On wrap-around (once every 2²⁴ queries) the state
//! zeroes every cell once and restarts at epoch 1, so a recycled stamp can
//! never masquerade as current. Theorem V.2 is unaffected: within one
//! query all racing writers pack the *same* epoch with the *same* value,
//! so duplicate packed writes remain benign (see DESIGN.md for the full
//! argument).

use crate::model::INFINITE_LEVEL;
use std::sync::atomic::{AtomicU32, Ordering};
use textindex::ParsedQuery;

/// Bits of the value byte in a packed cell.
const VALUE_BITS: u32 = 8;
/// Mask of the value byte.
const VALUE_MASK: u32 = 0xFF;
/// First epoch past the 24-bit range — triggers the hard reset. Shared
/// with the multi-query [`crate::batch::BatchState`], which stamps its
/// query-major cells with the same scheme.
pub(crate) const EPOCH_LIMIT: u32 = 1 << (32 - VALUE_BITS);

/// Pack an epoch stamp and a value byte into one cell word.
#[inline]
pub(crate) fn pack(epoch: u32, value: u8) -> u32 {
    (epoch << VALUE_BITS) | u32::from(value)
}

/// The value byte of `cell` if its stamp matches `epoch`, else `default`.
#[inline]
pub(crate) fn unpack(cell: u32, epoch: u32, default: u8) -> u8 {
    if cell >> VALUE_BITS == epoch {
        (cell & VALUE_MASK) as u8
    } else {
        default
    }
}

/// Mutable (atomic) per-search state shared by all threads.
///
/// Constructed once (ideally inside a [`crate::session::SearchSession`])
/// and re-armed per query by [`SearchState::begin_query`]; the classic
/// [`SearchState::new`] remains as the one-shot convenience path.
pub struct SearchState {
    /// Number of query keywords `q`.
    q: usize,
    /// Number of graph nodes.
    n: usize,
    /// Current query epoch (24-bit, ≥ 1 once a query began).
    epoch: u32,
    /// `M`: row-major `n × q` hitting levels; value byte `255` = ∞.
    matrix: Vec<AtomicU32>,
    /// `FIdentifier`: value byte 1 ⇔ node is a frontier at the next level.
    frontier: Vec<AtomicU32>,
    /// `CIdentifier`: value byte 0 ⇔ not central; otherwise the node is a
    /// Central Node identified at depth `value − 1`. Storing the depth
    /// (instead of the paper's plain flag) lets Theorem V.4 extraction
    /// reject predecessor edges a frozen central node could never have
    /// produced.
    central: Vec<AtomicU32>,
    /// Epoch stamp per node: current ⇔ node contains at least one query
    /// keyword (`v ∈ ∪T_i`). Written only under `&mut` in `begin_query`;
    /// keyword nodes may be *hit* regardless of their activation level
    /// (Sec. IV-B).
    is_keyword: Vec<u32>,
}

impl Default for SearchState {
    /// Same as [`SearchState::empty`].
    fn default() -> Self {
        SearchState::empty()
    }
}

impl SearchState {
    /// An empty state holding no allocation; arm it with
    /// [`SearchState::begin_query`].
    pub fn empty() -> Self {
        SearchState {
            q: 0,
            n: 0,
            epoch: 0,
            matrix: Vec::new(),
            frontier: Vec::new(),
            central: Vec::new(),
            is_keyword: Vec::new(),
        }
    }

    /// Allocate state for `n` nodes and the query's keyword groups, and
    /// seed the sources: `M[v][i] = 0` and `FIdentifier[v] = 1` for every
    /// `v ∈ T_i`. One-shot equivalent of `empty()` + `begin_query`.
    pub fn new(n: usize, query: &ParsedQuery) -> Self {
        let mut state = Self::empty();
        state.begin_query(n, query);
        state
    }

    /// Re-arm the state for a new query over `n` nodes: bump the epoch
    /// (logically clearing every cell at once), grow the buffers if this
    /// query needs more room than any before it, and seed the sources.
    ///
    /// On the warm path — same graph, any query — this performs **zero
    /// allocations** and writes only the source cells; cells stamped by
    /// earlier queries read as unset through the epoch check.
    pub fn begin_query(&mut self, n: usize, query: &ParsedQuery) {
        self.epoch += 1;
        if self.epoch == EPOCH_LIMIT {
            // Once every 2^24 queries: zero all stamps so recycled epochs
            // can never read as current, then restart at 1.
            self.hard_reset();
            self.epoch = 1;
        }
        self.q = query.num_keywords();
        self.n = n;
        let cells = n * self.q;
        if self.matrix.len() < cells {
            self.matrix.resize_with(cells, || AtomicU32::new(0));
        }
        if self.frontier.len() < n {
            self.frontier.resize_with(n, || AtomicU32::new(0));
            self.central.resize_with(n, || AtomicU32::new(0));
            self.is_keyword.resize(n, 0);
        }
        let epoch = self.epoch;
        for (i, group) in query.groups.iter().enumerate() {
            for &v in &group.nodes {
                self.matrix[v.index() * self.q + i].store(pack(epoch, 0), Ordering::Relaxed);
                self.frontier[v.index()].store(pack(epoch, 1), Ordering::Relaxed);
                self.is_keyword[v.index()] = epoch;
            }
        }
    }

    /// Zero every cell (stamps included). Only needed on epoch wrap.
    fn hard_reset(&mut self) {
        for cell in &mut self.matrix {
            *cell.get_mut() = 0;
        }
        for cell in &mut self.frontier {
            *cell.get_mut() = 0;
        }
        for cell in &mut self.central {
            *cell.get_mut() = 0;
        }
        self.is_keyword.fill(0);
    }

    /// The current query epoch (diagnostics/tests).
    #[inline]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Number of query keywords `q`.
    #[inline]
    pub fn num_keywords(&self) -> usize {
        self.q
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Hitting level `M[v][i]` (255 = not yet hit).
    #[inline]
    pub fn hit(&self, v: u32, i: usize) -> u8 {
        let cell = self.matrix[v as usize * self.q + i].load(Ordering::Relaxed);
        unpack(cell, self.epoch, INFINITE_LEVEL)
    }

    /// Record a hit: `M[v][i] ← level`. Racing writers store the same
    /// packed `(epoch, level)` word (Theorem V.2), so a plain store
    /// suffices.
    #[inline]
    pub fn set_hit(&self, v: u32, i: usize, level: u8) {
        self.matrix[v as usize * self.q + i].store(pack(self.epoch, level), Ordering::Relaxed);
    }

    /// `true` if `v` has been hit by every BFS instance — the Central Node
    /// condition (Def. 3).
    #[inline]
    pub fn row_complete(&self, v: u32) -> bool {
        let base = v as usize * self.q;
        self.matrix[base..base + self.q].iter().all(|m| {
            unpack(m.load(Ordering::Relaxed), self.epoch, INFINITE_LEVEL) != INFINITE_LEVEL
        })
    }

    /// Set `FIdentifier[v] ← 1` (node becomes/stays a frontier).
    #[inline]
    pub fn mark_frontier(&self, v: u32) {
        self.frontier[v as usize].store(pack(self.epoch, 1), Ordering::Relaxed);
    }

    /// Read and clear one frontier flag (sequential enqueue). A stale
    /// stamp reads as clear and is left untouched.
    #[inline]
    pub fn take_frontier_flag(&self, v: u32) -> bool {
        let cell = self.frontier[v as usize].load(Ordering::Relaxed);
        if unpack(cell, self.epoch, 0) == 1 {
            self.frontier[v as usize].store(pack(self.epoch, 0), Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Read a frontier flag without clearing (parallel compaction reads
    /// first, clears in bulk).
    #[inline]
    pub fn frontier_flag(&self, v: u32) -> bool {
        unpack(self.frontier[v as usize].load(Ordering::Relaxed), self.epoch, 0) == 1
    }

    /// Clear one frontier flag.
    #[inline]
    pub fn clear_frontier_flag(&self, v: u32) {
        self.frontier[v as usize].store(pack(self.epoch, 0), Ordering::Relaxed);
    }

    /// `true` if `v` was identified as a Central Node.
    #[inline]
    pub fn is_central(&self, v: u32) -> bool {
        unpack(self.central[v as usize].load(Ordering::Relaxed), self.epoch, 0) != 0
    }

    /// Mark `v` as a Central Node identified at `depth` (it becomes
    /// unavailable for expansion from this level on).
    #[inline]
    pub fn mark_central(&self, v: u32, depth: u8) {
        debug_assert!(depth < u8::MAX);
        self.central[v as usize].store(pack(self.epoch, depth + 1), Ordering::Relaxed);
    }

    /// The identification depth of `v` if it is a Central Node.
    #[inline]
    pub fn central_depth(&self, v: u32) -> Option<u8> {
        match unpack(self.central[v as usize].load(Ordering::Relaxed), self.epoch, 0) {
            0 => None,
            d => Some(d - 1),
        }
    }

    /// `true` if `v` contains at least one query keyword.
    #[inline]
    pub fn is_keyword_node(&self, v: u32) -> bool {
        self.is_keyword[v as usize] == self.epoch
    }

    /// `true` if `v` is a source of instance `i` (`v ∈ T_i ⇔ M[v][i] = 0`).
    #[inline]
    pub fn is_source(&self, v: u32, i: usize) -> bool {
        self.hit(v, i) == 0
    }

    /// Number of keywords contained in `v` (its level-cover class).
    #[inline]
    pub fn keyword_count(&self, v: u32) -> usize {
        (0..self.q).filter(|&i| self.is_source(v, i)).count()
    }

    /// Copy out the matrix (tests/debugging). Stale cells read as ∞.
    pub fn matrix_snapshot(&self) -> Vec<u8> {
        self.matrix[..self.n * self.q]
            .iter()
            .map(|m| unpack(m.load(Ordering::Relaxed), self.epoch, INFINITE_LEVEL))
            .collect()
    }
}

/// Read-only view of hitting levels, implemented both by the lock-free
/// [`SearchState`] (matrix engines) and by the dynamic-memory engine's
/// recorded state (CPU-Par-d), so that the top-down stage is shared.
pub trait HitLevels {
    /// Number of query keywords `q`.
    fn num_keywords(&self) -> usize;
    /// Hitting level `h_v^i` (255 = never hit).
    fn hit(&self, v: u32, i: usize) -> u8;
    /// `true` if `v` contains at least one query keyword.
    fn is_keyword_node(&self, v: u32) -> bool;
    /// If `v` is a Central Node, the depth at which it was identified —
    /// it stopped expanding there, which extraction must respect.
    fn central_depth(&self, v: u32) -> Option<u8>;
    /// `true` if `v ∈ T_i`.
    fn is_source(&self, v: u32, i: usize) -> bool {
        self.hit(v, i) == 0
    }
    /// Number of query keywords contained in `v`.
    fn keyword_count(&self, v: u32) -> usize {
        (0..self.num_keywords()).filter(|&i| self.is_source(v, i)).count()
    }
}

impl HitLevels for SearchState {
    fn num_keywords(&self) -> usize {
        SearchState::num_keywords(self)
    }
    fn hit(&self, v: u32, i: usize) -> u8 {
        SearchState::hit(self, v, i)
    }
    fn is_keyword_node(&self, v: u32) -> bool {
        SearchState::is_keyword_node(self, v)
    }
    fn central_depth(&self, v: u32) -> Option<u8> {
        SearchState::central_depth(self, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;
    use textindex::InvertedIndex;

    fn fixture() -> (kgraph::KnowledgeGraph, ParsedQuery) {
        let mut b = GraphBuilder::new();
        b.add_node("a", "apple fruit");
        b.add_node("b", "banana fruit");
        b.add_node("c", "cherry");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let q = ParsedQuery::parse(&idx, "apple banana fruit");
        (g, q)
    }

    fn state() -> SearchState {
        let (g, q) = fixture();
        SearchState::new(g.num_nodes(), &q)
    }

    #[test]
    fn sources_are_seeded() {
        let s = state();
        assert_eq!(s.num_keywords(), 3);
        // node 0 "apple fruit": source of keyword 0 (apple) and 2 (fruit)
        assert_eq!(s.hit(0, 0), 0);
        assert_eq!(s.hit(0, 1), INFINITE_LEVEL);
        assert_eq!(s.hit(0, 2), 0);
        assert!(s.frontier_flag(0));
        assert!(s.frontier_flag(1));
        assert!(!s.frontier_flag(2), "cherry matches nothing");
        assert!(s.is_keyword_node(0));
        assert!(!s.is_keyword_node(2));
    }

    #[test]
    fn row_complete_requires_every_keyword() {
        let s = state();
        assert!(!s.row_complete(0));
        s.set_hit(0, 1, 2);
        assert!(s.row_complete(0));
    }

    #[test]
    fn take_frontier_flag_clears() {
        let s = state();
        assert!(s.take_frontier_flag(0));
        assert!(!s.take_frontier_flag(0));
        s.mark_frontier(0);
        assert!(s.take_frontier_flag(0));
    }

    #[test]
    fn keyword_counts_reflect_sources() {
        let s = state();
        assert_eq!(s.keyword_count(0), 2); // apple, fruit
        assert_eq!(s.keyword_count(1), 2); // banana, fruit
        assert_eq!(s.keyword_count(2), 0);
    }

    #[test]
    fn central_flags_carry_identification_depth() {
        let s = state();
        assert!(!s.is_central(1));
        assert_eq!(s.central_depth(1), None);
        s.mark_central(1, 3);
        assert!(s.is_central(1));
        assert_eq!(s.central_depth(1), Some(3));
        s.mark_central(2, 0);
        assert_eq!(s.central_depth(2), Some(0));
    }

    #[test]
    fn epoch_bump_invalidates_previous_query_writes() {
        let (g, q) = fixture();
        let mut s = SearchState::new(g.num_nodes(), &q);
        s.set_hit(2, 0, 4);
        s.mark_central(2, 4);
        s.mark_frontier(2);
        assert_eq!(s.hit(2, 0), 4);
        // Re-arm: everything from the old epoch must read as unset.
        s.begin_query(g.num_nodes(), &q);
        assert_eq!(s.hit(2, 0), INFINITE_LEVEL);
        assert!(!s.is_central(2));
        assert_eq!(s.central_depth(2), None);
        assert!(!s.frontier_flag(2));
        assert!(!s.take_frontier_flag(2));
        // But the new query's sources were re-seeded.
        assert_eq!(s.hit(0, 0), 0);
        assert!(s.frontier_flag(0));
        assert!(s.is_keyword_node(0));
    }

    #[test]
    fn warm_begin_query_does_not_reallocate() {
        let (g, q) = fixture();
        let mut s = SearchState::new(g.num_nodes(), &q);
        let matrix_ptr = s.matrix.as_ptr();
        let frontier_ptr = s.frontier.as_ptr();
        for _ in 0..10 {
            s.begin_query(g.num_nodes(), &q);
        }
        assert_eq!(s.matrix.as_ptr(), matrix_ptr, "matrix must be reused in place");
        assert_eq!(s.frontier.as_ptr(), frontier_ptr, "flags must be reused in place");
        assert_eq!(s.epoch(), 11);
    }

    #[test]
    fn buffers_grow_for_larger_queries() {
        let (g, q) = fixture();
        let mut s = SearchState::empty();
        assert_eq!(s.epoch(), 0);
        s.begin_query(g.num_nodes(), &q);
        assert_eq!(s.num_nodes(), 3);
        assert_eq!(s.num_keywords(), 3);
        // A wider graph with the same query grows the buffers.
        s.begin_query(g.num_nodes() + 5, &q);
        assert_eq!(s.num_nodes(), 8);
        assert_eq!(s.hit(7, 0), INFINITE_LEVEL);
        assert!(!s.is_central(7));
    }

    #[test]
    fn epoch_wrap_hard_resets() {
        let (g, q) = fixture();
        let mut s = SearchState::new(g.num_nodes(), &q);
        s.set_hit(2, 1, 7);
        // Force the wrap: the next begin_query hits EPOCH_LIMIT, zeroes all
        // cells and restarts at epoch 1.
        s.epoch = EPOCH_LIMIT - 1;
        s.begin_query(g.num_nodes(), &q);
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.hit(2, 1), INFINITE_LEVEL, "pre-wrap write must not survive");
        assert_eq!(s.hit(0, 0), 0, "sources re-seeded after the wrap");
    }

    #[test]
    fn stale_epoch_cells_never_alias_current_values() {
        // A cell written at epoch e must not read as value 0 ("source") at
        // epoch e+1 — the bug class epoch stamping exists to prevent.
        let (g, q) = fixture();
        let mut s = SearchState::new(g.num_nodes(), &q);
        s.set_hit(2, 0, 0); // node 2 becomes a "source" this epoch
        assert!(s.is_source(2, 0));
        s.begin_query(g.num_nodes(), &q);
        assert!(!s.is_source(2, 0), "stale zero must read as ∞, not source");
        assert_eq!(s.keyword_count(2), 0);
    }
}
