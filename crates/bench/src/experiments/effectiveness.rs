//! Figs. 11–12 + Table V: top-k precision of WikiSearch (α ∈
//! {0.05, 0.1, 0.4}) vs BANKS-II on the planted effectiveness dataset,
//! with the Table V query list and `kwf` statistics.

use crate::banks_budget;
use banks::{BanksII, BanksParams};
use central::engine::{KeywordSearchEngine, ParCpuEngine};
use central::SearchParams;
use datagen::PlantedDataset;
use eval::precision::EffectivenessReport;
use eval::runner::ExperimentSink;
use eval::Table;
use kgraph::sampling::estimate_average_distance_sources;
use kgraph::NodeId;
use serde_json::json;
use textindex::{InvertedIndex, ParsedQuery};

/// The WikiSearch α settings plotted in Figs. 11–12.
pub const ALPHAS: [f32; 3] = [0.05, 0.1, 0.4];

/// Run the effectiveness study.
pub fn run() -> serde_json::Value {
    println!("== Figs. 11–12 + Table V: effectiveness (planted ground truth) ==");
    let ds = PlantedDataset::build(77, 24, 12);
    let index = InvertedIndex::build(&ds.graph);
    let a = estimate_average_distance_sources(&ds.graph, 16, 48, 32, 7).mean;
    println!(
        "dataset: {} nodes / {} edges, estimated A = {a:.2}",
        ds.graph.num_nodes(),
        ds.graph.num_directed_edges()
    );

    // Table V block: queries + kwf.
    let mut tv = Table::new(vec!["query", "keywords", "kwf"]);
    let mut queries_json = Vec::new();
    for q in ds.queries {
        let parsed = ParsedQuery::parse(&index, q.raw);
        tv.row(vec![
            q.id.to_string(),
            q.raw.to_string(),
            format!("{:.0}", parsed.avg_keyword_frequency()),
        ]);
        queries_json.push(json!({
            "id": q.id,
            "raw": q.raw,
            "kwf": parsed.avg_keyword_frequency(),
        }));
    }
    println!("\nTable V (queries + average keyword frequency on this dataset):");
    tv.print();

    // Engines: BANKS-II and WikiSearch at three α settings.
    let engine = ParCpuEngine::new(crate::default_threads());
    let banks = BanksII::new();
    let banks_params = BanksParams::default().with_top_k(20).with_node_budget(banks_budget());

    let mut table = Table::new(vec!["query", "setting", "top-5", "top-10", "top-20"]);
    let mut results_json = Vec::new();
    // Figs. 11–12 plot Q1–Q9 (Q10/Q11 are saturated for every engine).
    for q in ds.queries.iter() {
        let parsed = ParsedQuery::parse(&index, q.raw);
        // BANKS-II
        let banks_out = banks.search(&ds.graph, &parsed, &banks_params);
        let banks_answers: Vec<Vec<NodeId>> =
            banks_out.answers.iter().map(|t| t.nodes.clone()).collect();
        let banks_rep = EffectivenessReport::evaluate(&ds, q, &banks_answers);
        table.row(vec![
            q.id.to_string(),
            "BANKS-II".to_string(),
            format!("{:.0}%", banks_rep.p_at_5 * 100.0),
            format!("{:.0}%", banks_rep.p_at_10 * 100.0),
            format!("{:.0}%", banks_rep.p_at_20 * 100.0),
        ]);
        let mut settings = vec![json!({
            "setting": "BANKS-II",
            "p5": banks_rep.p_at_5, "p10": banks_rep.p_at_10, "p20": banks_rep.p_at_20,
        })];
        // WikiSearch at each α
        for alpha in ALPHAS {
            let params = SearchParams::default()
                .with_top_k(20)
                .with_alpha(alpha)
                .with_average_distance(a);
            let out = engine.search(&ds.graph, &parsed, &params);
            let answers: Vec<Vec<NodeId>> = out.answers.iter().map(|c| c.nodes.clone()).collect();
            let rep = EffectivenessReport::evaluate(&ds, q, &answers);
            table.row(vec![
                q.id.to_string(),
                format!("α-{alpha}"),
                format!("{:.0}%", rep.p_at_5 * 100.0),
                format!("{:.0}%", rep.p_at_10 * 100.0),
                format!("{:.0}%", rep.p_at_20 * 100.0),
            ]);
            settings.push(json!({
                "setting": format!("alpha-{alpha}"),
                "p5": rep.p_at_5, "p10": rep.p_at_10, "p20": rep.p_at_20,
                "answers": answers.len(),
            }));
        }
        results_json.push(json!({ "query": q.id, "settings": settings }));
    }
    println!("\nFigs. 11–12 (top-k precision):");
    table.print();
    println!("(paper's shape: some α setting matches or beats BANKS-II on every query;\n BANKS-II fails phrase queries like Q4/Q6/Q7 by splitting phrases)\n");

    let record = json!({
        "experiment": "effectiveness",
        "avg_distance": a,
        "queries": queries_json,
        "results": results_json,
    });
    if let Ok(path) = ExperimentSink::new().write("effectiveness", &record) {
        println!("json: {}", path.display());
    }
    record
}
