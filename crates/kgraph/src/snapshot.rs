//! The `.wsnap` on-disk snapshot container: a memory-mappable, zero-copy
//! serialization of every columnar structure the engine serves from.
//!
//! ## File layout
//!
//! ```text
//! ┌────────────────────────────────────────────────────────┐ offset 0
//! │ header page (4096 bytes)                               │
//! │   0..8    magic  b"WSNAPKG1"                           │
//! │   8..12   format version  u32 = 1                      │
//! │   12..16  endian marker   u32 = 0x1A2B3C4D             │
//! │   16..24  file length     u64                          │
//! │   24..32  section count   u64                          │
//! │   32..40  header checksum u64 (FNV-1a, field zeroed)   │
//! │   40..48  reserved                                     │
//! │   48..    section table: count × 32-byte entries       │
//! │           { id u32, reserved u32, offset u64,          │
//! │             byte_len u64, checksum u64 (FNV-1a) }      │
//! ├────────────────────────────────────────────────────────┤ 4096
//! │ section payloads, each starting on a 4096-byte         │
//! │ boundary, zero-padded between sections                 │
//! └────────────────────────────────────────────────────────┘
//! ```
//!
//! All integers and floats are **little-endian native layout** — the open
//! path refuses the file on a big-endian host (the endian marker) instead
//! of byte-swapping, because zero-copy is the whole point. Section
//! payloads are raw [`Pod`] arrays; the 4096-byte alignment guarantees
//! every element type's alignment relative to the page-aligned mapping
//! base, so a [`Column`] can view a section in place.
//!
//! ## Validation model
//!
//! [`Snapshot::open`] validates the **header page only**: magic, version,
//! endianness, file length, header checksum, and that every section lies
//! inside the file on an aligned offset. It deliberately does *not* read
//! section payloads — opening a multi-gigabyte snapshot touches one page,
//! and the OS faults the rest in on demand (this is what makes `serve
//! --mmap` cold starts O(ms)). Per-section FNV-1a checksums are stored for
//! the paranoid path: [`Snapshot::verify_checksums`] reads everything and
//! is used by tests, `build-snapshot` verification and operators.
//!
//! ## Section id registry
//!
//! | range | owner |
//! |---|---|
//! | 0–19 | `kgraph` (graph CSR, degrees, weights, string tables) |
//! | 20–39 | `textindex` (inverted-index terms + posting lists) |
//! | 40–59 | `wikisearch-engine` (engine metadata, e.g. sampled `A`) |

use crate::column::{pod_bytes, Column, Pod, StrTable};
use crate::error::KgraphError;
use crate::graph::{Adjacency, KnowledgeGraph};
use crate::mmap::Mmap;
use std::fs::File;
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

/// Magic bytes opening every `.wsnap` file.
pub const MAGIC: &[u8; 8] = b"WSNAPKG1";
/// Current format version.
pub const VERSION: u32 = 1;
/// Endianness marker as written by a little-endian host.
const ENDIAN_MARKER: u32 = 0x1A2B_3C4D;
/// Header page size; also the alignment of every section payload.
pub const ALIGN: usize = 4096;
/// Bytes 48.. of the header hold the section table.
const TABLE_OFFSET: usize = 48;
/// One section-table entry.
const ENTRY_SIZE: usize = 32;
/// Hard cap on sections (the table must fit the header page).
pub const MAX_SECTIONS: usize = (ALIGN - TABLE_OFFSET) / ENTRY_SIZE;

// ---- kgraph-owned section ids (0–19) ----

/// Graph metadata (`num_directed_edges` as one u64).
pub const SEC_GRAPH_META: u32 = 0;
/// CSR offsets, `n + 1` × u64.
pub const SEC_OFFSETS: u32 = 1;
/// CSR adjacency entries, 8 bytes each.
pub const SEC_ADJ: u32 = 2;
/// Per-node in-degrees, u32.
pub const SEC_IN_DEGREE: u32 = 3;
/// Per-node out-degrees, u32.
pub const SEC_OUT_DEGREE: u32 = 4;
/// Raw (pre-normalization) degree-of-summary weights, f32.
pub const SEC_WEIGHTS_RAW: u32 = 5;
/// Min–max normalized weights, f32.
pub const SEC_WEIGHTS: u32 = 6;
/// Node-key string-table offsets, `n + 1` × u64.
pub const SEC_NODE_KEY_OFFSETS: u32 = 7;
/// Node-key string-table UTF-8 arena.
pub const SEC_NODE_KEY_BYTES: u32 = 8;
/// Node-text string-table offsets.
pub const SEC_NODE_TEXT_OFFSETS: u32 = 9;
/// Node-text string-table UTF-8 arena.
pub const SEC_NODE_TEXT_BYTES: u32 = 10;
/// Label-name string-table offsets.
pub const SEC_LABEL_OFFSETS: u32 = 11;
/// Label-name string-table UTF-8 arena.
pub const SEC_LABEL_BYTES: u32 = 12;

/// FNV-1a 64-bit hash — the snapshot's checksum function. Dependency-free
/// and byte-order independent; integrity, not cryptography.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn snap_err(message: impl Into<String>) -> KgraphError {
    KgraphError::Snapshot { message: message.into() }
}

#[derive(Clone, Copy, Debug)]
struct SectionEntry {
    id: u32,
    offset: u64,
    len: u64,
    checksum: u64,
}

/// Streaming writer producing a `.wsnap` file.
///
/// Sections are appended in call order, each aligned to [`ALIGN`] and
/// checksummed as written; [`SnapshotWriter::finish`] seals the file by
/// writing the header page (with its own checksum) in place.
pub struct SnapshotWriter {
    file: File,
    pos: u64,
    sections: Vec<SectionEntry>,
}

impl SnapshotWriter {
    /// Create (truncate) `path` and reserve the header page.
    pub fn create(path: &Path) -> io::Result<SnapshotWriter> {
        let mut file = File::create(path)?;
        file.write_all(&[0u8; ALIGN])?;
        Ok(SnapshotWriter { file, pos: ALIGN as u64, sections: Vec::new() })
    }

    /// Append one section of raw bytes under `id`.
    pub fn section_bytes(&mut self, id: u32, bytes: &[u8]) -> io::Result<()> {
        if self.sections.len() >= MAX_SECTIONS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("snapshot section table is full ({MAX_SECTIONS} sections)"),
            ));
        }
        if self.sections.iter().any(|s| s.id == id) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("duplicate snapshot section id {id}"),
            ));
        }
        // Pad to the section alignment boundary.
        let aligned = self.pos.next_multiple_of(ALIGN as u64);
        let pad = (aligned - self.pos) as usize;
        if pad > 0 {
            self.file.write_all(&vec![0u8; pad])?;
        }
        self.file.write_all(bytes)?;
        self.sections.push(SectionEntry {
            id,
            offset: aligned,
            len: bytes.len() as u64,
            checksum: fnv1a(bytes),
        });
        self.pos = aligned + bytes.len() as u64;
        Ok(())
    }

    /// Append one section holding a typed [`Pod`] array.
    pub fn section_pod<T: Pod>(&mut self, id: u32, data: &[T]) -> io::Result<()> {
        self.section_bytes(id, pod_bytes(data))
    }

    /// Append the two sections of a string table.
    pub fn section_str_table(
        &mut self,
        offsets_id: u32,
        bytes_id: u32,
        table: &StrTable,
    ) -> io::Result<()> {
        self.section_pod(offsets_id, table.offsets())?;
        self.section_pod(bytes_id, table.bytes())
    }

    /// Seal the file: pad the tail to a page boundary and write the
    /// header page with the section table and checksums.
    pub fn finish(mut self) -> io::Result<()> {
        let file_len = self.pos.next_multiple_of(ALIGN as u64);
        let tail_pad = (file_len - self.pos) as usize;
        if tail_pad > 0 {
            self.file.write_all(&vec![0u8; tail_pad])?;
        }
        let mut header = vec![0u8; ALIGN];
        header[0..8].copy_from_slice(MAGIC);
        header[8..12].copy_from_slice(&VERSION.to_le_bytes());
        header[12..16].copy_from_slice(&ENDIAN_MARKER.to_le_bytes());
        header[16..24].copy_from_slice(&file_len.to_le_bytes());
        header[24..32].copy_from_slice(&(self.sections.len() as u64).to_le_bytes());
        // [32..40] checksum written last, [40..48] reserved.
        for (i, s) in self.sections.iter().enumerate() {
            let at = TABLE_OFFSET + i * ENTRY_SIZE;
            header[at..at + 4].copy_from_slice(&s.id.to_le_bytes());
            header[at + 8..at + 16].copy_from_slice(&s.offset.to_le_bytes());
            header[at + 16..at + 24].copy_from_slice(&s.len.to_le_bytes());
            header[at + 24..at + 32].copy_from_slice(&s.checksum.to_le_bytes());
        }
        let crc = fnv1a(&header);
        header[32..40].copy_from_slice(&crc.to_le_bytes());
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&header)?;
        self.file.sync_all()
    }
}

/// An opened, header-validated, memory-mapped `.wsnap` file.
///
/// Opening touches only the header page; section payloads are faulted in
/// by the OS on first access. Clone the inner [`Arc`] via
/// [`Snapshot::map`] to build zero-copy [`Column`]s.
#[derive(Debug)]
pub struct Snapshot {
    map: Arc<Mmap>,
    sections: Vec<SectionEntry>,
}

impl Snapshot {
    /// Open and header-validate `path`. See the module docs for exactly
    /// what is (and is not) checked here.
    pub fn open(path: &Path) -> Result<Snapshot, KgraphError> {
        let file = File::open(path)?;
        let map = Mmap::map_readonly(&file)?;
        Self::from_mmap(Arc::new(map))
    }

    /// Validate an already-created mapping (tests corrupt bytes in
    /// memory through this path).
    pub fn from_mmap(map: Arc<Mmap>) -> Result<Snapshot, KgraphError> {
        if ENDIAN_MARKER.to_le_bytes() != ENDIAN_MARKER.to_ne_bytes() {
            return Err(snap_err("snapshots require a little-endian host"));
        }
        let bytes = map.as_slice();
        if bytes.len() < ALIGN {
            return Err(snap_err(format!(
                "file is {} bytes, smaller than the {ALIGN}-byte header",
                bytes.len()
            )));
        }
        if &bytes[0..8] != MAGIC {
            return Err(snap_err("bad magic (not a .wsnap snapshot)"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(snap_err(format!(
                "unsupported snapshot version {version} (this build reads version {VERSION})"
            )));
        }
        let endian = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        if endian != ENDIAN_MARKER {
            return Err(snap_err("endianness marker mismatch"));
        }
        let file_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        if file_len != bytes.len() as u64 {
            return Err(snap_err(format!(
                "header says {file_len} bytes but the file holds {} (truncated?)",
                bytes.len()
            )));
        }
        let count = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
        if count > MAX_SECTIONS {
            return Err(snap_err(format!("section count {count} exceeds {MAX_SECTIONS}")));
        }
        let stored_crc = u64::from_le_bytes(bytes[32..40].try_into().unwrap());
        let mut header = bytes[..ALIGN].to_vec();
        header[32..40].fill(0);
        let actual_crc = fnv1a(&header);
        if stored_crc != actual_crc {
            return Err(snap_err(format!(
                "header checksum mismatch (stored {stored_crc:#018x}, computed {actual_crc:#018x})"
            )));
        }
        let mut sections = Vec::with_capacity(count);
        for i in 0..count {
            let at = TABLE_OFFSET + i * ENTRY_SIZE;
            let id = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            let offset = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap());
            let len = u64::from_le_bytes(bytes[at + 16..at + 24].try_into().unwrap());
            let checksum = u64::from_le_bytes(bytes[at + 24..at + 32].try_into().unwrap());
            if offset % ALIGN as u64 != 0 {
                return Err(snap_err(format!("section {id} offset {offset} is unaligned")));
            }
            if offset.checked_add(len).map_or(true, |end| end > file_len) {
                return Err(snap_err(format!(
                    "section {id} range {offset}+{len} exceeds file length {file_len}"
                )));
            }
            if sections.iter().any(|s: &SectionEntry| s.id == id) {
                return Err(snap_err(format!("duplicate section id {id}")));
            }
            sections.push(SectionEntry { id, offset, len, checksum });
        }
        Ok(Snapshot { map, sections })
    }

    /// The underlying mapping (shared with every column built from it).
    pub fn map(&self) -> &Arc<Mmap> {
        &self.map
    }

    /// Total file length in bytes.
    pub fn file_len(&self) -> usize {
        self.map.len()
    }

    /// Ids of all sections present, in file order.
    pub fn section_ids(&self) -> Vec<u32> {
        self.sections.iter().map(|s| s.id).collect()
    }

    fn entry(&self, id: u32) -> Result<&SectionEntry, KgraphError> {
        self.sections
            .iter()
            .find(|s| s.id == id)
            .ok_or_else(|| snap_err(format!("missing section {id}")))
    }

    /// Raw bytes of section `id`.
    pub fn section(&self, id: u32) -> Result<&[u8], KgraphError> {
        let e = self.entry(id)?;
        Ok(&self.map.as_slice()[e.offset as usize..(e.offset + e.len) as usize])
    }

    /// Section `id` as a zero-copy typed column.
    pub fn column<T: Pod>(&self, id: u32) -> Result<Column<T>, KgraphError> {
        let e = self.entry(id)?;
        Column::from_mmap(Arc::clone(&self.map), e.offset as usize, e.len as usize)
            .map_err(|m| snap_err(format!("section {id}: {m}")))
    }

    /// Two sections as a zero-copy string table.
    pub fn str_table(&self, offsets_id: u32, bytes_id: u32) -> Result<StrTable, KgraphError> {
        StrTable::from_columns(self.column(offsets_id)?, self.column(bytes_id)?)
            .map_err(|m| snap_err(format!("sections {offsets_id}/{bytes_id}: {m}")))
    }

    /// Deep integrity check: recompute every section's FNV-1a checksum.
    /// Reads the whole file — this is the *opposite* of the lazy open
    /// path; call it from tests, verification tooling, or operators who
    /// suspect bit rot.
    pub fn verify_checksums(&self) -> Result<(), KgraphError> {
        for e in &self.sections {
            let bytes = &self.map.as_slice()[e.offset as usize..(e.offset + e.len) as usize];
            let actual = fnv1a(bytes);
            if actual != e.checksum {
                return Err(snap_err(format!(
                    "section {} checksum mismatch (stored {:#018x}, computed {actual:#018x})",
                    e.id, e.checksum
                )));
            }
        }
        Ok(())
    }
}

/// Write all of `g`'s sections into `w` (ids 0–12). The engine layers
/// its own sections (inverted index, metadata) on top in the same file.
pub fn write_graph_sections(w: &mut SnapshotWriter, g: &KnowledgeGraph) -> io::Result<()> {
    w.section_pod(SEC_GRAPH_META, &[g.num_directed_edges() as u64])?;
    w.section_pod(SEC_OFFSETS, g.csr_offsets())?;
    w.section_pod(SEC_ADJ, g.csr_adjacency())?;
    w.section_pod(SEC_IN_DEGREE, g.in_degrees())?;
    w.section_pod(SEC_OUT_DEGREE, g.out_degrees())?;
    w.section_pod(SEC_WEIGHTS_RAW, g.raw_weights())?;
    w.section_pod(SEC_WEIGHTS, g.weights())?;
    w.section_str_table(SEC_NODE_KEY_OFFSETS, SEC_NODE_KEY_BYTES, g.node_keys_table())?;
    w.section_str_table(SEC_NODE_TEXT_OFFSETS, SEC_NODE_TEXT_BYTES, g.node_texts_table())?;
    w.section_str_table(SEC_LABEL_OFFSETS, SEC_LABEL_BYTES, g.label_names_table())
}

/// Reassemble a zero-copy [`KnowledgeGraph`] over `snap`'s graph
/// sections. Performs only length cross-checks (every per-node column
/// must agree on `n`) — no payload is read eagerly beyond the string
/// tables' final offsets.
pub fn graph_from_snapshot(snap: &Snapshot) -> Result<KnowledgeGraph, KgraphError> {
    let meta: Column<u64> = snap.column(SEC_GRAPH_META)?;
    if meta.len() != 1 {
        return Err(snap_err(format!(
            "graph meta section holds {} values, expected 1",
            meta.len()
        )));
    }
    let num_directed_edges = meta[0] as usize;
    let offsets: Column<u64> = snap.column(SEC_OFFSETS)?;
    if offsets.is_empty() {
        return Err(snap_err("CSR offset section is empty"));
    }
    let n = offsets.len() - 1;
    let adj: Column<Adjacency> = snap.column(SEC_ADJ)?;
    let in_degree: Column<u32> = snap.column(SEC_IN_DEGREE)?;
    let out_degree: Column<u32> = snap.column(SEC_OUT_DEGREE)?;
    let weights_raw: Column<f32> = snap.column(SEC_WEIGHTS_RAW)?;
    let weights: Column<f32> = snap.column(SEC_WEIGHTS)?;
    let node_keys = snap.str_table(SEC_NODE_KEY_OFFSETS, SEC_NODE_KEY_BYTES)?;
    let node_texts = snap.str_table(SEC_NODE_TEXT_OFFSETS, SEC_NODE_TEXT_BYTES)?;
    let label_names = snap.str_table(SEC_LABEL_OFFSETS, SEC_LABEL_BYTES)?;
    for (what, len) in [
        ("in_degree", in_degree.len()),
        ("out_degree", out_degree.len()),
        ("weights_raw", weights_raw.len()),
        ("weights", weights.len()),
        ("node_keys", node_keys.len()),
        ("node_texts", node_texts.len()),
    ] {
        if len != n {
            return Err(snap_err(format!(
                "{what} section holds {len} entries for a {n}-node graph"
            )));
        }
    }
    KnowledgeGraph::from_parts(
        offsets,
        adj,
        num_directed_edges,
        node_keys,
        node_texts,
        label_names,
        in_degree,
        out_degree,
        weights_raw,
        weights,
    )
    .map_err(snap_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("kgraph-snap-{}-{name}.wsnap", std::process::id()))
    }

    fn sample() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        let x = b.add_node("Q1", "XML schema");
        let y = b.add_node("Q2", "RDF");
        let z = b.add_node("Q3", "naïve — unicode ✓");
        b.add_edge(x, y, "related to");
        b.add_edge(y, z, "instance of");
        b.add_edge(z, x, "instance of");
        b.build()
    }

    fn write_sample(path: &std::path::Path) -> KnowledgeGraph {
        let g = sample();
        let mut w = SnapshotWriter::create(path).unwrap();
        write_graph_sections(&mut w, &g).unwrap();
        w.finish().unwrap();
        g
    }

    #[test]
    fn graph_round_trips_through_a_snapshot() {
        let path = tmp("roundtrip");
        let g = write_sample(&path);
        let snap = Snapshot::open(&path).unwrap();
        snap.verify_checksums().unwrap();
        let g2 = graph_from_snapshot(&snap).unwrap();
        assert!(g2.is_memory_mapped());
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_directed_edges(), g.num_directed_edges());
        assert_eq!(g2.num_labels(), g.num_labels());
        for v in g.nodes() {
            assert_eq!(g2.node_key(v), g.node_key(v));
            assert_eq!(g2.node_text(v), g.node_text(v));
            assert_eq!(g2.neighbors(v), g.neighbors(v));
            assert_eq!(g2.weight(v).to_bits(), g.weight(v).to_bits());
            assert_eq!(g2.raw_weight(v).to_bits(), g.raw_weight(v).to_bits());
            assert_eq!(g2.in_degree(v), g.in_degree(v));
            assert_eq!(g2.out_degree(v), g.out_degree(v));
        }
        g2.check_invariants().unwrap();
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn sections_are_page_aligned() {
        let path = tmp("aligned");
        write_sample(&path);
        let snap = Snapshot::open(&path).unwrap();
        assert_eq!(snap.file_len() % ALIGN, 0);
        for id in snap.section_ids() {
            let bytes = snap.section(id).unwrap();
            let base = snap.map().as_ptr() as usize;
            assert_eq!((bytes.as_ptr() as usize - base) % ALIGN, 0, "section {id}");
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn corrupted_magic_is_rejected() {
        let path = tmp("magic");
        write_sample(&path);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        let err = Snapshot::open(&path).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn wrong_version_is_rejected_with_both_versions_named() {
        let path = tmp("version");
        write_sample(&path);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        // Re-seal the header checksum so the *version* check fires, not
        // the checksum check.
        let mut header = bytes[..ALIGN].to_vec();
        header[32..40].fill(0);
        let crc = fnv1a(&header);
        bytes[32..40].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = Snapshot::open(&path).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
        assert!(err.to_string().contains("version 1"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn truncated_file_is_rejected() {
        let path = tmp("trunc");
        write_sample(&path);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - ALIGN]).unwrap();
        let err = Snapshot::open(&path).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        // A file shorter than one header page is rejected up front.
        std::fs::write(&path, &bytes[..100]).unwrap();
        let err = Snapshot::open(&path).unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn header_bitflip_fails_the_header_checksum() {
        let path = tmp("hdrflip");
        write_sample(&path);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[100] ^= 0xFF; // inside the section table
        std::fs::write(&path, &bytes).unwrap();
        let err = Snapshot::open(&path).unwrap_err();
        assert!(err.to_string().contains("header checksum"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn payload_bitflip_passes_open_but_fails_deep_verify() {
        let path = tmp("payload");
        write_sample(&path);
        let mut bytes = std::fs::read(&path).unwrap();
        let last_nonzero = bytes.iter().rposition(|&b| b != 0).unwrap();
        bytes[last_nonzero] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        // Lazy open only validates the header …
        let snap = Snapshot::open(&path).unwrap();
        // … while the deep check catches the flipped payload byte.
        let err = snap.verify_checksums().unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_section_is_reported() {
        let path = tmp("missing");
        let g = sample();
        let mut w = SnapshotWriter::create(&path).unwrap();
        w.section_pod(SEC_GRAPH_META, &[g.num_directed_edges() as u64]).unwrap();
        w.finish().unwrap();
        let snap = Snapshot::open(&path).unwrap();
        let err = graph_from_snapshot(&snap).unwrap_err();
        assert!(err.to_string().contains("missing section"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn duplicate_section_ids_are_rejected_at_write_time() {
        let path = tmp("dup");
        let mut w = SnapshotWriter::create(&path).unwrap();
        w.section_pod(SEC_GRAPH_META, &[0u64]).unwrap();
        assert!(w.section_pod(SEC_GRAPH_META, &[0u64]).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn empty_graph_round_trips() {
        let path = tmp("emptyg");
        let g = GraphBuilder::new().build();
        let mut w = SnapshotWriter::create(&path).unwrap();
        write_graph_sections(&mut w, &g).unwrap();
        w.finish().unwrap();
        let snap = Snapshot::open(&path).unwrap();
        snap.verify_checksums().unwrap();
        let g2 = graph_from_snapshot(&snap).unwrap();
        assert_eq!(g2.num_nodes(), 0);
        assert_eq!(g2.num_directed_edges(), 0);
        g2.check_invariants().unwrap();
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
