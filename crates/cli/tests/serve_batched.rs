//! Wire-level batch invariance: a `--batch-window-us 500` server answers
//! the full line protocol — QUERY (cache miss and hit), EXPLAIN, budget
//! errors — byte-identically to a `--batch-window-us 0` server, on both
//! the thread-per-connection and the `--async-io true` front ends, and
//! concurrent clients whose queries actually fuse into shared batches
//! still get byte-identical answers. Flag validation is pinned too.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

fn free_port() -> u16 {
    let probe = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = probe.local_addr().unwrap().port();
    drop(probe);
    port
}

fn graph_file(tag: &str) -> String {
    let path = std::env::temp_dir()
        .join(format!("ws-batchserve-{}-{tag}.tsv", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let mut b = kgraph::GraphBuilder::new();
    let x = b.add_node("x", "xml");
    let q = b.add_node("q", "query language");
    let s = b.add_node("s", "sql");
    let r = b.add_node("r", "rdf");
    let j = b.add_node("j", "json format");
    b.add_edge(x, q, "rel");
    b.add_edge(s, q, "rel");
    b.add_edge(r, q, "rel");
    b.add_edge(j, x, "rel");
    std::fs::write(&path, kgraph::io::to_tsv(&b.build())).unwrap();
    path
}

/// Start `wikisearch serve` on a background thread; returns the join
/// handle yielding the server log.
fn spawn_server(argv_line: String) -> std::thread::JoinHandle<String> {
    std::thread::spawn(move || {
        let argv: Vec<String> = argv_line.split_whitespace().map(String::from).collect();
        let args = wikisearch_cli::args::parse(&argv).unwrap();
        let mut out = Vec::new();
        wikisearch_cli::serve::serve(&args, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    })
}

fn connect(port: u16) -> TcpStream {
    for _ in 0..150 {
        if let Ok(s) = TcpStream::connect(("127.0.0.1", port)) {
            s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            return s;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("server not reachable on port {port}");
}

/// One request, one response line.
fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, request: &str) -> String {
    writeln!(stream, "{request}").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.ends_with('\n'), "truncated response to {request:?}: {line:?}");
    line.trim_end().to_string()
}

/// A response with the wall-clock `ms` and the fleet-wide `qid` (which
/// depends on arrival order under concurrency) removed, re-serialized
/// deterministically. Everything else — EXPLAIN traces included — must
/// match byte for byte: EXPLAIN bypasses the batcher by design (its
/// trace must describe a live run), so even `batch_id`/`co_batched`
/// stay `null` on both servers.
fn normalized(response: &str) -> String {
    let mut doc: serde_json::Value =
        serde_json::from_str(response).unwrap_or_else(|e| panic!("bad JSON {response:?}: {e}"));
    let serde_json::Value::Object(entries) = &mut doc else {
        panic!("non-object response {response:?}");
    };
    entries.retain(|(key, _)| key != "ms" && key != "qid");
    if let Some((_, serde_json::Value::Object(trace))) =
        entries.iter_mut().find(|(key, _)| key == "trace")
    {
        // Session identity differs run to run (pool scheduling), phase
        // timings are wall clock, query ids follow arrival order; all
        // are volatile on any server pair.
        trace.retain(|(key, _)| {
            !matches!(
                key.as_str(),
                "session_id" | "session_queries" | "phase_ms" | "qid" | "cache_source_qid"
            )
        });
    }
    serde_json::to_string(&doc).unwrap()
}

/// The protocol exchange every server pair runs: cache misses, a
/// reordered cache hit, a single keyword, an unmatched term, and two
/// EXPLAINs (5 QUERY successes, so `--max-requests 5` drains the
/// server).
const EXCHANGE: [&str; 7] = [
    "QUERY xml sql",
    "QUERY sql   XML",
    "QUERY rdf query",
    "QUERY json xml warpdrive",
    "EXPLAIN xml sql rdf",
    "EXPLAIN json",
    "QUERY xml sql rdf",
];

/// Run the exchange against a fresh server with the given extra flags;
/// returns (normalized responses, server log).
fn run_exchange(path: &str, extra: &str) -> (Vec<String>, String) {
    let port = free_port();
    let server = spawn_server(format!(
        "serve --graph {path} --port {port} --backend gpu --threads 2 --workers 2 \
         --max-requests 5 {extra}"
    ));
    let mut stream = connect(port);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let responses: Vec<String> = EXCHANGE
        .iter()
        .map(|req| normalized(&roundtrip(&mut stream, &mut reader, req)))
        .collect();
    writeln!(stream, "QUIT").unwrap();
    (responses, server.join().unwrap())
}

/// The wire-level acceptance check: the full exchange through a batching
/// server is byte-identical to an unbatched one, and the async front end
/// preserves that identity in both modes.
#[test]
fn batched_server_is_byte_identical_to_unbatched() {
    let path = graph_file("identity");
    let (unbatched, log0) = run_exchange(&path, "--batch-window-us 0");
    let (batched, log500) = run_exchange(&path, "--batch-window-us 500 --batch-max 8");
    assert_eq!(batched, unbatched, "batched wire responses diverged");
    assert!(!log0.contains("batching"), "{log0}");
    assert!(log500.contains("batching 500us x8"), "{log500}");
    assert!(log0.contains("served 5 queries"), "{log0}");
    assert!(log500.contains("served 5 queries"), "{log500}");

    let (async_unbatched, alog0) = run_exchange(&path, "--async-io true --batch-window-us 0");
    let (async_batched, alog500) =
        run_exchange(&path, "--async-io true --batch-window-us 500 --batch-max 8");
    assert_eq!(async_unbatched, unbatched, "async front end changed unbatched responses");
    assert_eq!(async_batched, unbatched, "async front end changed batched responses");
    assert!(alog0.contains("async-io"), "{alog0}");
    assert!(alog500.contains("async-io"), "{alog500}");
    let _ = std::fs::remove_file(path);
}

/// Budget enforcement is batching-independent: a starved expansion cap
/// trips the same structured error through the batched path as through
/// the unbatched one, and STATS accounts it identically.
#[test]
fn batched_budget_errors_match_unbatched() {
    let path = graph_file("budget");
    let error_kind = |extra: &str| {
        let port = free_port();
        // No --max-requests: the failing query never drains the server,
        // so the thread is leaked and dies with the test process.
        let _server = spawn_server(format!(
            "serve --graph {path} --port {port} --backend seq --max-expansions 1 {extra}"
        ));
        let mut stream = connect(port);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let response = roundtrip(&mut stream, &mut reader, "QUERY xml sql rdf");
        let doc: serde_json::Value = serde_json::from_str(&response).unwrap();
        let stats: serde_json::Value =
            serde_json::from_str(&roundtrip(&mut stream, &mut reader, "STATS")).unwrap();
        assert_eq!(stats["budget_exhausted"], 1u64, "{stats}");
        assert_eq!(stats["served"], 0u64, "failed queries are not served: {stats}");
        writeln!(stream, "QUIT").unwrap();
        doc["error"].as_str().unwrap().to_string()
    };
    assert_eq!(error_kind("--batch-window-us 500"), error_kind("--batch-window-us 0"));
    assert_eq!(error_kind("--batch-window-us 0"), "budget_exhausted");
    let _ = std::fs::remove_file(path);
}

/// Concurrent clients against a wide-window server: queries genuinely
/// fuse (a multi-query batch is recorded) and every client's answers
/// stay byte-identical to a solo unbatched baseline.
#[test]
fn concurrent_clients_fuse_and_stay_identical() {
    let path = graph_file("fuse");
    const QUERIES: [&str; 4] = ["xml sql", "rdf query", "sql rdf", "json xml"];
    const CLIENTS: usize = 4;

    // Baseline: the queries one at a time on an unbatched server.
    let baseline: Vec<String> = {
        let port = free_port();
        let server = spawn_server(format!(
            "serve --graph {path} --port {port} --backend seq --workers 2 --max-requests {}",
            QUERIES.len()
        ));
        let mut stream = connect(port);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let responses = QUERIES
            .iter()
            .map(|q| normalized(&roundtrip(&mut stream, &mut reader, &format!("QUERY {q}"))))
            .collect();
        server.join().unwrap();
        responses
    };

    // Wide window, no cache, many workers: concurrent distinct queries
    // arriving together must co-batch. (--cache-capacity 0 keeps repeats
    // of the same keyword set flowing into the batcher instead of
    // hitting.)
    let total = CLIENTS * QUERIES.len();
    let port = free_port();
    let server = spawn_server(format!(
        "serve --graph {path} --port {port} --backend seq --workers {CLIENTS} \
         --cache-capacity 0 --batch-window-us 200000 --batch-max {CLIENTS} --max-requests {total}"
    ));
    let clients: Vec<std::thread::JoinHandle<Vec<String>>> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut stream = connect(port);
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let got: Vec<(usize, String)> = (0..QUERIES.len())
                    .map(|i| {
                        // Each client starts at a different query so one
                        // batch window sees distinct keyword sets.
                        let qi = (i + c) % QUERIES.len();
                        (
                            qi,
                            normalized(&roundtrip(
                                &mut stream,
                                &mut reader,
                                &format!("QUERY {}", QUERIES[qi]),
                            )),
                        )
                    })
                    .collect();
                writeln!(stream, "QUIT").unwrap();
                let mut ordered = vec![String::new(); QUERIES.len()];
                for (qi, response) in got {
                    ordered[qi] = response;
                }
                ordered
            })
        })
        .collect();
    for (c, client) in clients.into_iter().enumerate() {
        assert_eq!(client.join().unwrap(), baseline, "client #{c} diverged under co-batching");
    }
    let log = server.join().unwrap();
    assert!(log.contains(&format!("served {total} queries")), "{log}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn batch_max_is_validated() {
    for bad in ["0", "65"] {
        let argv: Vec<String> =
            format!("serve --graph kb.tsv --batch-window-us 10 --batch-max {bad}")
                .split_whitespace()
                .map(String::from)
                .collect();
        let args = wikisearch_cli::args::parse(&argv).unwrap();
        let mut out = Vec::new();
        let err = wikisearch_cli::serve::serve(&args, &mut out).unwrap_err();
        assert!(err.contains("--batch-max"), "{err}");
    }
}
