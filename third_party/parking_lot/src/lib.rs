//! Minimal `parking_lot` shim over `std::sync` primitives.
//!
//! API-compatible subset: `Mutex`/`RwLock` whose guards are returned
//! directly (no `Result`); a poisoned std lock is recovered transparently,
//! matching parking_lot's no-poisoning behaviour.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive (no poisoning).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock (no poisoning).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
