//! # central — the Central Graph parallel keyword-search algorithm
//!
//! This crate is the primary contribution of the reproduced paper,
//! *"An Efficient Parallel Keyword Search Engine on Knowledge Graphs"*
//! (ICDE 2019): the **Central Graph** answer model and the **two-stage
//! lock-free parallel algorithm** that computes top-k Central Graph
//! answers for a keyword query.
//!
//! ## The model (paper Sec. III)
//!
//! Each query keyword `t_i` starts a BFS instance `B_i` from its node set
//! `T_i`; all instances advance in lock step at a single global expansion
//! level. The *hitting level* `h_j^i` of node `v_j` is the first level at
//! which `B_i` makes it a frontier. A node hit by **every** instance is a
//! **Central Node**; the union of all its hitting paths is its **Central
//! Graph** — a graph-shaped answer that connects every keyword, admits
//! multiple paths per keyword, and is depth-bounded by the central node's
//! maximum hitting level.
//!
//! ## The two stages (paper Sec. V)
//!
//! 1. **Bottom-up** ([`bottom_up`]): level-synchronous lock-free expansion
//!    over a node–keyword hitting-level matrix `M`, gated by per-node
//!    *minimum activation levels* ([`activation`], Sec. IV) so that
//!    summary hubs activate late. Solves the top-(k,d) Central Graph
//!    problem (Def. 4).
//! 2. **Top-down** ([`top_down`]): recovers each Central Graph from `M`
//!    alone via the Theorem V.4 level arithmetic, prunes it with the
//!    keyword-co-occurrence **level-cover strategy**, scores it with
//!    `S(C) = d(C)^λ · Σ w_v` (Eq. 6), and selects the final top-k.
//!
//! ## Engines
//!
//! Four interchangeable engines implement [`engine::KeywordSearchEngine`]:
//!
//! | engine | paper name | character |
//! |---|---|---|
//! | [`engine::SeqEngine`] | (Tnum = 1) | single-threaded reference |
//! | [`engine::ParCpuEngine`] | CPU-Par | coarse-grained rayon, lock-free |
//! | [`engine::GpuStyleEngine`] | GPU-Par (structure) | fine-grained work items + parallel frontier compaction |
//! | [`engine::DynParEngine`] | CPU-Par-d | per-node locks, dynamic memory, no extraction phase |
//!
//! All four return identical answer sets (property-tested); they differ in
//! how the work is scheduled, which is exactly what the paper's Exp-1/Exp-4
//! measure.
//!
//! ```
//! use kgraph::GraphBuilder;
//! use textindex::{InvertedIndex, ParsedQuery};
//! use central::{engine::{KeywordSearchEngine, SeqEngine}, SearchParams};
//!
//! let mut b = GraphBuilder::new();
//! let x = b.add_node("x", "XML");
//! let q = b.add_node("q", "query language");
//! let s = b.add_node("s", "SQL");
//! b.add_edge(x, q, "related");
//! b.add_edge(s, q, "instance of");
//! let g = b.build();
//!
//! let idx = InvertedIndex::build(&g);
//! let query = ParsedQuery::parse(&idx, "XML SQL");
//! let out = SeqEngine::new().search(&g, &query, &central::SearchParams::default());
//! assert!(!out.answers.is_empty());
//! let best = &out.answers[0];
//! assert_eq!(best.central, q); // "query language" bridges XML and SQL
//! ```

#![warn(missing_docs)]

pub mod activation;
pub mod batch;
pub mod bottom_up;
pub mod budget;
pub mod cache;
pub mod config;
pub mod costmodel;
pub mod engine;
pub mod error;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod metrics;
pub mod model;
pub mod pool;
pub mod profile;
pub mod remote;
pub mod session;
pub mod shard;
pub mod state;
pub mod telemetry;
pub mod top_down;
pub mod trace;

pub use activation::{ActivationConfig, ActivationMap};
pub use batch::{
    BatchConfig, BatchExecutor, BatchRequest, BatchStats, Batcher, CloseReason, LaneOutcome,
    MAX_BATCH_LANES,
};
pub use budget::{BudgetTracker, QueryBudget};
pub use cache::{CacheStats, QueryKey, ShardedLruCache};
pub use config::{ParamsFingerprint, SearchParams};
pub use engine::{
    DynParEngine, GpuStyleEngine, KeywordSearchEngine, ParCpuEngine, SearchOutcome, SeqEngine,
};
pub use error::SearchError;
pub use metrics::{HistogramSnapshot, LogHistogram, MetricsRegistry, MetricsSnapshot};
pub use model::{CentralGraph, INFINITE_LEVEL};
pub use pool::{PoolStats, PooledSession, SessionPool};
pub use profile::PhaseProfile;
pub use remote::{
    RemoteOptions, RemoteOutcome, RemoteShardedSearch, RemoteStats, ShardAddrs, ShardWorker,
    StaticAddrs,
};
pub use session::SearchSession;
pub use shard::{ShardBackend, ShardPlan, ShardedSearch, ShardedStats};
pub use telemetry::{
    InFlight, QueryIdGen, SampleRing, Telemetry, TelemetrySample, WindowDelta, SAMPLE_WIDTH,
};
pub use trace::{
    CacheOutcome, PhaseMillis, QueryTrace, ShardSpan, ShardTimeline, TraceLevel, TraceLevelRecord,
};
