//! The four search engines of the paper's evaluation
//! (GPU-Par-structure, CPU-Par, CPU-Par-d, and the sequential reference),
//! behind one [`KeywordSearchEngine`] trait.

mod gpu_style;
mod par_cpu;
pub(crate) mod par_dyn;
mod seq;

pub use gpu_style::GpuStyleEngine;
pub use par_cpu::ParCpuEngine;
pub use par_dyn::DynParEngine;
pub use seq::SeqEngine;

use crate::activation::{ActivationConfig, ActivationMap};
use crate::bottom_up::{self, ExecStrategy};
use crate::budget::QueryBudget;
use crate::error::SearchError;
use crate::model::CentralGraph;
use crate::profile::PhaseProfile;
use crate::session::SearchSession;
use crate::top_down;
use crate::trace::{PhaseMillis, QueryTrace};
use crate::SearchParams;
use kgraph::KnowledgeGraph;
use std::time::Instant;
use textindex::ParsedQuery;

/// Statistics of one search, beyond the answers themselves.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// Last BFS level processed (`d` when enough answers were found).
    pub last_level: u8,
    /// Central nodes identified by the bottom-up stage (the top-(k,d) set
    /// size — a superset of the final top-k).
    pub central_candidates: usize,
    /// Peak joint-frontier-queue size.
    pub peak_frontier: usize,
    /// Per-level progression (frontier size, identifications per level).
    pub trace: Vec<crate::bottom_up::LevelTrace>,
}

/// Result of a keyword search: ranked answers plus per-phase timings.
#[derive(Clone, Debug, Default)]
pub struct SearchOutcome {
    /// Final top-k Central Graphs, best (lowest Eq. 6 score) first.
    pub answers: Vec<CentralGraph>,
    /// Wall-clock per algorithm phase (Figs. 6–10).
    pub profile: PhaseProfile,
    /// Search statistics.
    pub stats: SearchStats,
    /// Rich per-query execution trace, present only when the query asked
    /// for it (`params.trace`). Boxed so the untraced path carries one
    /// null pointer.
    pub trace: Option<Box<QueryTrace>>,
}

/// A top-k Central Graph keyword-search engine.
///
/// All engines are semantically equivalent — same answers for the same
/// `(graph, query, params)` — and differ only in scheduling; that
/// equivalence is what makes the paper's efficiency comparison meaningful,
/// and it is enforced by this workspace's property tests.
pub trait KeywordSearchEngine {
    /// Engine display name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Run a budgeted top-k search through a reusable [`SearchSession`] —
    /// the warm path, and the one method engines implement. The session's
    /// epoch-stamped state and scratch buffers are re-armed in place, so a
    /// query on an already-used session allocates nothing proportional to
    /// `n · q`.
    ///
    /// A tripped budget returns `Err` and never a partial answer set; the
    /// session stays reusable (the next `begin_query` re-arms its state
    /// regardless of where this search stopped).
    ///
    /// # Panics
    /// Panics if `params` fail [`SearchParams::validate`].
    fn try_search_session(
        &self,
        session: &mut SearchSession,
        graph: &KnowledgeGraph,
        query: &ParsedQuery,
        params: &SearchParams,
        budget: &QueryBudget,
    ) -> Result<SearchOutcome, SearchError>;

    /// Run an unbudgeted top-k search through a reusable
    /// [`SearchSession`] — [`Self::try_search_session`] with
    /// [`QueryBudget::unlimited`], which cannot fail.
    ///
    /// # Panics
    /// Panics if `params` fail [`SearchParams::validate`].
    fn search_session(
        &self,
        session: &mut SearchSession,
        graph: &KnowledgeGraph,
        query: &ParsedQuery,
        params: &SearchParams,
    ) -> SearchOutcome {
        self.try_search_session(session, graph, query, params, &QueryBudget::unlimited())
            .expect("an unlimited budget cannot be exceeded")
    }

    /// Run a one-shot budgeted top-k search (cold path): opens a
    /// throwaway [`SearchSession`] and runs [`Self::try_search_session`]
    /// through it.
    ///
    /// # Panics
    /// Panics if `params` fail [`SearchParams::validate`].
    fn try_search(
        &self,
        graph: &KnowledgeGraph,
        query: &ParsedQuery,
        params: &SearchParams,
        budget: &QueryBudget,
    ) -> Result<SearchOutcome, SearchError> {
        let mut session = SearchSession::new();
        self.try_search_session(&mut session, graph, query, params, budget)
    }

    /// Run a one-shot unbudgeted top-k search (cold path).
    ///
    /// # Panics
    /// Panics if `params` fail [`SearchParams::validate`].
    fn search(
        &self,
        graph: &KnowledgeGraph,
        query: &ParsedQuery,
        params: &SearchParams,
    ) -> SearchOutcome {
        let mut session = SearchSession::new();
        self.search_session(&mut session, graph, query, params)
    }
}

/// Shared driver for the three matrix-based engines (sequential, CPU-Par,
/// GPU-style): re-arm the session's state → bottom-up via `strategy` →
/// top-down (optionally parallel over central nodes via `pool`).
#[allow(clippy::too_many_arguments)] // internal driver; args mirror the trait call plus strategy/pool
pub(crate) fn run_matrix_search<S: ExecStrategy>(
    strategy: &S,
    name: &'static str,
    pool: Option<&rayon::ThreadPool>,
    session: &mut SearchSession,
    graph: &KnowledgeGraph,
    query: &ParsedQuery,
    params: &SearchParams,
    budget: &QueryBudget,
) -> Result<SearchOutcome, SearchError> {
    if let Err(e) = params.validate() {
        panic!("invalid search parameters: {e}");
    }
    // Tracing arms the tracker in counting mode so per-level expansion
    // deltas are observable even without a cap; the untraced unlimited
    // path keeps its zero-atomic charge fast path.
    let tracker = if params.trace.enabled() {
        budget.start_counting()
    } else {
        budget.start()
    };
    // An already-expired deadline fails deterministically before any work.
    tracker.checkpoint()?;
    #[cfg(feature = "fault-inject")]
    crate::fault::inject(query, &tracker)?;
    if query.is_empty() {
        let mut out = SearchOutcome::default();
        if params.trace.enabled() {
            // A trace with no levels: nothing matched, no search ran.
            out.trace =
                Some(Box::new(QueryTrace { engine: name.to_string(), ..QueryTrace::default() }));
        }
        return Ok(out);
    }
    let mut profile = PhaseProfile::default();

    // Initialization phase: arm M / FIdentifier / CIdentifier for this
    // query (epoch bump + source seeding; allocation only on first use or
    // growth) — the paper's per-query allocate-and-seed, amortized.
    let t = Instant::now();
    session.state.begin_query(graph.num_nodes(), query);
    session.queries_run += 1;
    profile.init = t.elapsed();
    let SearchSession { ref state, scratch, .. } = session;

    let explicit = params.explicit_activation.clone();
    let act = match &explicit {
        Some(levels) => ActivationMap::Explicit(levels),
        None => ActivationMap::Computed {
            graph,
            config: ActivationConfig {
                alpha: params.alpha,
                average_distance: params.average_distance,
            },
        },
    };

    let ctx = bottom_up::ExpandCtx { graph, act: &act, state, budget: &tracker };
    let mut outcome = bottom_up::run(strategy, &ctx, scratch, params, &mut profile)?;

    // Top-down processing: extract, prune, rank. The candidate cohort is
    // ordered shallowest-first, so a cap keeps the best-depth prefix. The
    // budget is polled once per extracted candidate; a trip mid-stage
    // yields `None` and the whole search fails rather than returning a
    // silently truncated answer set.
    outcome.central_nodes.truncate(params.max_candidates);
    let t = Instant::now();
    let candidates: Option<Vec<CentralGraph>> = match pool {
        Some(pool) => pool.install(|| {
            use rayon::prelude::*;
            outcome
                .central_nodes
                .par_iter()
                .map(|&(c, d)| {
                    if tracker.should_stop() {
                        return None;
                    }
                    let e = top_down::extract(graph, &act, state, c.0, d);
                    Some(top_down::prune_and_score(graph, state, &e, params))
                })
                .collect()
        }),
        None => outcome
            .central_nodes
            .iter()
            .map(|&(c, d)| {
                if tracker.should_stop() {
                    return None;
                }
                let e = top_down::extract(graph, &act, state, c.0, d);
                Some(top_down::prune_and_score(graph, state, &e, params))
            })
            .collect(),
    };
    let Some(candidates) = candidates else {
        return Err(tracker.error().expect("a stopped top-down stage implies a tripped budget"));
    };
    let answers = top_down::select_top_k(candidates, params);
    profile.top_down = t.elapsed();

    let trace = outcome.records.take().map(|levels| {
        Box::new(QueryTrace {
            engine: name.to_string(),
            keywords: query.num_keywords(),
            total_expansions: tracker.expansions(),
            terminated: outcome.terminated == bottom_up::TerminationReason::LevelCap,
            levels,
            cache: None,
            session_id: None,
            session_queries: None,
            batch_id: None,
            co_batched: None,
            phase_ms: PhaseMillis::from(&profile),
            qid: None,
            cache_source_qid: None,
            shard_timelines: None,
        })
    });
    Ok(SearchOutcome {
        answers,
        profile,
        stats: SearchStats {
            last_level: outcome.last_level,
            central_candidates: outcome.central_nodes.len(),
            peak_frontier: outcome.peak_frontier,
            trace: outcome.trace,
        },
        trace,
    })
}

/// Build a rayon pool with exactly `threads` workers.
pub(crate) fn build_pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("failed to build rayon thread pool")
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;
    use textindex::InvertedIndex;

    fn fixture() -> (KnowledgeGraph, InvertedIndex) {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", "xml standard");
        let r = b.add_node("r", "rdf model");
        let q = b.add_node("q", "query language");
        b.add_edge(x, q, "e");
        b.add_edge(r, q, "e");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        (g, idx)
    }

    #[test]
    fn all_engines_agree_on_a_small_graph() {
        let (g, idx) = fixture();
        let query = ParsedQuery::parse(&idx, "xml rdf");
        let params = SearchParams::default().with_average_distance(1.0);
        let engines: Vec<Box<dyn KeywordSearchEngine>> = vec![
            Box::new(SeqEngine::new()),
            Box::new(ParCpuEngine::new(2)),
            Box::new(GpuStyleEngine::new(2)),
            Box::new(DynParEngine::new(2)),
        ];
        let reference = engines[0].search(&g, &query, &params);
        assert!(!reference.answers.is_empty());
        for e in &engines[1..] {
            let out = e.search(&g, &query, &params);
            assert_eq!(out.answers.len(), reference.answers.len(), "{}", e.name());
            for (a, b) in out.answers.iter().zip(&reference.answers) {
                assert_eq!(a.central, b.central, "{}", e.name());
                assert_eq!(a.nodes, b.nodes, "{}", e.name());
                assert_eq!(a.edges, b.edges, "{}", e.name());
                assert!((a.score - b.score).abs() < 1e-9, "{}", e.name());
            }
        }
    }

    #[test]
    fn empty_query_returns_empty_outcome() {
        let (g, idx) = fixture();
        let query = ParsedQuery::parse(&idx, "zzz qqq");
        let out = SeqEngine::new().search(&g, &query, &SearchParams::default());
        assert!(out.answers.is_empty());
    }

    #[test]
    fn max_candidates_caps_extraction() {
        // Many central nodes at the same depth; the cap keeps a prefix.
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", "alpha");
        let z = b.add_node("z", "omega");
        for i in 0..10 {
            let m = b.add_node(&format!("m{i}"), "mid");
            b.add_edge(a, m, "e");
            b.add_edge(z, m, "e");
        }
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let query = ParsedQuery::parse(&idx, "alpha omega");
        let full = SeqEngine::new().search(
            &g,
            &query,
            &SearchParams::default().with_average_distance(1.0),
        );
        assert_eq!(full.stats.central_candidates, 10);
        let capped_params = SearchParams {
            max_candidates: 3,
            ..SearchParams::default().with_average_distance(1.0)
        };
        let capped = SeqEngine::new().search(&g, &query, &capped_params);
        assert_eq!(capped.stats.central_candidates, 3);
        assert!(capped.answers.len() <= 3);
        for ans in &capped.answers {
            ans.check_invariants().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "invalid search parameters")]
    fn invalid_params_panic() {
        let (g, idx) = fixture();
        let query = ParsedQuery::parse(&idx, "xml");
        let params = SearchParams::default().with_alpha(2.0);
        SeqEngine::new().search(&g, &query, &params);
    }
}
