//! Per-query execution budgets: wall-clock deadlines and expansion caps,
//! enforced **cooperatively** inside the two-stage search.
//!
//! The paper's algorithm explores whatever frontier the activation levels
//! admit; on dense hub nodes that frontier can be enormous, and a serving
//! deployment cannot let one adversarial query monopolize a worker. A
//! [`QueryBudget`] bounds a single search two ways:
//!
//! * a **deadline** — a wall-clock allowance, armed when the search
//!   starts;
//! * an **expansion cap** — a limit on the number of expansion units
//!   (one unit ≈ one `(frontier, BFS instance)` step of Algorithm 2, the
//!   same unit across all four engines).
//!
//! Enforcement is cooperative: the search charges a shared
//! [`BudgetTracker`] as it expands and polls a single cancellation flag
//! at loop heads. The clock is only read once per [`CHECK_STRIDE`]
//! charged units (plus once per level and once per extracted candidate),
//! so the overhead on the hot path is one relaxed `fetch_add` per
//! frontier — unmeasurable next to the neighbor loop it gates — and an
//! unlimited budget short-circuits to a no-op before touching any atomic.
//!
//! A tripped budget surfaces as [`SearchError`] from the `try_*` search
//! entry points; the session that ran the query remains reusable (state
//! is epoch-stamped, so the next `begin_query` re-arms it regardless of
//! where the previous query stopped).

use crate::error::SearchError;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// How many expansion units may be charged between deadline polls. A
/// power of two; the division in [`BudgetTracker::charge`] compiles to a
/// shift.
pub const CHECK_STRIDE: u64 = 256;

/// Cancellation causes stored in the tracker flag.
const LIVE: u8 = 0;
const CAUSE_DEADLINE: u8 = 1;
const CAUSE_EXPANSIONS: u8 = 2;

/// The resource allowance of one query. Plain configuration — cheap to
/// clone, `Copy`, and reusable across queries; [`QueryBudget::start`]
/// arms a fresh [`BudgetTracker`] per search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryBudget {
    /// Wall-clock allowance; `None` = no deadline.
    pub timeout: Option<Duration>,
    /// Expansion-unit allowance; `None` = uncapped.
    pub max_expansions: Option<u64>,
}

impl QueryBudget {
    /// No deadline, no cap — the behaviour of every pre-budget search.
    pub const fn unlimited() -> Self {
        QueryBudget { timeout: None, max_expansions: None }
    }

    /// Builder-style wall-clock allowance.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Builder-style expansion cap.
    pub fn with_max_expansions(mut self, units: u64) -> Self {
        self.max_expansions = Some(units);
        self
    }

    /// Whether this budget can never trip (the zero-overhead fast path).
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none() && self.max_expansions.is_none()
    }

    /// Arm a tracker for one search starting now.
    pub fn start(&self) -> BudgetTracker {
        self.start_with_counting(false)
    }

    /// Arm a tracker that always accounts charged units, even when the
    /// budget itself is unlimited. Used by the tracing path, where
    /// per-level expansion counts are part of the trace; the plain
    /// [`QueryBudget::start`] keeps the zero-atomic fast path for every
    /// untraced unlimited query.
    pub fn start_counting(&self) -> BudgetTracker {
        self.start_with_counting(true)
    }

    fn start_with_counting(&self, counting: bool) -> BudgetTracker {
        BudgetTracker {
            deadline: self.timeout.map(|t| Instant::now() + t),
            timeout: self.timeout.unwrap_or_default(),
            max_expansions: self.max_expansions.unwrap_or(u64::MAX),
            capped: self.max_expansions.is_some(),
            counting,
            charged: AtomicU64::new(0),
            cancelled: AtomicU8::new(LIVE),
        }
    }
}

/// The live accounting of one search against its [`QueryBudget`]. Shared
/// by reference across all worker threads of the search; all methods take
/// `&self`.
pub struct BudgetTracker {
    deadline: Option<Instant>,
    /// Original allowance, kept for error reporting.
    timeout: Duration,
    max_expansions: u64,
    /// Whether an expansion cap was configured (`max_expansions` holds
    /// `u64::MAX` otherwise).
    capped: bool,
    /// Keep the expansion account even without a cap or deadline
    /// (tracing mode); disables the zero-atomic fast path.
    counting: bool,
    charged: AtomicU64,
    cancelled: AtomicU8,
}

impl BudgetTracker {
    /// Charge `units` expansion units. Trips the cap when spent, and
    /// polls the deadline every [`CHECK_STRIDE`] units. The unlimited
    /// fast path returns before touching any atomic.
    #[inline]
    pub fn charge(&self, units: u64) {
        if !self.capped && !self.counting && self.deadline.is_none() {
            return;
        }
        let total = self.charged.fetch_add(units, Ordering::Relaxed) + units;
        if total > self.max_expansions {
            self.cancel(CAUSE_EXPANSIONS);
        } else if self.deadline.is_some() && total / CHECK_STRIDE != (total - units) / CHECK_STRIDE
        {
            self.poll_deadline();
        }
    }

    /// Has the budget tripped? One relaxed load — the check every
    /// expansion step performs before doing work.
    #[inline]
    pub fn cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed) != LIVE
    }

    /// Read the clock against the deadline, tripping the budget if it
    /// passed. Used at level boundaries and per extracted candidate,
    /// where one `Instant::now()` is negligible.
    pub fn poll_deadline(&self) {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.cancel(CAUSE_DEADLINE);
            }
        }
    }

    /// Level-boundary checkpoint: poll the deadline, then surface any
    /// cancellation as the error the search should return.
    pub fn checkpoint(&self) -> Result<(), SearchError> {
        self.poll_deadline();
        match self.error() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Poll the deadline and report whether work should stop — the
    /// per-candidate check of the top-down stage.
    pub fn should_stop(&self) -> bool {
        self.poll_deadline();
        self.cancelled()
    }

    /// Expansion units charged so far. Always zero for an unlimited
    /// tracker armed with [`QueryBudget::start`] (its fast path skips
    /// accounting); use [`QueryBudget::start_counting`] when the count
    /// itself is the point.
    pub fn expansions(&self) -> u64 {
        self.charged.load(Ordering::Relaxed)
    }

    /// Budget units remaining under the expansion cap, or `None` when
    /// no cap was configured.
    pub fn remaining(&self) -> Option<u64> {
        if self.capped {
            Some(self.max_expansions.saturating_sub(self.expansions()))
        } else {
            None
        }
    }

    /// The error corresponding to the tripped budget, if any.
    pub fn error(&self) -> Option<SearchError> {
        match self.cancelled.load(Ordering::Relaxed) {
            CAUSE_DEADLINE => Some(SearchError::DeadlineExceeded { limit: self.timeout }),
            CAUSE_EXPANSIONS => Some(SearchError::BudgetExhausted { limit: self.max_expansions }),
            _ => None,
        }
    }

    /// Record a cancellation cause; the first cause wins.
    fn cancel(&self, cause: u8) {
        let _ = self
            .cancelled
            .compare_exchange(LIVE, cause, Ordering::Relaxed, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let tracker = QueryBudget::unlimited().start();
        tracker.charge(u64::MAX / 2);
        tracker.poll_deadline();
        assert!(!tracker.cancelled());
        assert!(tracker.checkpoint().is_ok());
        assert_eq!(tracker.error(), None);
        // The fast path skips accounting entirely.
        assert_eq!(tracker.expansions(), 0);
    }

    #[test]
    fn counting_mode_accounts_without_tripping() {
        let tracker = QueryBudget::unlimited().start_counting();
        tracker.charge(10_000);
        assert_eq!(tracker.expansions(), 10_000);
        assert!(!tracker.cancelled());
        assert_eq!(tracker.remaining(), None, "no cap, no remaining figure");
        let capped = QueryBudget::unlimited().with_max_expansions(100).start_counting();
        capped.charge(40);
        assert_eq!(capped.remaining(), Some(60));
    }

    #[test]
    fn expansion_cap_trips_at_the_limit() {
        let tracker = QueryBudget::unlimited().with_max_expansions(100).start();
        tracker.charge(100);
        assert!(!tracker.cancelled(), "spending the exact allowance is fine");
        tracker.charge(1);
        assert!(tracker.cancelled());
        assert_eq!(tracker.error(), Some(SearchError::BudgetExhausted { limit: 100 }));
        assert_eq!(tracker.checkpoint().unwrap_err().kind(), "budget_exhausted");
    }

    #[test]
    fn expired_deadline_trips_at_the_checkpoint() {
        let tracker = QueryBudget::unlimited().with_timeout(Duration::ZERO).start();
        assert_eq!(
            tracker.checkpoint().unwrap_err(),
            SearchError::DeadlineExceeded { limit: Duration::ZERO }
        );
        assert!(tracker.cancelled());
    }

    #[test]
    fn deadline_is_polled_on_stride_boundaries() {
        let tracker = QueryBudget::unlimited().with_timeout(Duration::ZERO).start();
        tracker.charge(CHECK_STRIDE - 1);
        assert!(!tracker.cancelled(), "no poll before the stride boundary");
        tracker.charge(1);
        assert!(tracker.cancelled(), "crossing the stride polls the clock");
    }

    #[test]
    fn first_cause_wins() {
        let tracker = QueryBudget::unlimited()
            .with_timeout(Duration::ZERO)
            .with_max_expansions(10)
            .start();
        tracker.charge(100); // trips the cap before any deadline poll
        tracker.poll_deadline();
        assert_eq!(tracker.error(), Some(SearchError::BudgetExhausted { limit: 10 }));
    }

    #[test]
    fn charges_accumulate_across_threads() {
        let tracker = QueryBudget::unlimited().with_max_expansions(4 * 1000).start();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..250 {
                        tracker.charge(1);
                    }
                });
            }
        });
        assert_eq!(tracker.expansions(), 1000);
        assert!(!tracker.cancelled());
    }
}
