//! Slow-query log end to end: a server armed with `--slow-query-ms`
//! logs exactly one well-formed JSON line for a query stalled past the
//! threshold (via the `fault0sleepNNN` injection token), logs nothing
//! for fast queries, and the logged wall time agrees with what the
//! client observed.
//!
//! Requires the `fault-inject` feature:
//!
//! ```text
//! cargo test -p wikisearch-cli --features fault-inject --test slow_query_log
//! ```

#![cfg(feature = "fault-inject")]

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

fn free_port() -> u16 {
    let probe = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = probe.local_addr().unwrap().port();
    drop(probe);
    port
}

fn graph_file(tag: &str) -> String {
    let path = std::env::temp_dir()
        .join(format!("ws-slowlog-{}-{tag}.tsv", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let mut b = kgraph::GraphBuilder::new();
    let x = b.add_node("x", "xml");
    let q = b.add_node("q", "query language");
    let s = b.add_node("s", "sql");
    b.add_edge(x, q, "rel");
    b.add_edge(s, q, "rel");
    std::fs::write(&path, kgraph::io::to_tsv(&b.build())).unwrap();
    path
}

fn connect(port: u16) -> TcpStream {
    for _ in 0..150 {
        if let Ok(s) = TcpStream::connect(("127.0.0.1", port)) {
            s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            return s;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("server not reachable on port {port}");
}

#[test]
fn slow_queries_are_logged_once_with_a_trace_and_accurate_timing() {
    let graph = graph_file("e2e");
    let log_path = std::env::temp_dir()
        .join(format!("ws-slowlog-{}-e2e.jsonl", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let _ = std::fs::remove_file(&log_path);
    let port = free_port();

    let argv_line = format!(
        "serve --graph {graph} --port {port} --backend seq --workers 2 --max-requests 4 \
         --slow-query-ms 100 --slow-query-log {log_path} --slow-query-trace on"
    );
    let server = std::thread::spawn(move || {
        let argv: Vec<String> = argv_line.split_whitespace().map(String::from).collect();
        let args = wikisearch_cli::args::parse(&argv).unwrap();
        let mut out = Vec::new();
        wikisearch_cli::serve::serve(&args, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    });

    let mut stream = connect(port);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();

    // Two fast queries: answered normally, nothing logged.
    for _ in 0..2 {
        line.clear();
        writeln!(stream, "QUERY xml sql").unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("answers"), "{line}");
    }

    // One stalled query, well past the 100 ms threshold. The token
    // matches no keyword, so the query itself succeeds with no answers.
    line.clear();
    writeln!(stream, "QUERY fault0sleep300").unwrap();
    let client_clock = Instant::now();
    reader.read_line(&mut line).unwrap();
    let client_ms = client_clock.elapsed().as_secs_f64() * 1e3;
    let doc: serde_json::Value = serde_json::from_str(&line).unwrap();
    assert!(doc["answers"].is_array(), "{line}");

    // STATS sees exactly one slow query.
    line.clear();
    writeln!(stream, "STATS").unwrap();
    reader.read_line(&mut line).unwrap();
    let stats: serde_json::Value = serde_json::from_str(&line).unwrap();
    assert_eq!(stats["slow_queries"], 1u64, "{line}");

    // One more fast query reaches --max-requests and drains the server.
    line.clear();
    writeln!(stream, "QUERY xml sql").unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("answers"), "{line}");
    let log = server.join().unwrap();
    assert!(log.contains("served 4 queries"), "{log}");

    // Exactly one well-formed log line, for the stalled query only.
    let text = std::fs::read_to_string(&log_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1, "expected exactly one slow-query line:\n{text}");
    let entry: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
    assert_eq!(entry["query"], "fault0sleep300", "{text}");
    assert_eq!(entry["threshold_ms"], 100u64, "{text}");
    assert!(entry["error"].is_null(), "the stalled query still succeeded: {text}");
    assert!(entry["ts_ms"].as_u64().unwrap() > 0, "{text}");
    assert!(entry["trace"].is_object(), "slow line carries the trace: {text}");
    assert!(entry["trace"]["levels"].is_array(), "{text}");
    // The stalled query's fleet-wide id and phase profile are logged
    // too: queries 1 and 2 were the fast warm-ups, so the stall is qid 3.
    assert_eq!(entry["qid"], 3u64, "{text}");
    assert_eq!(entry["trace"]["qid"], 3u64, "{text}");
    assert!(entry["phase_ms"]["expansion_ms"].is_number(), "{text}");

    // The logged server-side wall time brackets the injected 300 ms
    // stall and agrees with the client-visible latency within a generous
    // scheduling tolerance.
    let logged_ms = entry["ms"].as_f64().unwrap();
    assert!(logged_ms >= 300.0, "stall not reflected in logged ms: {logged_ms}");
    assert!(
        logged_ms <= client_ms + 1.0,
        "server measured more than the client saw: {logged_ms} vs {client_ms}"
    );
    assert!(
        client_ms - logged_ms < 250.0,
        "logged ms too far below client latency: {logged_ms} vs {client_ms}"
    );

    let _ = std::fs::remove_file(&graph);
    let _ = std::fs::remove_file(&log_path);
}

#[test]
fn fast_queries_leave_the_log_empty() {
    let graph = graph_file("quiet");
    let log_path = std::env::temp_dir()
        .join(format!("ws-slowlog-{}-quiet.jsonl", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let _ = std::fs::remove_file(&log_path);
    let port = free_port();

    let argv_line = format!(
        "serve --graph {graph} --port {port} --backend seq --max-requests 2 \
         --slow-query-ms 10000 --slow-query-log {log_path}"
    );
    let server = std::thread::spawn(move || {
        let argv: Vec<String> = argv_line.split_whitespace().map(String::from).collect();
        let args = wikisearch_cli::args::parse(&argv).unwrap();
        let mut out = Vec::new();
        wikisearch_cli::serve::serve(&args, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    });

    let mut stream = connect(port);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    for _ in 0..2 {
        line.clear();
        writeln!(stream, "QUERY xml sql").unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("answers"), "{line}");
    }
    writeln!(stream, "QUIT").unwrap();
    server.join().unwrap();

    let text = std::fs::read_to_string(&log_path).unwrap_or_default();
    assert!(text.is_empty(), "no query crossed 10 s, log must be empty:\n{text}");

    let _ = std::fs::remove_file(&graph);
    let _ = std::fs::remove_file(&log_path);
}
