//! `wikisearch serve` — a line-protocol TCP query service, the offline
//! analogue of the paper's hosted WikiSearch endpoint.
//!
//! Protocol: one UTF-8 line per request, one line per response.
//!
//! * `QUERY <keywords…>` → one JSON line with the ranked answers;
//! * `EXPLAIN <keywords…>` → one JSON line with the answers *and* the
//!   full per-level execution trace (`central::QueryTrace`), bypassing
//!   the result cache so the trace reflects a real search. Diagnostic —
//!   does not count toward `--max-requests`;
//! * `PING` → `PONG`;
//! * `STATS` → one JSON line with serving counters: queries served, the
//!   fault/overload counters (`shed`, `timeouts`, `budget_exhausted`,
//!   `panics`, `oversized`, `slow_queries`), the engine's metrics
//!   counters, latency and expansion percentiles from the metrics
//!   histograms, the session-pool snapshot, the result-cache
//!   snapshot (`null` when the cache is disabled), the
//!   shard-coordinator snapshot (`null` when serving unsharded), and a
//!   `telemetry` object (sampler state, in-flight gauge, query IDs
//!   issued, slowest recent query).
//!   Diagnostic — does not count toward `--max-requests`;
//! * `STATS WINDOW <seconds>` → one JSON line with *windowed* rates and
//!   percentiles over (up to) the last N seconds, computed by
//!   subtracting two periodic telemetry samples — qps, cache hit rate
//!   and last-N-seconds latency/expansion quantiles instead of the
//!   since-boot tail. Needs the background sampler
//!   (`--telemetry-interval-ms`, on by default) and two live samples;
//!   answers a structured error until then. Diagnostic;
//! * `TOP` → one JSON line with the operator's at-a-glance view:
//!   queries in flight right now, qps and cache hit rate over the last
//!   ten seconds (when the sampler has two samples), query IDs issued,
//!   the slowest recently answered query (`{"qid", "wall_ms"}`), and
//!   per-shard breaker gauges under remote serving. Diagnostic;
//! * `METRICS` → the metrics registry in Prometheus text exposition
//!   format — multiple lines, terminated by a literal `# EOF` line so a
//!   line-protocol client knows where the response ends. Diagnostic;
//! * `QUIT` → closes the connection;
//! * anything else — an unknown command, an empty line, a `QUERY` with no
//!   keywords, a line that is not UTF-8, or a line longer than
//!   [`MAX_LINE`] bytes — is answered with a one-line JSON error
//!   (`{"error": …}`) on the same connection; no request is ever
//!   silently dropped and no byte sequence crashes the server.
//!
//! ## Fault isolation
//!
//! The serving path is built so that one misbehaving client cannot take
//! the service down or corrupt another client's answers:
//!
//! * **Deadlines and budgets** — `--timeout-ms` / `--max-expansions`
//!   bound every query via a [`QueryBudget`]; a query that trips its
//!   budget gets a structured JSON error (`deadline_exceeded` /
//!   `budget_exhausted`) and its warm session is reused as usual.
//! * **Panic quarantine** — query execution runs under `catch_unwind`;
//!   a panicking query answers `{"error":"internal"}`, its session is
//!   quarantined by the pool (never recycled), and the worker thread
//!   lives on to serve the next connection.
//! * **Load shedding** — the acceptor hands connections to workers over
//!   a *bounded* queue (`--max-queue`, default 64). When every worker is
//!   busy and the queue is full, a new connection is answered
//!   immediately with `{"error":"overloaded"}` and closed, instead of
//!   queueing without bound.
//! * **Bounded request lines** — request lines are read byte-wise with a
//!   hard [`MAX_LINE`] cap; an over-long line is answered with an error
//!   and discarded up to its newline, so the connection stays usable and
//!   memory stays bounded.
//!
//! Connections are handled by a bounded worker pool (`--workers N`,
//! default 4): all workers share one `Arc<WikiSearch>`, so inter-query
//! concurrency composes with the intra-query parallelism of the engine
//! backends — each in-flight query checks a warm session out of the
//! engine's session pool instead of contending on a process-wide lock.
//! `--max-requests N` makes the server drain gracefully after `N`
//! *successful* queries (in-flight connections finish, then the listener
//! closes), which is how the tests and demo scripts drive it.
//!
//! A sharded result cache (see `central::cache`) sits in front of the
//! session pool; `--cache-capacity BYTES` sizes it (suffixes `k`/`m`/`g`
//! accepted, default 64m, `0` disables). Repeated queries — including
//! reorderings, case changes, and stopword variations of one another —
//! are answered from the cache without touching a session. Failed
//! queries never populate it.
//!
//! ## Sharded serving
//!
//! `--shards N` (default 1) partitions the graph into `N` edge-cut
//! shards and answers every query through the scatter-gather
//! coordinator (`central::shard`) instead of a single monolithic
//! session. Answers, traces and error semantics are byte-identical to
//! `--shards 1` (differential-tested); the result cache, budgets,
//! panic quarantine and slow-query log all sit in front of the
//! coordinator unchanged. `STATS` gains a `shards` object and
//! `METRICS` gains `ws_shard_*` series when sharded.
//!
//! ## Query IDs
//!
//! Every `QUERY`/`EXPLAIN` request is assigned a fleet-wide query ID at
//! admission (`u64`, dense from 1) and carries it as `"qid"` in its
//! response — answer documents *and* error documents alike, so a client
//! report ("qid 4812 was slow") joins against the slow-query log, the
//! `EXPLAIN` trace (`trace.qid`), the per-shard timelines of remote
//! serving (the qid rides the frame protocol, Hello-gated), and `TOP`'s
//! slowest-recent view. A cache hit reports its own qid plus
//! `trace.cache_source_qid` — the qid of the query that computed the
//! cached answer.
//!
//! ## Slow-query log
//!
//! `--slow-query-ms N` arms a slow-query log: the server measures its
//! own wall time around each search and a query at or over the
//! threshold appends one JSON line — `{"ts_ms", "qid", "query", "ms",
//! "threshold_ms", "error", "phase_ms", "trace"}` — to the file named
//! by `--slow-query-log` (default `slow_queries.jsonl`). By default the
//! line carries the query ID and the per-phase wall-time profile only
//! (`"trace"` is `null`): the phase profile is measured by every search
//! anyway, so the default log is free of trace allocations.
//! `--slow-query-trace on` additionally runs every query with full
//! tracing so the log line carries the complete per-level execution
//! trace. Tracing never changes answers (differential-tested in the
//! engine), so turning it on is observably free apart from the trace
//! allocations.
//!
//! ## Windowed telemetry
//!
//! A background sampler publishes one snapshot of the metrics registry
//! every `--telemetry-interval-ms` (default 1000, `0` disables) into a
//! lock-free ring of the last ~5 minutes of samples. `STATS WINDOW N`
//! subtracts the two samples spanning the last N seconds — rates and
//! percentiles *of the window*, not since boot — and `TOP` reads the
//! same ring for its ten-second pulse. Sampling is off the query hot
//! path entirely: queries never write the ring (only the sampler
//! thread does), and a differential proptest pins that telemetry on vs
//! off leaves answers, scores, stats and error classes byte-identical.
//!
//! ## Micro-batched execution
//!
//! `--batch-window-us N` (default 0 = off) arms the engine's
//! micro-batcher (`central::batch`): cache-missing queries arriving
//! within `N` µs of each other — up to `--batch-max` (default 16) — fuse
//! into one multi-query frontier sweep, so one pass over the graph's
//! node space serves every query in the batch. Responses are
//! byte-identical to `--batch-window-us 0` (differential-tested over
//! this very protocol); `STATS` gains a `batch` object and `METRICS`
//! gains `ws_batch_*` series while batching is on. A drain closes any
//! open collection window immediately, so shutdown never waits out a
//! window.
//!
//! ## Remote shard workers
//!
//! `--shard-workers N` forks `N` supervised `wikisearch shard-worker`
//! processes over the same dataset and answers every query through the
//! fault-tolerant remote coordinator (`central::remote`):
//! per-RPC deadlines from the query budget, bounded retry with
//! exponential backoff, heartbeat probes driving a per-shard circuit
//! breaker, and automatic respawn of dead workers. `--shard-addr
//! a,b,…` instead attaches to externally managed workers (no
//! supervision). When a shard stays unreachable past its retry budget a
//! query is refused with `{"error":"shard_unavailable"}` — unless
//! `--degraded-answers true`, in which case the reachable shards answer
//! best-effort and the response is marked `"degraded": true` (degraded
//! answers never populate the cache). `--rpc-timeout-ms`,
//! `--rpc-retries` and `--heartbeat-ms` tune the supervision knobs.
//! `STATS` gains a `remote` object and `METRICS` gains `ws_remote_*`
//! series while remote serving is on.
//!
//! ## Async connection multiplexing
//!
//! `--async-io true` (default off) swaps the connection-per-worker model
//! for a readiness-polled multiplexer: parked connections are owned by a
//! muxer thread that polls them (`TcpStream::peek`) and dispatches only
//! *ready* ones to the bounded worker pool, one request at a time, so an
//! idle connection costs a socket — not a pinned worker thread. The
//! protocol, counters, shedding and drain semantics are unchanged.

use crate::args::ParsedArgs;
use central::metrics::{
    prometheus_counter, prometheus_gauge, prometheus_histogram, prometheus_labeled_gauge,
};
use central::{
    PhaseMillis, QueryBudget, QueryTrace, RemoteOptions, SearchError, StaticAddrs, TelemetrySample,
    TraceLevel,
};
use parking_lot::Mutex;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};
use wikisearch_engine::{Backend, WikiSearch, DEFAULT_TELEMETRY_SAMPLES};

/// How often a blocked worker wakes up to check for drain.
const DRAIN_POLL: Duration = Duration::from_millis(50);

/// Hard cap on one request line (bytes, newline excluded). Long enough
/// for any sane keyword query; short enough that a hostile client cannot
/// grow a worker's buffer without bound.
pub(crate) const MAX_LINE: usize = 64 * 1024;

/// Serving counters beyond the pool/cache snapshots, all surfaced on the
/// `STATS` line.
#[derive(Default)]
struct ServeCounters {
    /// Successful query responses (what `--max-requests` counts).
    served: AtomicUsize,
    /// Connections refused with `overloaded` because the worker queue was
    /// full.
    shed: AtomicU64,
    /// Queries answered with `deadline_exceeded`.
    timeouts: AtomicU64,
    /// Queries answered with `budget_exhausted`.
    budget_exhausted: AtomicU64,
    /// Queries that panicked (their sessions were quarantined).
    panics: AtomicU64,
    /// Request lines rejected for exceeding [`MAX_LINE`].
    oversized: AtomicU64,
    /// Queries at or over the `--slow-query-ms` threshold (logged).
    slow_queries: AtomicU64,
    /// Queries refused with `shard_unavailable` (remote serving, a shard
    /// down past its retry budget, degraded answers not allowed).
    shard_unavailable: AtomicU64,
}

/// The armed slow-query log: a threshold and an append-mode file handle.
struct SlowLog {
    /// Queries taking at least this many wall-clock milliseconds
    /// (measured by the server around the whole search) are logged.
    threshold_ms: u64,
    /// Whether queries run fully traced so the log line can carry the
    /// per-level execution trace (`--slow-query-trace on`). Off by
    /// default: the line then carries the qid and the per-phase profile,
    /// which every search measures anyway.
    traced: bool,
    /// Appended one JSON line per slow query; the mutex serializes
    /// writers so lines never interleave.
    file: Mutex<std::fs::File>,
}

impl SlowLog {
    /// Open (append/create) the log file.
    fn open(path: &str, threshold_ms: u64, traced: bool) -> Result<SlowLog, String> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("--slow-query-log {path}: {e}"))?;
        Ok(SlowLog { threshold_ms, traced, file: Mutex::new(file) })
    }

    /// Append one line for `answer` if it crossed the threshold.
    fn maybe_log(&self, q: &str, answer: &Answer, counters: &ServeCounters) {
        if answer.wall_ms < self.threshold_ms as f64 {
            return;
        }
        counters.slow_queries.fetch_add(1, Ordering::SeqCst);
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let doc = serde_json::json!({
            "ts_ms": ts_ms,
            "qid": answer.qid,
            "query": q,
            "ms": answer.wall_ms,
            "threshold_ms": self.threshold_ms,
            "error": answer.error,
            "phase_ms": answer.phase_ms.as_ref().map(serde_json::to_value),
            "trace": answer.trace.as_deref().map(serde_json::to_value),
        });
        let mut file = self.file.lock();
        let _ = writeln!(file, "{doc}");
    }
}

/// Static identity of this serving process, surfaced as the
/// `ws_build_info` info-gauge and the `ws_uptime_seconds` gauge.
struct ServeInfo {
    /// Crate version (`CARGO_PKG_VERSION`).
    version: &'static str,
    /// The backend flag as the operator spelled it (`seq`, `cpu`, …).
    backend: String,
    /// Shards served (remote workers, in-process shards, or 1).
    shards: usize,
    /// When the server started, for `ws_uptime_seconds`.
    started: Instant,
}

/// Everything a worker needs to serve connections, shared by reference
/// across the pool.
struct Shared<'a> {
    ws: &'a WikiSearch,
    counters: &'a ServeCounters,
    budget: QueryBudget,
    max_requests: usize,
    draining: &'a AtomicBool,
    addr: SocketAddr,
    /// `Some` when `--slow-query-ms` armed the slow-query log.
    slow: Option<SlowLog>,
    /// `Some` when `--shard-workers` forked a supervised worker fleet;
    /// surfaces live PIDs and the respawn count on `STATS`.
    supervisor: Option<&'a crate::supervisor::Supervisor>,
    /// Build/runtime identity for `METRICS`.
    info: ServeInfo,
}

/// Run the server until `max_requests` queries have been answered (or
/// forever when it is 0).
pub fn serve(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), String> {
    args.allow_only(&[
        "graph",
        "mmap",
        "port",
        "backend",
        "threads",
        "top-k",
        "max-requests",
        "workers",
        "cache-capacity",
        "timeout-ms",
        "max-expansions",
        "max-queue",
        "slow-query-ms",
        "slow-query-log",
        "slow-query-trace",
        "telemetry-interval-ms",
        "shards",
        "batch-window-us",
        "batch-max",
        "async-io",
        "shard-workers",
        "shard-addr",
        "degraded-answers",
        "rpc-timeout-ms",
        "rpc-retries",
        "heartbeat-ms",
    ])?;
    let port: u16 = args.get_or("port", 7878)?;
    let threads: usize = args.get_or("threads", 4)?;
    let shards: usize = args.get_or("shards", 1)?;
    let max_requests: usize = args.get_or("max-requests", 0)?;
    let workers: usize = args.get_or("workers", 4)?;
    let cache_capacity = args.get_bytes("cache-capacity", 64 << 20)?;
    let timeout_ms: u64 = args.get_or("timeout-ms", 0)?;
    let max_expansions: u64 = args.get_or("max-expansions", 0)?;
    let max_queue: usize = args.get_or("max-queue", 64)?;
    let slow_query_ms: u64 = args.get_or("slow-query-ms", 0)?;
    let telemetry_interval_ms: u64 = args.get_or("telemetry-interval-ms", 1000)?;
    let slow_query_trace = match args.optional("slow-query-trace").unwrap_or("off") {
        "off" => false,
        "on" => true,
        other => return Err(format!("--slow-query-trace must be `off` or `on`, got {other:?}")),
    };
    let batch_window_us: u64 = args.get_or("batch-window-us", 0)?;
    let batch_max: usize = args.get_or("batch-max", 16)?;
    let async_io: bool = args.get_or("async-io", false)?;
    let shard_workers: usize = args.get_or("shard-workers", 0)?;
    let shard_addr = args.optional("shard-addr");
    let degraded_answers: bool = args.get_or("degraded-answers", false)?;
    let rpc_timeout_ms: u64 = args.get_or("rpc-timeout-ms", 5000)?;
    let rpc_retries: u32 = args.get_or("rpc-retries", 3)?;
    let heartbeat_ms: u64 = args.get_or("heartbeat-ms", 1000)?;
    if workers == 0 {
        return Err("--workers must be >= 1".into());
    }
    if shards == 0 {
        return Err("--shards must be >= 1".into());
    }
    if max_queue == 0 {
        return Err("--max-queue must be >= 1".into());
    }
    if !(1..=central::MAX_BATCH_LANES).contains(&batch_max) {
        return Err(format!("--batch-max must be in 1..={}", central::MAX_BATCH_LANES));
    }
    if slow_query_ms == 0 && args.optional("slow-query-log").is_some() {
        return Err("--slow-query-log requires --slow-query-ms N (N >= 1)".into());
    }
    if slow_query_ms == 0 && args.optional("slow-query-trace").is_some() {
        return Err("--slow-query-trace requires --slow-query-ms N (N >= 1)".into());
    }
    let remote = shard_workers > 0 || shard_addr.is_some();
    if shard_workers > 0 && shard_addr.is_some() {
        return Err("--shard-workers and --shard-addr are mutually exclusive".into());
    }
    if remote && shards > 1 {
        return Err(
            "remote shard serving replaces --shards; drop --shards or the remote flags".into()
        );
    }
    if remote && batch_window_us > 0 {
        return Err("--batch-window-us is not supported with remote shard serving".into());
    }
    if !remote {
        for flag in ["degraded-answers", "rpc-timeout-ms", "rpc-retries", "heartbeat-ms"] {
            if args.optional(flag).is_some() {
                return Err(format!(
                    "--{flag} requires remote shard serving (--shard-workers or --shard-addr)"
                ));
            }
        }
    }
    if remote && rpc_timeout_ms == 0 {
        return Err("--rpc-timeout-ms must be >= 1".into());
    }
    if remote && rpc_retries == 0 {
        return Err("--rpc-retries must be >= 1".into());
    }
    let slow = if slow_query_ms > 0 {
        let path = args.optional("slow-query-log").unwrap_or("slow_queries.jsonl");
        Some(SlowLog::open(path, slow_query_ms, slow_query_trace)?)
    } else {
        None
    };
    let mut budget = QueryBudget::unlimited();
    if timeout_ms > 0 {
        budget = budget.with_timeout(Duration::from_millis(timeout_ms));
    }
    if max_expansions > 0 {
        budget = budget.with_max_expansions(max_expansions);
    }
    let backend = Backend::parse(args.optional("backend").unwrap_or("cpu"), threads)?;
    let mut ws = crate::commands::open_engine(args, backend, shards)?;
    let mut params = ws.params().clone();
    params.top_k = args.get_or("top-k", params.top_k)?;
    ws.set_params(params);
    ws.set_cache_capacity(cache_capacity);
    ws.set_batching(Duration::from_micros(batch_window_us), batch_max);
    ws.set_telemetry(telemetry_interval_ms, DEFAULT_TELEMETRY_SAMPLES);
    let remote_opts = RemoteOptions {
        rpc_timeout: Duration::from_millis(rpc_timeout_ms),
        attempts: rpc_retries,
        heartbeat: if heartbeat_ms > 0 {
            Some(Duration::from_millis(heartbeat_ms))
        } else {
            None
        },
        degraded_answers,
        ..RemoteOptions::default()
    };
    let supervisor = if shard_workers > 0 {
        let source = if let Some(path) = args.optional("mmap") {
            ("--mmap".to_string(), path.to_string())
        } else {
            ("--graph".to_string(), args.required("graph")?.to_string())
        };
        let sup = crate::supervisor::Supervisor::launch(source, shard_workers)?;
        ws.set_remote_shards(shard_workers, sup.addrs(), remote_opts);
        Some(sup)
    } else if let Some(list) = shard_addr {
        let addrs: Vec<SocketAddr> = list
            .split(',')
            .map(|a| a.trim().parse::<SocketAddr>().map_err(|e| format!("--shard-addr {a:?}: {e}")))
            .collect::<Result<_, _>>()?;
        if addrs.is_empty() {
            return Err("--shard-addr needs at least one address".into());
        }
        let n = addrs.len();
        ws.set_remote_shards(n, Arc::new(StaticAddrs(addrs)), remote_opts);
        None
    } else {
        None
    };
    let ws = Arc::new(ws);

    let listener = TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("bind 127.0.0.1:{port}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let sharding = if let Some(n) = ws.num_remote_shards() {
        let how = if supervisor.is_some() {
            "supervised"
        } else {
            "attached"
        };
        let policy = if degraded_answers {
            ", degraded-answers"
        } else {
            ""
        };
        format!(", {n} remote shards ({how}){policy}")
    } else {
        match ws.num_shards() {
            Some(n) => format!(", {n} shards"),
            None => String::new(),
        }
    };
    let backing = if ws.is_memory_mapped() {
        ", mmap-backed"
    } else {
        ""
    };
    let batching = if batch_window_us > 0 {
        format!(", batching {batch_window_us}us x{batch_max}")
    } else {
        String::new()
    };
    let frontend = if async_io { ", async-io" } else { "" };
    writeln!(
        out,
        "wikisearch serving on 127.0.0.1:{} ({} nodes indexed, {workers} \
         workers{sharding}{backing}{batching}{frontend})",
        addr.port(),
        ws.graph().num_nodes()
    )
    .map_err(|e| e.to_string())?;

    let counters_arc = Arc::new(ServeCounters::default());
    let counters = Arc::clone(&counters_arc);
    let draining = AtomicBool::new(false);
    // The background sampler: one metrics snapshot per interval into the
    // telemetry ring, entirely off the query path. It stops (promptly —
    // it sleeps in DRAIN_POLL ticks) once serving ends.
    let sampler_stop = Arc::new(AtomicBool::new(false));
    let sampler = (telemetry_interval_ms > 0).then(|| {
        let ws = Arc::clone(&ws);
        let counters = Arc::clone(&counters);
        let stop = Arc::clone(&sampler_stop);
        std::thread::spawn(move || run_sampler(&ws, &counters, &stop))
    });
    let shared = Shared {
        ws: &ws,
        counters: &counters_arc,
        budget,
        max_requests,
        draining: &draining,
        addr,
        slow,
        supervisor: supervisor.as_ref(),
        info: ServeInfo {
            version: env!("CARGO_PKG_VERSION"),
            backend: args.optional("backend").unwrap_or("cpu").to_string(),
            shards: ws.num_remote_shards().or(ws.num_shards()).unwrap_or(1),
            started: Instant::now(),
        },
    };
    let accept_error = if async_io {
        serve_async(&listener, &shared, workers, max_queue)
    } else {
        serve_sync(&listener, &shared, workers, max_queue)
    };

    sampler_stop.store(true, Ordering::SeqCst);
    if let Some(handle) = sampler {
        let _ = handle.join();
    }
    if let Some(e) = accept_error {
        return Err(e);
    }
    writeln!(out, "served {} queries, shutting down", counters.served.load(Ordering::SeqCst))
        .map_err(|e| e.to_string())
}

/// The background sampler loop: publish one [`TelemetrySample`] (a
/// monotonic timestamp, the served counter, and the full metrics
/// snapshot) per `--telemetry-interval-ms` into the engine's telemetry
/// ring. Sleeps in [`DRAIN_POLL`] ticks so shutdown never waits out a
/// long interval; publishes a boot sample immediately so `STATS WINDOW`
/// has a subtraction base one interval in.
fn run_sampler(ws: &WikiSearch, counters: &ServeCounters, stop: &AtomicBool) {
    let telemetry = ws.telemetry();
    let interval = Duration::from_millis(telemetry.interval_ms.max(1));
    let started = Instant::now();
    let sample = || TelemetrySample {
        t_us: started.elapsed().as_micros() as u64,
        served: counters.served.load(Ordering::SeqCst) as u64,
        snapshot: ws.metrics_snapshot(),
    };
    telemetry.record_sample(&sample());
    let mut due = interval;
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(DRAIN_POLL.min(interval));
        if started.elapsed() < due {
            continue;
        }
        telemetry.record_sample(&sample());
        due = started.elapsed() + interval;
    }
}

/// The connection-per-worker serving loop: each accepted connection is
/// owned by one worker until its peer quits or the server drains.
fn serve_sync(
    listener: &TcpListener,
    shared: &Shared<'_>,
    workers: usize,
    max_queue: usize,
) -> Option<String> {
    // Bounded handoff queue: when it is full, new connections are shed
    // instead of queueing without limit.
    let (tx, rx) = mpsc::sync_channel::<TcpStream>(max_queue);
    // parking_lot::Mutex does not poison: a worker that panics while
    // dequeuing (it cannot — but the type guarantees it) would not wedge
    // the other workers' receiver access.
    let rx = Mutex::new(rx);
    let mut accept_error = None;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let rx = &rx;
            scope.spawn(move || loop {
                // Hold the receiver lock only while dequeuing, so idle
                // workers take turns; a closed channel means the acceptor
                // is done and the queue is drained.
                let next = rx.lock().recv();
                let Ok(stream) = next else { break };
                handle_connection(stream, shared);
            });
        }
        for stream in listener.incoming() {
            if shared.draining.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(e) => {
                    accept_error = Some(format!("accept: {e}"));
                    break;
                }
            };
            match tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(stream)) => shed(stream, shared.counters),
                Err(TrySendError::Disconnected(_)) => break,
            }
        }
        // Closing the channel lets workers finish queued connections and
        // exit; the scope joins them before returning.
        drop(tx);
    });
    accept_error
}

/// One multiplexed connection: the buffered reader travels with the
/// socket, so request bytes a worker buffered but did not consume are
/// still there when the muxer re-dispatches the connection.
struct MuxConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// What the muxer's readiness probe saw on a parked connection.
enum Readiness {
    /// Bytes are waiting (buffered or on the socket) — dispatch it.
    Ready,
    /// Nothing to read; keep it parked. Costs one `peek`, not a thread.
    Idle,
    /// EOF or a socket error — drop the connection.
    Gone,
}

/// Non-blocking readiness probe: buffered bytes count as ready (a
/// pipelined request may already sit in the `BufReader`), otherwise one
/// `peek` asks the socket without consuming anything.
fn readiness(conn: &mut MuxConn) -> Readiness {
    if !conn.reader.buffer().is_empty() {
        return Readiness::Ready;
    }
    let mut probe = [0u8; 1];
    match conn.writer.peek(&mut probe) {
        Ok(0) => Readiness::Gone,
        Ok(_) => Readiness::Ready,
        Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
            Readiness::Idle
        }
        Err(_) => Readiness::Gone,
    }
}

/// How often the muxer sweeps its parked connections for readiness.
const MUX_POLL: Duration = Duration::from_millis(1);

/// The readiness-polled serving loop (`--async-io true`): a muxer thread
/// owns every parked connection and hands only *ready* ones to the
/// bounded worker pool, one request per dispatch, so idle connections
/// never pin a worker. Workers return the connection to the muxer after
/// answering (unless the peer quit or the server is done).
fn serve_async(
    listener: &TcpListener,
    shared: &Shared<'_>,
    workers: usize,
    max_queue: usize,
) -> Option<String> {
    // park_tx: acceptor + workers hand connections (back) to the muxer.
    // ready_tx: the muxer hands ready connections to the workers; bounded
    // so a request flood applies backpressure at the muxer, which sheds.
    let (park_tx, park_rx) = mpsc::channel::<MuxConn>();
    let (ready_tx, ready_rx) = mpsc::sync_channel::<MuxConn>(max_queue);
    let ready_rx = Mutex::new(ready_rx);
    let mut accept_error = None;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let ready_rx = &ready_rx;
            let park_tx = park_tx.clone();
            scope.spawn(move || loop {
                let next = ready_rx.lock().recv();
                let Ok(mut conn) = next else { break };
                // Blocking-with-timeout while the worker owns it: the
                // request's bytes are (at least partially) there, and the
                // timeout keeps a trickling client from pinning the
                // worker through a drain.
                let _ = conn.writer.set_nonblocking(false);
                let _ = conn.writer.set_read_timeout(Some(DRAIN_POLL));
                match serve_one_request(&mut conn.reader, &mut conn.writer, shared) {
                    Served::Continue => {
                        let _ = conn.writer.set_nonblocking(true);
                        // A muxer that already exited drops the
                        // connection here — drain semantics.
                        let _ = park_tx.send(conn);
                    }
                    Served::Close => {}
                }
            });
        }

        // The muxer: sweep parked connections, dispatch the ready ones.
        scope.spawn(move || {
            let mut parked: Vec<MuxConn> = Vec::new();
            let mut acceptor_done = false;
            loop {
                loop {
                    match park_rx.try_recv() {
                        Ok(conn) => parked.push(conn),
                        Err(mpsc::TryRecvError::Empty) => break,
                        Err(mpsc::TryRecvError::Disconnected) => {
                            acceptor_done = true;
                            break;
                        }
                    }
                }
                if shared.draining.load(Ordering::SeqCst) || acceptor_done {
                    // Drain: parked (idle) connections are dropped; the
                    // closing ready channel lets workers finish and exit.
                    break;
                }
                let mut still_parked = Vec::with_capacity(parked.len());
                for mut conn in parked.drain(..) {
                    match readiness(&mut conn) {
                        Readiness::Ready => match ready_tx.try_send(conn) {
                            Ok(()) => {}
                            // Every worker busy and the queue full: the
                            // connection stays parked and is retried next
                            // sweep — existing peers are never shed.
                            Err(TrySendError::Full(conn)) => still_parked.push(conn),
                            Err(TrySendError::Disconnected(_)) => {}
                        },
                        Readiness::Idle => still_parked.push(conn),
                        Readiness::Gone => {}
                    }
                }
                parked = still_parked;
                std::thread::sleep(MUX_POLL);
            }
            drop(ready_tx);
        });

        for stream in listener.incoming() {
            if shared.draining.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(e) => {
                    accept_error = Some(format!("accept: {e}"));
                    break;
                }
            };
            let Ok(peer) = stream.try_clone() else {
                continue;
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            // New connections park first; the muxer dispatches them on
            // their first request bytes. An unbounded park queue is safe:
            // each entry is an accepted socket, bounded by the OS.
            let conn = MuxConn { reader: BufReader::new(peer), writer: stream };
            if park_tx.send(conn).is_err() {
                break;
            }
        }
        // The acceptor is gone (drain or accept error) — flip the drain
        // flag so the muxer's next sweep shuts the pipeline down even on
        // the error path, where no query ever flipped it.
        shared.draining.store(true, Ordering::SeqCst);
        shared.ws.flush_batches();
        drop(park_tx);
    });
    accept_error
}

/// Refuse one connection because every worker is busy and the queue is
/// full: one `overloaded` line, then close. The client learns
/// immediately instead of waiting in an unbounded backlog.
fn shed(mut stream: TcpStream, counters: &ServeCounters) {
    counters.shed.fetch_add(1, Ordering::SeqCst);
    let _ =
        writeln!(stream, r#"{{"error":"overloaded","detail":"request queue full, retry later"}}"#);
}

/// How one attempt to read a request line ended.
enum LineRead {
    /// A complete line (newline stripped), within the size cap.
    Line(Vec<u8>),
    /// The line exceeded [`MAX_LINE`]; its remainder was discarded up to
    /// the newline, so the connection is resynchronized.
    Oversized,
    /// Clean EOF, drain, or a connection error — stop serving this peer.
    Closed,
}

/// Read one `\n`-terminated request line, byte-wise and bounded.
///
/// Reads through the connection's [`DRAIN_POLL`] timeout (so a worker
/// notices a drain while its client idles) and enforces [`MAX_LINE`]
/// *during* accumulation — a client streaming an endless line costs a
/// bounded buffer, not memory proportional to what it sends.
fn read_request_line(reader: &mut BufReader<TcpStream>, draining: &AtomicBool) -> LineRead {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok([]) => {
                // EOF: a non-empty unterminated tail still gets answered.
                return if buf.is_empty() {
                    LineRead::Closed
                } else {
                    LineRead::Line(buf)
                };
            }
            Ok(bytes) => bytes,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if draining.load(Ordering::SeqCst) {
                    return LineRead::Closed;
                }
                continue;
            }
            Err(_) => return LineRead::Closed,
        };
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                buf.extend_from_slice(&available[..pos]);
                reader.consume(pos + 1);
                if buf.len() > MAX_LINE {
                    return LineRead::Oversized;
                }
                return LineRead::Line(buf);
            }
            None => {
                let n = available.len();
                buf.extend_from_slice(available);
                reader.consume(n);
                if buf.len() > MAX_LINE {
                    return discard_rest_of_line(reader, draining);
                }
            }
        }
    }
}

/// The line already blew the cap: drop bytes until its newline so the
/// next request starts clean. Returns [`LineRead::Oversized`] once
/// resynchronized, [`LineRead::Closed`] if the peer goes away first.
fn discard_rest_of_line(reader: &mut BufReader<TcpStream>, draining: &AtomicBool) -> LineRead {
    loop {
        let available = match reader.fill_buf() {
            Ok([]) => return LineRead::Closed,
            Ok(bytes) => bytes,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if draining.load(Ordering::SeqCst) {
                    return LineRead::Closed;
                }
                continue;
            }
            Err(_) => return LineRead::Closed,
        };
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                return LineRead::Oversized;
            }
            None => {
                let n = available.len();
                reader.consume(n);
            }
        }
    }
}

/// Whether a connection should keep being served after one request.
enum Served {
    /// The request was answered (or skipped); the connection lives on.
    Continue,
    /// QUIT, EOF, a write failure, a drain, or `--max-requests` reached —
    /// stop serving this peer.
    Close,
}

/// Serve one connection until the peer quits, hangs up, or the server
/// drains — the connection-per-worker loop of the sync front end.
fn handle_connection(stream: TcpStream, shared: &Shared<'_>) {
    // A finite read timeout lets the worker notice a drain even while its
    // client sits idle on an open connection.
    let _ = stream.set_read_timeout(Some(DRAIN_POLL));
    let Ok(peer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(peer);
    let mut writer = stream;
    while let Served::Continue = serve_one_request(&mut reader, &mut writer, shared) {}
}

/// Read and answer exactly one request line. Increments `served` per
/// successful query; the query that reaches `max_requests` flips
/// `draining`, closes any open batch-collection window, and dials the
/// listener once to wake the blocked acceptor.
fn serve_one_request(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    shared: &Shared<'_>,
) -> Served {
    let raw = match read_request_line(reader, shared.draining) {
        LineRead::Line(raw) => raw,
        LineRead::Oversized => {
            shared.counters.oversized.fetch_add(1, Ordering::SeqCst);
            let doc = format!(
                r#"{{"error":"oversized line","detail":"request lines are capped at {MAX_LINE} bytes"}}"#
            );
            return if writeln!(writer, "{doc}").is_err() {
                Served::Close
            } else {
                Served::Continue
            };
        }
        LineRead::Closed => return Served::Close,
    };
    let Ok(line) = String::from_utf8(raw) else {
        return if writeln!(writer, r#"{{"error":"invalid utf-8"}}"#).is_err() {
            Served::Close
        } else {
            Served::Continue
        };
    };
    let request = line.trim();
    if request.eq_ignore_ascii_case("QUIT") {
        return Served::Close;
    }
    let mut done = false;
    if request.eq_ignore_ascii_case("PING") {
        if writeln!(writer, "PONG").is_err() {
            return Served::Close;
        }
    } else if request.eq_ignore_ascii_case("STATS") {
        let doc = stats_snapshot(shared.ws, shared.counters, shared.supervisor);
        if writeln!(writer, "{doc}").is_err() {
            return Served::Close;
        }
    } else if request.eq_ignore_ascii_case("TOP") {
        let doc = top_snapshot(shared.ws, shared.counters);
        if writeln!(writer, "{doc}").is_err() {
            return Served::Close;
        }
    } else if let Some(rest) = verb_rest(request, "STATS") {
        // Plain `STATS` matched above; this is `STATS <something>` —
        // only `STATS WINDOW <seconds>` is in the grammar.
        let doc = match stats_window_seconds(rest) {
            Ok(secs) => stats_window(shared.ws, secs),
            Err(msg) => serde_json::json!({ "error": msg }),
        };
        if writeln!(writer, "{doc}").is_err() {
            return Served::Close;
        }
    } else if request.eq_ignore_ascii_case("METRICS") {
        let text = metrics_exposition(shared.ws, shared.counters, &shared.info);
        if writer.write_all(text.as_bytes()).is_err() {
            return Served::Close;
        }
    } else if let Some(keywords) = verb_rest(request, "EXPLAIN") {
        if keywords.is_empty() {
            if writeln!(writer, r#"{{"error":"empty query"}}"#).is_err() {
                return Served::Close;
            }
        } else {
            let qid = shared.ws.issue_query_id();
            let doc = explain_query(shared.ws, keywords, &shared.budget, shared.counters, qid);
            if writeln!(writer, "{doc}").is_err() {
                return Served::Close;
            }
        }
    } else if let Some(keywords) = query_keywords(request) {
        if keywords.is_empty() {
            if writeln!(writer, r#"{{"error":"empty query"}}"#).is_err() {
                return Served::Close;
            }
        } else {
            // Admission: the query's fleet-wide ID is allocated before
            // anything can fail, so even error documents carry it.
            let qid = shared.ws.issue_query_id();
            let traced = shared.slow.as_ref().is_some_and(|s| s.traced);
            let answer =
                answer_query(shared.ws, keywords, &shared.budget, shared.counters, traced, qid);
            if let Some(slow) = &shared.slow {
                slow.maybe_log(keywords, &answer, shared.counters);
            }
            if answer.succeeded {
                let n = shared.counters.served.fetch_add(1, Ordering::SeqCst) + 1;
                if shared.max_requests > 0
                    && n >= shared.max_requests
                    && !shared.draining.swap(true, Ordering::SeqCst)
                {
                    // Close any open batch window so co-batched peers get
                    // their answers now instead of waiting out the timer,
                    // then wake the acceptor blocked in accept() so it can
                    // observe the drain; the throwaway connection is
                    // dropped by whichever worker receives it.
                    shared.ws.flush_batches();
                    let _ = TcpStream::connect(shared.addr);
                    done = true;
                }
            }
            if writeln!(writer, "{}", answer.doc).is_err() {
                return Served::Close;
            }
        }
    } else if writeln!(
        writer,
        r#"{{"error":"expected QUERY/EXPLAIN/PING/STATS/STATS WINDOW/TOP/METRICS/QUIT"}}"#
    )
    .is_err()
    {
        return Served::Close;
    }
    if done {
        Served::Close
    } else {
        Served::Continue
    }
}

/// The argument part of a `<VERB> …` request, or `None` if the line does
/// not start with that verb followed by whitespace (or end-of-line).
/// `"QUERYX xml"` is an unknown command, not a `QUERY`.
fn verb_rest<'a>(request: &'a str, verb: &str) -> Option<&'a str> {
    let rest = request.strip_prefix(verb)?;
    if !rest.is_empty() && !rest.starts_with(char::is_whitespace) {
        return None;
    }
    Some(rest.trim())
}

/// The keyword part of a `QUERY …` request, or `None` if the line is not
/// a QUERY at all. `QUERY` with nothing after it parses as an empty
/// keyword list (answered with an error, not ignored).
fn query_keywords(request: &str) -> Option<&str> {
    verb_rest(request, "QUERY")
}

/// Parse the tail of a `STATS …` request as `WINDOW <seconds>`. The
/// grammar is strict: exactly one argument, a positive integer.
fn stats_window_seconds(rest: &str) -> Result<u64, &'static str> {
    let grammar = "expected STATS WINDOW <seconds>";
    let secs = verb_rest(rest, "WINDOW").ok_or(grammar)?;
    match secs.parse::<u64>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err("STATS WINDOW takes a whole number of seconds >= 1"),
    }
}

/// One `STATS WINDOW <seconds>` response line: counters, rates and
/// latency/expansion percentiles *of the window* — the newest telemetry
/// sample minus the newest sample at least that much older. A structured
/// error until the sampler has published two samples.
fn stats_window(ws: &WikiSearch, secs: u64) -> serde_json::Value {
    let telemetry = ws.telemetry();
    let Some(w) = telemetry.window(secs.saturating_mul(1_000_000)) else {
        return serde_json::json!({
            "error": "window unavailable",
            "detail": "the windowed view needs two telemetry samples; \
                       is --telemetry-interval-ms > 0?",
        });
    };
    let lat = &w.latency_us;
    let exp = &w.expansions;
    serde_json::json!({
        "window_s": secs,
        "span_ms": w.span_us as f64 / 1e3,
        "samples": w.samples as u64,
        "queries": w.queries,
        "served": w.served,
        "qps": w.qps(),
        "cache_hits": w.cache_hits,
        "cache_misses": w.cache_misses,
        "cache_hit_rate": w.cache_hit_rate(),
        "deadline_exceeded": w.deadline_exceeded,
        "budget_exhausted": w.budget_exhausted,
        "shard_unavailable": w.shard_unavailable,
        "latency": {
            "count": lat.count,
            "mean_ms": lat.mean() / 1e3,
            "p50_ms": lat.percentile(0.50) as f64 / 1e3,
            "p95_ms": lat.percentile(0.95) as f64 / 1e3,
            "p99_ms": lat.percentile(0.99) as f64 / 1e3,
        },
        "expansions": {
            "count": exp.count,
            "mean": exp.mean(),
            "p50": exp.percentile(0.50),
            "p95": exp.percentile(0.95),
            "p99": exp.percentile(0.99),
        },
    })
}

/// One `TOP` response line: the operator's at-a-glance view. `qps` and
/// `cache_hit_rate` cover the last ten seconds and are `null` until the
/// sampler has two samples; `slowest_recent` is `null` until a query
/// has been answered; `breakers` is `null` without remote serving
/// (gauge values: 0 closed, 1 half-open, 2 open).
fn top_snapshot(ws: &WikiSearch, counters: &ServeCounters) -> serde_json::Value {
    let telemetry = ws.telemetry();
    let window = telemetry.window(10_000_000);
    let mut doc = serde_json::json!({
        "in_flight": telemetry.in_flight().current(),
        "served": counters.served.load(Ordering::SeqCst) as u64,
        "qids_issued": ws.query_ids_issued(),
        "samples": telemetry.samples(),
    });
    if let serde_json::Value::Object(entries) = &mut doc {
        entries.push((
            "qps".to_owned(),
            window.as_ref().map_or(serde_json::Value::Null, |w| serde_json::json!(w.qps())),
        ));
        entries.push((
            "cache_hit_rate".to_owned(),
            window
                .as_ref()
                .map_or(serde_json::Value::Null, |w| serde_json::json!(w.cache_hit_rate())),
        ));
        entries.push((
            "slowest_recent".to_owned(),
            match telemetry.slowest_recent() {
                Some((qid, wall_us)) => {
                    serde_json::json!({ "qid": qid, "wall_ms": wall_us as f64 / 1e3 })
                }
                None => serde_json::Value::Null,
            },
        ));
        entries.push((
            "breakers".to_owned(),
            match ws.remote_breaker_states() {
                Some(states) => {
                    serde_json::json!(states.iter().map(|s| s.gauge()).collect::<Vec<f64>>())
                }
                None => serde_json::Value::Null,
            },
        ));
    }
    doc
}

/// One `STATS` response line: serving counters, the engine's metrics
/// counters, latency/expansion percentiles, plus live pool, cache,
/// shard and remote snapshots. `cache` is JSON `null` when
/// `--cache-capacity 0`; `shards` is JSON `null` when serving unsharded
/// (`--shards 1`); `remote` is JSON `null` without remote workers.
fn stats_snapshot(
    ws: &WikiSearch,
    counters: &ServeCounters,
    supervisor: Option<&crate::supervisor::Supervisor>,
) -> serde_json::Value {
    let m = ws.metrics_snapshot();
    let lat = &m.latency_us;
    let exp = &m.expansions;
    serde_json::json!({
        "memory_mapped": ws.is_memory_mapped(),
        "served": counters.served.load(Ordering::SeqCst),
        "shed": counters.shed.load(Ordering::SeqCst),
        "timeouts": counters.timeouts.load(Ordering::SeqCst),
        "budget_exhausted": counters.budget_exhausted.load(Ordering::SeqCst),
        "panics": counters.panics.load(Ordering::SeqCst),
        "oversized": counters.oversized.load(Ordering::SeqCst),
        "slow_queries": counters.slow_queries.load(Ordering::SeqCst),
        "shard_unavailable": counters.shard_unavailable.load(Ordering::SeqCst),
        "engine": {
            "queries": m.queries,
            "cache_hits": m.cache_hits,
            "cache_misses": m.cache_misses,
            "deadline_exceeded": m.deadline_exceeded,
            "budget_exhausted": m.budget_exhausted,
            "shard_unavailable": m.shard_unavailable,
        },
        "latency": {
            "count": lat.count,
            "mean_ms": lat.mean() / 1e3,
            "p50_ms": lat.percentile(0.50) as f64 / 1e3,
            "p95_ms": lat.percentile(0.95) as f64 / 1e3,
            "p99_ms": lat.percentile(0.99) as f64 / 1e3,
        },
        "expansions": {
            "count": exp.count,
            "mean": exp.mean(),
            "p50": exp.percentile(0.50),
            "p95": exp.percentile(0.95),
            "p99": exp.percentile(0.99),
        },
        "pool": ws.session_pool().stats(),
        "cache": ws.cache_stats(),
        "shards": ws.shard_stats(),
        "batch": ws.batch_stats().map(|b| batch_block(&b)),
        "remote": ws.remote_stats().map(|r| remote_block(&r, supervisor)),
        "telemetry": telemetry_block(ws),
    })
}

/// The `telemetry` object of the `STATS` line: sampler state, the
/// in-flight gauge, query IDs issued, and the slowest recently answered
/// query (built by hand — the vendored `json!` macro caps nesting).
fn telemetry_block(ws: &WikiSearch) -> serde_json::Value {
    let telemetry = ws.telemetry();
    let mut doc = serde_json::json!({
        "interval_ms": telemetry.interval_ms,
        "samples": telemetry.samples(),
        "capacity": telemetry.capacity() as u64,
        "in_flight": telemetry.in_flight().current(),
        "qids_issued": ws.query_ids_issued(),
    });
    if let serde_json::Value::Object(entries) = &mut doc {
        entries.push((
            "slowest_recent".to_owned(),
            match telemetry.slowest_recent() {
                Some((qid, wall_us)) => {
                    serde_json::json!({ "qid": qid, "wall_ms": wall_us as f64 / 1e3 })
                }
                None => serde_json::Value::Null,
            },
        ));
    }
    doc
}

/// The `remote` object of the `STATS` line: the remote coordinator's
/// counters, per-shard breaker states, RPC latency percentiles, and —
/// under `--shard-workers` — the supervised fleet's live PIDs and
/// respawn count (built by hand — the vendored `json!` macro caps
/// nesting).
fn remote_block(
    r: &central::RemoteStats,
    supervisor: Option<&crate::supervisor::Supervisor>,
) -> serde_json::Value {
    let mut doc = serde_json::json!({
        "shards": r.shards,
        "rpcs": r.rpcs,
        "dials": r.dials,
        "retries": r.retries,
        "probes": r.probes,
        "probe_failures": r.probe_failures,
        "breaker_opens": r.breaker_opens,
        "degraded_queries": r.degraded_queries,
        "rounds": r.rounds,
        "notifications": r.notifications,
        "notifications_suppressed": r.notifications_suppressed,
        "breaker": r.breaker,
    });
    if let serde_json::Value::Object(entries) = &mut doc {
        let lat = &r.rpc_latency_us;
        entries.push((
            "rpc_latency_us".to_owned(),
            serde_json::json!({
                "count": lat.count,
                "mean": lat.mean(),
                "p50": lat.percentile(0.50),
                "p95": lat.percentile(0.95),
                "p99": lat.percentile(0.99),
            }),
        ));
        entries.push((
            "workers".to_owned(),
            match supervisor {
                Some(sup) => serde_json::json!({
                    "pids": sup.pids(),
                    "respawns": sup.respawns(),
                }),
                None => serde_json::Value::Null,
            },
        ));
    }
    doc
}

/// The `batch` object of the `STATS` line: the batcher's counters plus
/// size and fill-time percentiles (mirrors the `latency`/`expansions`
/// rendering; built by hand — the vendored `json!` macro caps nesting).
fn batch_block(b: &central::BatchStats) -> serde_json::Value {
    let quantiles = |h: &central::HistogramSnapshot| {
        serde_json::json!({
            "count": h.count,
            "mean": h.mean(),
            "p50": h.percentile(0.50),
            "p95": h.percentile(0.95),
            "p99": h.percentile(0.99),
        })
    };
    let mut doc = serde_json::json!({
        "window_us": b.window_us,
        "max_batch": b.max_batch,
        "batches": b.batches,
        "queries": b.queries,
        "enqueued": b.enqueued,
        "delivered": b.delivered,
    });
    if let serde_json::Value::Object(entries) = &mut doc {
        entries.push(("size".to_owned(), quantiles(&b.size)));
        entries.push(("fill_us".to_owned(), quantiles(&b.fill_us)));
    }
    doc
}

/// The `METRICS` response: the engine's metrics registry plus the pool,
/// cache, telemetry and serving counters in Prometheus text exposition
/// format, terminated by a literal `# EOF` line (the line-protocol
/// framing for this one multi-line response).
fn metrics_exposition(ws: &WikiSearch, counters: &ServeCounters, info: &ServeInfo) -> String {
    let m = ws.metrics_snapshot();
    let mut out = String::new();
    prometheus_labeled_gauge(
        &mut out,
        "ws_build_info",
        "Build/runtime identity (the value is always 1; the labels carry the facts).",
        &[(
            format!(
                "version=\"{}\",backend=\"{}\",shards=\"{}\",mmap=\"{}\"",
                info.version,
                info.backend,
                info.shards,
                ws.is_memory_mapped()
            ),
            1.0,
        )],
    );
    prometheus_gauge(
        &mut out,
        "ws_uptime_seconds",
        "Seconds since the server started.",
        info.started.elapsed().as_secs_f64(),
    );
    prometheus_counter(&mut out, "ws_queries_total", "Queries answered by the engine.", m.queries);
    prometheus_counter(
        &mut out,
        "ws_cache_hits_total",
        "Queries answered from the result cache.",
        m.cache_hits,
    );
    prometheus_counter(
        &mut out,
        "ws_cache_misses_total",
        "Queries that missed the result cache and ran a search.",
        m.cache_misses,
    );
    prometheus_counter(
        &mut out,
        "ws_deadline_exceeded_total",
        "Queries aborted by their wall-clock deadline.",
        m.deadline_exceeded,
    );
    prometheus_counter(
        &mut out,
        "ws_budget_exhausted_total",
        "Queries aborted by their expansion cap.",
        m.budget_exhausted,
    );
    prometheus_counter(
        &mut out,
        "ws_shard_unavailable_total",
        "Queries refused because a remote shard was unreachable.",
        m.shard_unavailable,
    );
    prometheus_histogram(
        &mut out,
        "ws_latency_seconds",
        "End-to-end query latency (successful queries).",
        &m.latency_us,
        1e-6,
    );
    prometheus_histogram(
        &mut out,
        "ws_expansions",
        "Expansion units per computed search.",
        &m.expansions,
        1.0,
    );
    let pool = ws.session_pool().stats();
    prometheus_counter(
        &mut out,
        "ws_pool_queries_total",
        "Queries completed through pooled sessions.",
        pool.queries_run,
    );
    prometheus_gauge(
        &mut out,
        "ws_pool_sessions_created",
        "Sessions ever created (concurrency peak).",
        pool.sessions_created as f64,
    );
    prometheus_gauge(
        &mut out,
        "ws_pool_idle_sessions",
        "Sessions idle in the freelist.",
        pool.idle_sessions as f64,
    );
    prometheus_gauge(
        &mut out,
        "ws_pool_in_flight",
        "Sessions currently checked out.",
        pool.in_flight as f64,
    );
    prometheus_counter(
        &mut out,
        "ws_pool_quarantined_total",
        "Sessions destroyed after a panic.",
        pool.quarantined,
    );
    if let Some(cache) = ws.cache_stats() {
        prometheus_counter(&mut out, "ws_cache_lookups_total", "Result-cache gets.", cache.lookups);
        prometheus_counter(
            &mut out,
            "ws_cache_evictions_total",
            "Result-cache evictions.",
            cache.evictions,
        );
        prometheus_gauge(
            &mut out,
            "ws_cache_entries",
            "Result-cache entries resident.",
            cache.entries as f64,
        );
        prometheus_gauge(
            &mut out,
            "ws_cache_bytes",
            "Result-cache bytes resident (estimate).",
            cache.bytes as f64,
        );
    }
    if let Some(shards) = ws.shard_stats() {
        prometheus_gauge(
            &mut out,
            "ws_shard_count",
            "Graph shards in the scatter-gather plan.",
            shards.shards as f64,
        );
        prometheus_counter(
            &mut out,
            "ws_shard_rounds_total",
            "Cross-shard frontier-exchange rounds.",
            shards.rounds,
        );
        prometheus_counter(
            &mut out,
            "ws_shard_notifications_total",
            "Boundary hit notifications broadcast to replica holders.",
            shards.notifications,
        );
        prometheus_counter(
            &mut out,
            "ws_shard_notifications_suppressed_total",
            "Duplicate boundary notifications pruned before broadcast.",
            shards.notifications_suppressed,
        );
        prometheus_counter(
            &mut out,
            "ws_shard_pool_queries_total",
            "Per-shard session checkouts (shards x sharded queries).",
            shards.pools.queries_run,
        );
        prometheus_counter(
            &mut out,
            "ws_shard_pool_quarantined_total",
            "Shard sessions destroyed after a panic.",
            shards.pools.quarantined,
        );
    }
    if let Some(batch) = ws.batch_stats() {
        prometheus_counter(
            &mut out,
            "ws_batch_batches_total",
            "Micro-batches executed (a solo run counts as a batch of one).",
            batch.batches,
        );
        prometheus_counter(
            &mut out,
            "ws_batch_queries_total",
            "Queries fused into micro-batches.",
            batch.queries,
        );
        prometheus_counter(
            &mut out,
            "ws_batch_enqueued_total",
            "Queries submitted to the micro-batcher.",
            batch.enqueued,
        );
        prometheus_counter(
            &mut out,
            "ws_batch_delivered_total",
            "Outcomes demultiplexed back to submitters.",
            batch.delivered,
        );
        prometheus_histogram(
            &mut out,
            "ws_batch_size",
            "Queries per executed micro-batch.",
            &batch.size,
            1.0,
        );
        prometheus_histogram(
            &mut out,
            "ws_batch_fill_seconds",
            "Collection-window fill time per batch.",
            &batch.fill_us,
            1e-6,
        );
    }
    if let Some(remote) = ws.remote_stats() {
        prometheus_gauge(
            &mut out,
            "ws_remote_shards",
            "Remote shard workers behind the coordinator.",
            remote.shards as f64,
        );
        prometheus_counter(
            &mut out,
            "ws_remote_rpcs_total",
            "RPCs issued to remote shard workers (queries, handshakes, probes).",
            remote.rpcs,
        );
        prometheus_counter(
            &mut out,
            "ws_remote_dials_total",
            "Fresh worker connections dialed (including respawn re-dials).",
            remote.dials,
        );
        prometheus_counter(
            &mut out,
            "ws_remote_retries_total",
            "Whole-query retries after a shard RPC failure.",
            remote.retries,
        );
        prometheus_counter(
            &mut out,
            "ws_remote_probes_total",
            "Out-of-band health probes sent to workers.",
            remote.probes,
        );
        prometheus_counter(
            &mut out,
            "ws_remote_probe_failures_total",
            "Health probes that confirmed a worker failure.",
            remote.probe_failures,
        );
        prometheus_counter(
            &mut out,
            "ws_remote_breaker_opens_total",
            "Per-shard circuit-breaker open transitions.",
            remote.breaker_opens,
        );
        prometheus_counter(
            &mut out,
            "ws_remote_degraded_queries_total",
            "Queries answered best-effort with at least one shard skipped.",
            remote.degraded_queries,
        );
        prometheus_counter(
            &mut out,
            "ws_remote_rounds_total",
            "Cross-shard frontier-exchange rounds over the wire.",
            remote.rounds,
        );
        prometheus_histogram(
            &mut out,
            "ws_remote_rpc_seconds",
            "Per-RPC round-trip latency to remote shard workers.",
            &remote.rpc_latency_us,
            1e-6,
        );
        if let Some(states) = ws.remote_breaker_states() {
            let samples: Vec<(String, f64)> = states
                .iter()
                .enumerate()
                .map(|(i, s)| (format!("shard=\"{i}\""), s.gauge()))
                .collect();
            prometheus_labeled_gauge(
                &mut out,
                "ws_remote_breaker_state",
                "Per-shard breaker state (0 closed, 1 half-open, 2 open).",
                &samples,
            );
        }
    }
    let telemetry = ws.telemetry();
    prometheus_gauge(
        &mut out,
        "ws_telemetry_interval_ms",
        "Background sampler period (0 = disabled).",
        telemetry.interval_ms as f64,
    );
    prometheus_counter(
        &mut out,
        "ws_telemetry_samples_total",
        "Periodic telemetry samples published.",
        telemetry.samples(),
    );
    prometheus_gauge(
        &mut out,
        "ws_telemetry_ring_capacity",
        "Telemetry sample-ring capacity (slots).",
        telemetry.capacity() as f64,
    );
    prometheus_gauge(
        &mut out,
        "ws_telemetry_in_flight",
        "Queries executing right now.",
        telemetry.in_flight().current() as f64,
    );
    prometheus_counter(
        &mut out,
        "ws_telemetry_query_ids_total",
        "Fleet-wide query IDs issued.",
        ws.query_ids_issued(),
    );
    prometheus_counter(
        &mut out,
        "ws_server_served_total",
        "Successful query responses.",
        counters.served.load(Ordering::SeqCst) as u64,
    );
    prometheus_counter(
        &mut out,
        "ws_server_shed_total",
        "Connections refused because the worker queue was full.",
        counters.shed.load(Ordering::SeqCst),
    );
    prometheus_counter(
        &mut out,
        "ws_server_panics_total",
        "Queries that panicked (sessions quarantined).",
        counters.panics.load(Ordering::SeqCst),
    );
    prometheus_counter(
        &mut out,
        "ws_server_oversized_total",
        "Request lines rejected for exceeding the size cap.",
        counters.oversized.load(Ordering::SeqCst),
    );
    prometheus_counter(
        &mut out,
        "ws_server_slow_queries_total",
        "Queries at or over the slow-query threshold.",
        counters.slow_queries.load(Ordering::SeqCst),
    );
    prometheus_counter(
        &mut out,
        "ws_server_shard_unavailable_total",
        "Queries refused at the server because a remote shard was down.",
        counters.shard_unavailable.load(Ordering::SeqCst),
    );
    out.push_str("# EOF\n");
    out
}

/// The outcome of one served query: the JSON response line, whether it
/// succeeded (only successes count toward `--max-requests`), and the
/// server-side observations the slow-query log needs.
struct Answer {
    /// The one-line JSON response.
    doc: serde_json::Value,
    /// Whether the query produced an answer document (vs. an error).
    succeeded: bool,
    /// Server-measured wall time around the whole search, in ms.
    wall_ms: f64,
    /// The fleet-wide query ID assigned at admission.
    qid: u64,
    /// Per-phase wall times, when the search completed (measured by
    /// every search; the slow-query log's default payload).
    phase_ms: Option<PhaseMillis>,
    /// The execution trace, when the query ran traced.
    trace: Option<Box<QueryTrace>>,
    /// The error kind (`"internal"`, `"deadline_exceeded"`,
    /// `"budget_exhausted"`) when the query failed.
    error: Option<&'static str>,
}

/// One response line for one query, under the server's budget and panic
/// isolation. With `traced`, the search runs with [`TraceLevel::Full`]
/// so the slow-query log can attach the execution trace (tracing never
/// changes answers). `qid` was assigned at admission and rides the
/// response — error documents included.
fn answer_query(
    ws: &WikiSearch,
    q: &str,
    budget: &QueryBudget,
    counters: &ServeCounters,
    traced: bool,
    qid: u64,
) -> Answer {
    let started = Instant::now();
    // Panic isolation boundary: a panicking search unwinds through the
    // pooled session's guard (quarantining the session) and is caught
    // here, so the worker and its other clients are unaffected.
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        if traced {
            let params = ws.params().clone().with_trace(TraceLevel::Full);
            ws.try_search_with_params_tagged(q, &params, budget, qid)
        } else {
            ws.try_search_with_params_tagged(q, ws.params(), budget, qid)
        }
    }));
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let result = match result {
        Ok(result) => result,
        Err(_panic) => {
            counters.panics.fetch_add(1, Ordering::SeqCst);
            let doc = serde_json::json!({
                "error": "internal",
                "detail": "query execution panicked; its session was quarantined",
                "query": q,
                "qid": qid,
            });
            return Answer {
                doc,
                succeeded: false,
                wall_ms,
                qid,
                phase_ms: None,
                trace: None,
                error: Some("internal"),
            };
        }
    };
    let mut result = match result {
        Ok(result) => result,
        Err(e) => {
            match e {
                SearchError::DeadlineExceeded { .. } => {
                    counters.timeouts.fetch_add(1, Ordering::SeqCst)
                }
                SearchError::BudgetExhausted { .. } => {
                    counters.budget_exhausted.fetch_add(1, Ordering::SeqCst)
                }
                SearchError::ShardUnavailable { .. } => {
                    counters.shard_unavailable.fetch_add(1, Ordering::SeqCst)
                }
            };
            let doc = serde_json::json!({
                "error": e.kind(),
                "detail": e.to_string(),
                "query": q,
                "qid": qid,
            });
            return Answer {
                doc,
                succeeded: false,
                wall_ms,
                qid,
                phase_ms: None,
                trace: None,
                error: Some(e.kind()),
            };
        }
    };
    let doc = answer_document(ws, q, &result);
    Answer {
        doc,
        succeeded: true,
        wall_ms,
        qid,
        phase_ms: Some(PhaseMillis::from(&result.profile)),
        trace: result.trace.take(),
        error: None,
    }
}

/// The success-path JSON document shared by `QUERY` and `EXPLAIN`.
fn answer_document(
    ws: &WikiSearch,
    q: &str,
    result: &wikisearch_engine::WikiSearchResult,
) -> serde_json::Value {
    let answers: Vec<serde_json::Value> = result
        .answers
        .iter()
        .map(|a| {
            serde_json::json!({
                "central": ws.graph().node_text(a.central),
                "depth": a.depth,
                "score": a.score,
                "nodes": a.nodes.len(),
                "edges": a.edges.len(),
            })
        })
        .collect();
    serde_json::json!({
        "query": q,
        "qid": result.qid,
        "answers": answers,
        "unmatched": result.query.unmatched,
        "ms": result.profile.total().as_secs_f64() * 1e3,
        "degraded": result.degraded,
    })
}

/// One `EXPLAIN` response line: the regular answer document with the
/// full execution trace attached. Runs under the same budget and panic
/// isolation as `QUERY`, but bypasses the result cache so the trace
/// describes a real search. Diagnostic — never counts toward
/// `--max-requests`.
fn explain_query(
    ws: &WikiSearch,
    q: &str,
    budget: &QueryBudget,
    counters: &ServeCounters,
    qid: u64,
) -> serde_json::Value {
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        ws.explain_with_params_tagged(q, ws.params(), budget, qid)
    }));
    let result = match result {
        Ok(result) => result,
        Err(_panic) => {
            counters.panics.fetch_add(1, Ordering::SeqCst);
            return serde_json::json!({
                "error": "internal",
                "detail": "query execution panicked; its session was quarantined",
                "query": q,
                "qid": qid,
            });
        }
    };
    match result {
        Ok(result) => {
            let mut doc = answer_document(ws, q, &result);
            if let serde_json::Value::Object(entries) = &mut doc {
                let trace = result
                    .trace
                    .as_deref()
                    .map(serde_json::to_value)
                    .unwrap_or(serde_json::Value::Null);
                entries.push(("trace".to_owned(), trace));
            }
            doc
        }
        Err(e) => {
            match e {
                SearchError::DeadlineExceeded { .. } => {
                    counters.timeouts.fetch_add(1, Ordering::SeqCst)
                }
                SearchError::BudgetExhausted { .. } => {
                    counters.budget_exhausted.fetch_add(1, Ordering::SeqCst)
                }
                SearchError::ShardUnavailable { .. } => {
                    counters.shard_unavailable.fetch_add(1, Ordering::SeqCst)
                }
            };
            serde_json::json!({
                "error": e.kind(),
                "detail": e.to_string(),
                "query": q,
                "qid": qid,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;

    fn free_port() -> u16 {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = probe.local_addr().unwrap().port();
        drop(probe);
        port
    }

    fn tiny_graph_file(tag: &str) -> String {
        let path = std::env::temp_dir()
            .join(format!("ws-serve-{}-{tag}.tsv", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let mut b = kgraph::GraphBuilder::new();
        let x = b.add_node("x", "xml");
        let q = b.add_node("q", "query language");
        let s = b.add_node("s", "sql");
        b.add_edge(x, q, "rel");
        b.add_edge(s, q, "rel");
        std::fs::write(&path, kgraph::io::to_tsv(&b.build())).unwrap();
        path
    }

    fn connect(port: u16) -> TcpStream {
        for _ in 0..100 {
            if let Ok(s) = TcpStream::connect(("127.0.0.1", port)) {
                return s;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        panic!("server not reachable on port {port}");
    }

    #[test]
    fn serves_queries_over_tcp() {
        let path = tiny_graph_file("basic");
        let port = free_port();
        let argv: Vec<String> =
            format!("serve --graph {path} --port {port} --backend seq --max-requests 2")
                .split_whitespace()
                .map(String::from)
                .collect();
        let args = parse(&argv).unwrap();
        let server = std::thread::spawn(move || {
            let mut out = Vec::new();
            serve(&args, &mut out).unwrap();
            String::from_utf8(out).unwrap()
        });

        let mut stream = connect(port);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();

        writeln!(stream, "PING").unwrap();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "PONG");

        line.clear();
        writeln!(stream, "QUERY xml sql").unwrap();
        reader.read_line(&mut line).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(doc["answers"][0]["central"], "query language");

        line.clear();
        writeln!(stream, "nonsense protocol line").unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("error"));

        line.clear();
        writeln!(stream, "QUERY").unwrap();
        reader.read_line(&mut line).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(doc["error"], "empty query", "{line}");

        line.clear();
        writeln!(stream).unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("error"), "empty line answered, not ignored: {line}");

        line.clear();
        writeln!(stream, "QUERY sql").unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("answers"));
        writeln!(stream, "QUIT").unwrap();

        let log = server.join().unwrap();
        assert!(log.contains("served 2 queries"), "{log}");
        assert!(log.contains("4 workers"), "{log}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn drains_even_when_another_connection_stays_open() {
        // A second client holds its connection open without ever sending
        // QUIT; reaching --max-requests on the first must still shut the
        // server down (workers poll the drain flag on read timeout).
        let path = tiny_graph_file("drain");
        let port = free_port();
        let argv: Vec<String> = format!(
            "serve --graph {path} --port {port} --backend seq --workers 2 --max-requests 1"
        )
        .split_whitespace()
        .map(String::from)
        .collect();
        let args = parse(&argv).unwrap();
        let server = std::thread::spawn(move || {
            let mut out = Vec::new();
            serve(&args, &mut out).unwrap();
            String::from_utf8(out).unwrap()
        });

        let idle = connect(port); // parked on a worker, never speaks
        let mut stream = connect(port);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        writeln!(stream, "QUERY xml sql").unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("answers"), "{line}");

        let log = server.join().unwrap();
        assert!(log.contains("served 1 queries"), "{log}");
        drop(idle);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_zero_workers() {
        let argv: Vec<String> = "serve --graph kb.tsv --workers 0"
            .split_whitespace()
            .map(String::from)
            .collect();
        let args = parse(&argv).unwrap();
        let mut out = Vec::new();
        let err = serve(&args, &mut out).unwrap_err();
        assert!(err.contains("--workers"), "{err}");
    }

    #[test]
    fn rejects_zero_queue() {
        let argv: Vec<String> = "serve --graph kb.tsv --max-queue 0"
            .split_whitespace()
            .map(String::from)
            .collect();
        let args = parse(&argv).unwrap();
        let mut out = Vec::new();
        let err = serve(&args, &mut out).unwrap_err();
        assert!(err.contains("--max-queue"), "{err}");
    }

    #[test]
    fn query_keyword_extraction_is_strict() {
        assert_eq!(query_keywords("QUERY xml sql"), Some("xml sql"));
        assert_eq!(query_keywords("QUERY"), Some(""));
        assert_eq!(query_keywords("QUERY   "), Some(""));
        assert_eq!(query_keywords("QUERYX xml"), None);
        assert_eq!(query_keywords("PING"), None);
        assert_eq!(query_keywords(""), None);
    }

    #[test]
    fn oversized_lines_are_rejected_and_the_connection_resyncs() {
        let path = tiny_graph_file("oversized");
        let port = free_port();
        let argv: Vec<String> =
            format!("serve --graph {path} --port {port} --backend seq --max-requests 1")
                .split_whitespace()
                .map(String::from)
                .collect();
        let args = parse(&argv).unwrap();
        let server = std::thread::spawn(move || {
            let mut out = Vec::new();
            serve(&args, &mut out).unwrap();
            String::from_utf8(out).unwrap()
        });

        let mut stream = connect(port);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();

        // A 3 × MAX_LINE query line: rejected with one error line, and the
        // bytes past the cap are discarded without desynchronizing.
        let huge = format!("QUERY {}\n", "x".repeat(3 * MAX_LINE));
        stream.write_all(huge.as_bytes()).unwrap();
        reader.read_line(&mut line).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(doc["error"], "oversized line", "{line}");

        // Invalid UTF-8 on the same connection: one structured error line.
        line.clear();
        stream.write_all(b"QUERY \xff\xfe\x00garbage\n").unwrap();
        reader.read_line(&mut line).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(doc["error"], "invalid utf-8", "{line}");

        // The connection still serves real queries afterwards.
        line.clear();
        writeln!(stream, "STATS").unwrap();
        reader.read_line(&mut line).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(doc["oversized"], 1u64, "{line}");

        line.clear();
        writeln!(stream, "QUERY xml sql").unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("answers"), "{line}");
        writeln!(stream, "QUIT").unwrap();

        let log = server.join().unwrap();
        assert!(log.contains("served 1 queries"), "{log}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn deadline_zero_timeout_yields_structured_error() {
        // --timeout-ms cannot be 0 (that means "off"), so drive an
        // always-expiring deadline through answer_query directly.
        let mut b = kgraph::GraphBuilder::new();
        let x = b.add_node("x", "xml");
        let s = b.add_node("s", "sql");
        b.add_edge(x, s, "rel");
        let ws = WikiSearch::build_with(b.build(), Backend::Sequential);
        let counters = ServeCounters::default();
        let budget = QueryBudget::unlimited().with_timeout(Duration::ZERO);
        let answer = answer_query(&ws, "xml sql", &budget, &counters, false, 11);
        assert!(!answer.succeeded);
        assert_eq!(answer.doc["error"], "deadline_exceeded");
        assert_eq!(answer.doc["qid"], 11u64, "error documents carry the qid");
        assert_eq!(answer.error, Some("deadline_exceeded"));
        assert!(answer.phase_ms.is_none(), "failed queries have no phase profile");
        assert_eq!(counters.timeouts.load(Ordering::SeqCst), 1);
        // And an unlimited budget still answers.
        let answer = answer_query(&ws, "xml sql", &QueryBudget::unlimited(), &counters, false, 12);
        assert!(answer.succeeded, "{}", answer.doc);
        assert_eq!(answer.doc["qid"], 12u64, "answer documents carry the qid");
        assert!(answer.trace.is_none(), "untraced queries carry no trace");
        assert!(answer.phase_ms.is_some(), "every completed search has a phase profile");
        assert_eq!(counters.served.load(Ordering::SeqCst), 0, "served is counted by the caller");
    }

    #[test]
    fn traced_answers_carry_a_trace_without_changing_the_document() {
        let mut b = kgraph::GraphBuilder::new();
        let x = b.add_node("x", "xml");
        let q = b.add_node("q", "query language");
        let s = b.add_node("s", "sql");
        b.add_edge(x, q, "rel");
        b.add_edge(s, q, "rel");
        let ws = WikiSearch::build_with(b.build(), Backend::Sequential);
        let counters = ServeCounters::default();
        let budget = QueryBudget::unlimited();
        let plain = answer_query(&ws, "xml sql", &budget, &counters, false, 1);
        let traced = answer_query(&ws, "xml sql", &budget, &counters, true, 2);
        assert!(traced.succeeded);
        let trace = traced.trace.expect("traced query carries its trace");
        assert!(!trace.levels.is_empty(), "per-level records present");
        // The client-visible document is identical either way.
        assert_eq!(
            serde_json::to_string(&plain.doc["answers"]).unwrap(),
            serde_json::to_string(&traced.doc["answers"]).unwrap()
        );
    }

    #[test]
    fn explain_attaches_the_trace_to_the_answer_document() {
        let mut b = kgraph::GraphBuilder::new();
        let x = b.add_node("x", "xml");
        let q = b.add_node("q", "query language");
        let s = b.add_node("s", "sql");
        b.add_edge(x, q, "rel");
        b.add_edge(s, q, "rel");
        let ws = WikiSearch::build_with(b.build(), Backend::Sequential);
        let counters = ServeCounters::default();
        let doc = explain_query(&ws, "xml sql", &QueryBudget::unlimited(), &counters, 7);
        assert_eq!(doc["answers"][0]["central"], "query language", "{doc}");
        assert_eq!(doc["qid"], 7u64, "{doc}");
        assert!(doc["trace"]["levels"].is_array(), "{doc}");
        assert_eq!(doc["trace"]["qid"], 7u64, "the trace joins on the same qid: {doc}");
        assert_eq!(doc["trace"]["keywords"], 2u64, "{doc}");
        // EXPLAIN under an expired deadline reports the structured error.
        let budget = QueryBudget::unlimited().with_timeout(Duration::ZERO);
        let doc = explain_query(&ws, "xml sql", &budget, &counters, 8);
        assert_eq!(doc["error"], "deadline_exceeded", "{doc}");
        assert_eq!(doc["qid"], 8u64, "{doc}");
        assert_eq!(counters.timeouts.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn slow_log_records_only_over_threshold_queries() {
        let path = std::env::temp_dir()
            .join(format!("ws-slowlog-unit-{}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let _ = std::fs::remove_file(&path);
        let slow = SlowLog::open(&path, 50, true).unwrap();
        let counters = ServeCounters::default();
        let fast = Answer {
            doc: serde_json::json!({}),
            succeeded: true,
            wall_ms: 1.0,
            qid: 1,
            phase_ms: Some(PhaseMillis::default()),
            trace: None,
            error: None,
        };
        slow.maybe_log("quick", &fast, &counters);
        let slow_answer = Answer {
            doc: serde_json::json!({}),
            succeeded: true,
            wall_ms: 80.0,
            qid: 2,
            phase_ms: Some(PhaseMillis::default()),
            trace: Some(Box::new(QueryTrace::default())),
            error: None,
        };
        slow.maybe_log("laggard", &slow_answer, &counters);
        assert_eq!(counters.slow_queries.load(Ordering::SeqCst), 1);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "only the over-threshold query is logged: {text}");
        let doc: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(doc["query"], "laggard");
        assert_eq!(doc["qid"], 2u64, "the slow-query line joins on the qid: {doc}");
        assert_eq!(doc["threshold_ms"], 50u64);
        assert!(doc["phase_ms"]["expansion_ms"].is_number(), "{doc}");
        assert!(doc["trace"]["levels"].is_array(), "{doc}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn untraced_slow_log_lines_carry_qid_and_phases_but_no_trace() {
        let path = std::env::temp_dir()
            .join(format!("ws-slowlog-unit2-{}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let _ = std::fs::remove_file(&path);
        // The default (--slow-query-trace off): queries run untraced, so
        // a logged line carries the qid + phase profile and a null trace.
        let slow = SlowLog::open(&path, 50, false).unwrap();
        assert!(!slow.traced);
        let counters = ServeCounters::default();
        let answer = Answer {
            doc: serde_json::json!({}),
            succeeded: true,
            wall_ms: 80.0,
            qid: 9,
            phase_ms: Some(PhaseMillis { expansion_ms: 33.0, ..PhaseMillis::default() }),
            trace: None,
            error: None,
        };
        slow.maybe_log("laggard", &answer, &counters);
        let text = std::fs::read_to_string(&path).unwrap();
        let doc: serde_json::Value = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(doc["qid"], 9u64, "{doc}");
        assert_eq!(doc["phase_ms"]["expansion_ms"], 33.0, "{doc}");
        assert!(doc["trace"].is_null(), "untraced lines have no trace: {doc}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stats_window_grammar_is_strict() {
        assert_eq!(stats_window_seconds("WINDOW 5"), Ok(5));
        assert_eq!(stats_window_seconds("WINDOW   30"), Ok(30));
        assert!(stats_window_seconds("WINDOW").is_err(), "seconds are required");
        assert!(stats_window_seconds("WINDOW 0").is_err(), "zero-width windows are refused");
        assert!(stats_window_seconds("WINDOW five").is_err());
        assert!(stats_window_seconds("WINDOW 5 6").is_err(), "exactly one argument");
        assert!(stats_window_seconds("WINDOWS 5").is_err(), "WINDOWS is not WINDOW");
        assert!(stats_window_seconds("PANE 5").is_err());
    }

    #[test]
    fn top_reports_in_flight_and_the_slowest_recent_query() {
        let mut b = kgraph::GraphBuilder::new();
        let x = b.add_node("x", "xml");
        let q = b.add_node("q", "query language");
        let s = b.add_node("s", "sql");
        b.add_edge(x, q, "rel");
        b.add_edge(s, q, "rel");
        let ws = WikiSearch::build_with(b.build(), Backend::Sequential);
        let counters = ServeCounters::default();
        // Before any query: gauges at zero, the optional views null.
        let doc = top_snapshot(&ws, &counters);
        assert_eq!(doc["in_flight"], 0u64, "{doc}");
        assert_eq!(doc["qids_issued"], 0u64, "{doc}");
        assert!(doc["slowest_recent"].is_null(), "{doc}");
        assert!(doc["qps"].is_null(), "no samples yet: {doc}");
        assert!(doc["breakers"].is_null(), "not serving remotely: {doc}");
        // After a served query the recent ring and the qid counter move.
        let qid = ws.issue_query_id();
        let answer = answer_query(&ws, "xml sql", &QueryBudget::unlimited(), &counters, false, qid);
        assert!(answer.succeeded);
        let doc = top_snapshot(&ws, &counters);
        assert_eq!(doc["qids_issued"], 1u64, "{doc}");
        assert_eq!(doc["slowest_recent"]["qid"], qid, "{doc}");
        assert!(doc["slowest_recent"]["wall_ms"].is_number(), "{doc}");
    }

    #[test]
    fn stats_window_needs_two_samples_then_subtracts_them() {
        let mut b = kgraph::GraphBuilder::new();
        let x = b.add_node("x", "xml");
        let s = b.add_node("s", "sql");
        b.add_edge(x, s, "rel");
        let ws = WikiSearch::build_with(b.build(), Backend::Sequential);
        let doc = stats_window(&ws, 5);
        assert_eq!(doc["error"], "window unavailable", "{doc}");
        // Feed the ring by hand the way the sampler does: a boot sample,
        // some queries, a second sample one "second" later.
        let snap = |t_us: u64, served: u64| TelemetrySample {
            t_us,
            served,
            snapshot: ws.metrics_snapshot(),
        };
        ws.telemetry().record_sample(&snap(0, 0));
        let counters = ServeCounters::default();
        for _ in 0..3 {
            let qid = ws.issue_query_id();
            let a = answer_query(&ws, "xml sql", &QueryBudget::unlimited(), &counters, false, qid);
            assert!(a.succeeded);
        }
        ws.telemetry().record_sample(&snap(1_000_000, 3));
        let doc = stats_window(&ws, 5);
        assert_eq!(doc["queries"], 3u64, "{doc}");
        assert_eq!(doc["served"], 3u64, "{doc}");
        assert_eq!(doc["window_s"], 5u64, "{doc}");
        assert!(doc["qps"].is_number(), "{doc}");
        assert_eq!(doc["latency"]["count"], 3u64, "{doc}");
    }

    #[test]
    fn slow_query_log_flag_requires_a_threshold() {
        let argv: Vec<String> = "serve --graph kb.tsv --slow-query-log /tmp/x.jsonl"
            .split_whitespace()
            .map(String::from)
            .collect();
        let args = parse(&argv).unwrap();
        let mut out = Vec::new();
        let err = serve(&args, &mut out).unwrap_err();
        assert!(err.contains("--slow-query-ms"), "{err}");
    }
}
