//! Lock-free serving metrics: relaxed-atomic counters and fixed-bucket
//! log-scale histograms, aggregated in a [`MetricsRegistry`].
//!
//! The paper's entire evaluation is built on per-phase breakdowns of
//! Algorithm 1; a *service* built on the same algorithm needs the
//! aggregate view — how many queries ran, how fast at the tail, how much
//! expansion work they did — without adding measurable cost to the hot
//! path. Everything here is therefore:
//!
//! * **lock-free** — recording is a handful of relaxed `fetch_add`s; no
//!   mutex, no allocation, safe to call from any worker thread;
//! * **fixed-footprint** — a [`LogHistogram`] is 64 power-of-two buckets
//!   (`bucket i` holds values in `[2^(i-1), 2^i)`, bucket 0 holds `0`),
//!   so one histogram is a flat 66-word array regardless of how many
//!   observations it absorbs;
//! * **mergeable and snapshot-able** — [`HistogramSnapshot`] is plain
//!   serde-serializable data whose merge is element-wise addition
//!   (associative and commutative, property-tested), so per-thread or
//!   per-process histograms fold into one.
//!
//! Percentiles come out of the snapshot by cumulative scan; a reported
//! percentile is the *upper bound* of the bucket holding that rank, which
//! makes the estimate conservative (never under-reports a latency) and
//! monotone in `p`. With power-of-two buckets the relative error is at
//! most 2×, which is the right resolution for p50/p95/p99 dashboards.
//!
//! The registry is fed by the engine facade (`wikisearch-engine`): one
//! latency and one expansion observation per query, plus cache-hit/miss
//! and budget-trip counters. The serving layer renders the snapshot as
//! JSON (`STATS`) or Prometheus text exposition format (`METRICS`) via
//! [`prometheus_counter`] / [`prometheus_histogram`].

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets. Bucket 0 holds the value `0`; bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i)`; the last bucket absorbs
/// everything beyond `2^(BUCKETS-2)`.
pub const BUCKETS: usize = 64;

/// The bucket index holding `v`: 0 for 0, otherwise `64 - v.leading_zeros()`
/// clamped to the last bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`2^i - 1`); the last bucket is
/// unbounded and reports `u64::MAX`.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A relaxed-atomic monotone counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A concurrent fixed-bucket log-scale histogram of `u64` observations.
///
/// Recording is three relaxed `fetch_add`s (bucket, count, sum) — callers
/// on the serving path never contend on a lock. Reads go through
/// [`LogHistogram::snapshot`], which is consistent *enough* for
/// monitoring (each word is read atomically; the set is not a
/// transaction).
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Fold another histogram's counts into this one.
    pub fn merge(&self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A plain-data copy of the current counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data image of a [`LogHistogram`]: serde-serializable, mergeable
/// by element-wise addition, and the thing percentiles are computed from.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts ([`BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot with the standard bucket layout.
    pub fn empty() -> Self {
        HistogramSnapshot { buckets: vec![0; BUCKETS], count: 0, sum: 0 }
    }

    /// Element-wise merge (associative and commutative — merging
    /// per-thread snapshots in any grouping or order yields the same
    /// aggregate, which the property suite verifies). Additions wrap on
    /// overflow, matching the relaxed `fetch_add`s of the live histogram,
    /// so merging snapshots equals recording the concatenated streams.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, &theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine = mine.wrapping_add(theirs);
        }
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// The value at quantile `p ∈ [0, 1]`, reported as the upper bound of
    /// the bucket containing that rank (a conservative estimate: the true
    /// value is at most the reported one, and at least half of it).
    /// Returns 0 for an empty histogram. Monotone in `p`.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }

    /// Mean of the observed values (exact — the sum is tracked, not
    /// bucketed). 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The service-wide metrics registry: every counter and histogram the
/// serving path feeds, behind relaxed atomics. One registry lives inside
/// each `WikiSearch` engine; the `STATS` and `METRICS` protocol verbs are
/// rendered from its [`MetricsRegistry::snapshot`].
#[derive(Default)]
pub struct MetricsRegistry {
    /// Queries answered (cache hits and computed searches alike).
    pub queries: Counter,
    /// Queries answered from the result cache.
    pub cache_hits: Counter,
    /// Queries that missed the cache and ran the two-stage search.
    pub cache_misses: Counter,
    /// Queries aborted by their wall-clock deadline.
    pub deadline_exceeded: Counter,
    /// Queries aborted by their expansion cap.
    pub budget_exhausted: Counter,
    /// Queries refused because a remote shard was unreachable past its
    /// retry budget and degraded answers were not allowed.
    pub shard_unavailable: Counter,
    /// End-to-end query latency in microseconds (successful queries).
    pub latency_us: LogHistogram,
    /// Expansion units per computed search (Algorithm 2 work items).
    pub expansions: LogHistogram,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A plain-data image of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queries: self.queries.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            deadline_exceeded: self.deadline_exceeded.get(),
            budget_exhausted: self.budget_exhausted.get(),
            shard_unavailable: self.shard_unavailable.get(),
            latency_us: self.latency_us.snapshot(),
            expansions: self.expansions.snapshot(),
        }
    }
}

/// Serde-serializable image of a [`MetricsRegistry`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Queries answered (cache hits and computed searches alike).
    pub queries: u64,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Queries that missed the cache and ran the two-stage search.
    pub cache_misses: u64,
    /// Queries aborted by their wall-clock deadline.
    pub deadline_exceeded: u64,
    /// Queries aborted by their expansion cap.
    pub budget_exhausted: u64,
    /// Queries refused because a remote shard was unreachable past its
    /// retry budget and degraded answers were not allowed.
    pub shard_unavailable: u64,
    /// End-to-end query latency in microseconds.
    pub latency_us: HistogramSnapshot,
    /// Expansion units per computed search.
    pub expansions: HistogramSnapshot,
}

/// Append one Prometheus counter series (`# HELP` / `# TYPE` / sample).
/// Metric names must match `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn prometheus_counter(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

/// Append one Prometheus gauge series.
pub fn prometheus_gauge(out: &mut String, name: &str, help: &str, value: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// Append one Prometheus gauge family with one labelled sample per entry.
/// Each entry is a `(label-body, value)` pair; the label body goes inside
/// the braces verbatim (e.g. `shard="0"`), so callers are responsible for
/// escaping label values.
pub fn prometheus_labeled_gauge(
    out: &mut String,
    name: &str,
    help: &str,
    samples: &[(String, f64)],
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    for (labels, value) in samples {
        let _ = writeln!(out, "{name}{{{labels}}} {value}");
    }
}

/// Append one Prometheus histogram series in text exposition format:
/// cumulative `_bucket{le="…"}` samples (only buckets that received
/// observations, plus the mandatory `le="+Inf"`), `_sum`, and `_count`.
/// Observed values are multiplied by `scale` (e.g. `1e-6` to expose
/// microsecond observations in seconds, the Prometheus base unit).
pub fn prometheus_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    h: &HistogramSnapshot,
    scale: f64,
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 || i >= BUCKETS - 1 {
            continue; // the unbounded last bucket folds into +Inf
        }
        cumulative += c;
        let le = bucket_upper_bound(i) as f64 * scale;
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", h.sum as f64 * scale);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Every value lands in the bucket whose bounds contain it.
        for v in [0u64, 1, 5, 100, 1023, 1024, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "{v} above its bucket");
            if i > 0 && i < BUCKETS - 1 {
                assert!(v > bucket_upper_bound(i - 1), "{v} below its bucket");
            }
        }
    }

    #[test]
    fn percentiles_come_from_bucket_upper_bounds() {
        let h = LogHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        // p50 rank is 50 → bucket [32,64) → upper bound 63.
        assert_eq!(s.percentile(0.5), 63);
        // p99 rank is 99 → bucket [64,128) → upper bound 127.
        assert_eq!(s.percentile(0.99), 127);
        assert_eq!(s.percentile(0.0), 1, "rank clamps to the first observation");
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let s = LogHistogram::new().snapshot();
        assert_eq!(s.percentile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.count, 0);
    }

    #[test]
    fn percentile_is_monotone_in_p() {
        let h = LogHistogram::new();
        for v in [0u64, 3, 17, 17, 400, 90_000, 90_000, 1 << 33] {
            h.record(v);
        }
        let s = h.snapshot();
        let mut last = 0;
        for p in 0..=100 {
            let v = s.percentile(p as f64 / 100.0);
            assert!(v >= last, "p{p}: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn snapshot_merge_is_elementwise() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        a.record(5);
        a.record(1000);
        b.record(5);
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        let all = LogHistogram::new();
        for v in [5u64, 1000, 5] {
            all.record(v);
        }
        assert_eq!(sa, all.snapshot());
    }

    #[test]
    fn live_merge_folds_counts() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        a.record(7);
        b.record(9);
        b.record(u64::MAX);
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[bucket_index(7)], 1);
        assert_eq!(s.buckets[BUCKETS - 1], 1);
    }

    #[test]
    fn registry_snapshot_round_trips_through_serde() {
        let r = MetricsRegistry::new();
        r.queries.add(3);
        r.cache_hits.inc();
        r.latency_us.record(1500);
        r.expansions.record(64);
        let snap = r.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.queries, 3);
        assert_eq!(back.latency_us.count, 1);
    }

    #[test]
    fn prometheus_rendering_is_wellformed() {
        let h = LogHistogram::new();
        h.record(1500);
        h.record(3000);
        let mut out = String::new();
        prometheus_counter(&mut out, "ws_queries_total", "Queries served.", 2);
        prometheus_histogram(&mut out, "ws_latency_seconds", "Query latency.", &h.snapshot(), 1e-6);
        assert!(out.contains("# TYPE ws_queries_total counter"));
        assert!(out.contains("ws_queries_total 2"));
        assert!(out.contains("# TYPE ws_latency_seconds histogram"));
        assert!(out.contains("ws_latency_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(out.contains("ws_latency_seconds_count 2"));
        // Cumulative bucket counts never decrease.
        let mut last = 0u64;
        for line in out.lines().filter(|l| l.contains("_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "{line}");
            last = v;
        }
    }

    #[test]
    fn concurrent_records_match_a_sequential_oracle() {
        let h = LogHistogram::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        let oracle = LogHistogram::new();
        for t in 0..8u64 {
            for i in 0..1000 {
                oracle.record(t * 1000 + i);
            }
        }
        assert_eq!(h.snapshot(), oracle.snapshot());
    }
}
