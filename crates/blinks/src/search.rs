//! BLINKS query evaluation over the precomputed index.
//!
//! With the full node–keyword map in memory, scoring every candidate root
//! is a linear scan: `score(v) = Σ_i dist(v, T_i)` (the distinct-root
//! semantics of BLINKS — one answer per root). Trees are reconstructed by
//! descending the distance gradient: from the root, for each keyword,
//! repeatedly step to a neighbor whose indexed distance is exactly one
//! less.

use crate::index::{NodeKeywordIndex, UNREACHABLE};
use kgraph::{KnowledgeGraph, NodeId};
use serde::{Deserialize, Serialize};
use textindex::ParsedQuery;

/// One BLINKS answer: a root plus one shortest path per keyword.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BlinksAnswer {
    /// The distinct root of this answer.
    pub root: NodeId,
    /// Per keyword: the path `root → … → keyword node`.
    pub paths: Vec<Vec<NodeId>>,
    /// `Σ_i dist(root, T_i)` in hops; smaller is better.
    pub score: u32,
}

impl BlinksAnswer {
    /// All distinct nodes of the answer.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.paths.iter().flatten().copied().collect();
        nodes.push(self.root);
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

/// The BLINKS query engine.
pub struct BlinksSearch<'a> {
    graph: &'a KnowledgeGraph,
    index: &'a NodeKeywordIndex,
}

impl<'a> BlinksSearch<'a> {
    /// Bind a graph and its prebuilt index.
    pub fn new(graph: &'a KnowledgeGraph, index: &'a NodeKeywordIndex) -> Self {
        BlinksSearch { graph, index }
    }

    /// Top-k distinct-root answers for `query`.
    ///
    /// Returns an empty list when any query term is missing from the
    /// index (BLINKS cannot answer for unindexed keywords) or no node
    /// reaches every keyword within the index's build depth.
    pub fn search(&self, query: &ParsedQuery, top_k: usize) -> Vec<BlinksAnswer> {
        let term_ids: Option<Vec<usize>> =
            query.groups.iter().map(|g| self.index.term_id(&g.term)).collect();
        let Some(term_ids) = term_ids else {
            return Vec::new();
        };
        if term_ids.is_empty() {
            return Vec::new();
        }
        // Score all candidate roots from the NKM (the index makes this a
        // linear scan — BLINKS's whole trade).
        let mut roots: Vec<(u32, NodeId)> = Vec::new();
        'nodes: for v in self.graph.nodes() {
            let mut score = 0u32;
            for &ti in &term_ids {
                let d = self.index.distance(v, ti);
                if d == UNREACHABLE {
                    continue 'nodes;
                }
                score += d as u32;
            }
            roots.push((score, v));
        }
        roots.sort_unstable_by_key(|&(s, v)| (s, v));
        roots.truncate(top_k);
        roots
            .into_iter()
            .map(|(score, root)| BlinksAnswer {
                root,
                paths: term_ids.iter().map(|&ti| self.descend(root, ti)).collect(),
                score,
            })
            .collect()
    }

    /// Follow the distance gradient from `v` down to a node containing
    /// term `ti`.
    fn descend(&self, v: NodeId, ti: usize) -> Vec<NodeId> {
        let mut path = vec![v];
        let mut cur = v;
        let mut d = self.index.distance(v, ti);
        while d > 0 {
            let next = self
                .graph
                .neighbors(cur)
                .iter()
                .map(|a| a.target())
                .find(|&u| self.index.distance(u, ti) == d - 1)
                .expect("gradient step must exist for a finite distance");
            path.push(next);
            cur = next;
            d -= 1;
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;
    use textindex::InvertedIndex;

    fn fixture() -> (KnowledgeGraph, InvertedIndex) {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", "apple");
        let hub = b.add_node("h", "hub");
        let z = b.add_node("z", "banana");
        let far = b.add_node("f", "apple far");
        b.add_edge(a, hub, "e");
        b.add_edge(hub, z, "e");
        b.add_edge(z, far, "e");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        (g, idx)
    }

    #[test]
    fn roots_are_distance_scored_and_distinct() {
        let (g, inv) = fixture();
        let index = NodeKeywordIndex::build(&g, &inv, 16);
        let search = BlinksSearch::new(&g, &index);
        let query = ParsedQuery::parse(&inv, "apple banana");
        let answers = search.search(&query, 10);
        assert!(!answers.is_empty());
        // Best roots score 1: hub (1+1=2)? z: apple at dist 1 (far) + 0 = 1.
        let best = &answers[0];
        assert_eq!(best.score, 1);
        assert_eq!(best.root, g.find_node_by_key("z").unwrap());
        // Distinct roots, ranked.
        let mut roots: Vec<_> = answers.iter().map(|a| a.root).collect();
        roots.dedup();
        assert_eq!(roots.len(), answers.len());
        for w in answers.windows(2) {
            assert!(w[0].score <= w[1].score);
        }
    }

    #[test]
    fn paths_descend_to_keyword_nodes() {
        let (g, inv) = fixture();
        let index = NodeKeywordIndex::build(&g, &inv, 16);
        let search = BlinksSearch::new(&g, &index);
        let query = ParsedQuery::parse(&inv, "apple banana");
        for a in search.search(&query, 10) {
            for (i, p) in a.paths.iter().enumerate() {
                assert_eq!(p[0], a.root);
                let leaf = *p.last().unwrap();
                assert!(query.groups[i].nodes.contains(&leaf));
            }
            assert!(!a.nodes().is_empty());
        }
    }

    #[test]
    fn unindexed_terms_yield_no_answers() {
        let (g, inv) = fixture();
        let index = NodeKeywordIndex::build(&g, &inv, 16);
        let search = BlinksSearch::new(&g, &index);
        // Parse against a different corpus so the term exists in the query
        // but not in this index.
        let mut b2 = GraphBuilder::new();
        b2.add_node("x", "zebra");
        let g2 = b2.build();
        let inv2 = InvertedIndex::build(&g2);
        let query = ParsedQuery::parse(&inv2, "zebra");
        assert!(search.search(&query, 5).is_empty());
    }

    #[test]
    fn disconnected_keywords_yield_no_answers() {
        let mut b = GraphBuilder::new();
        b.add_node("a", "apple");
        b.add_node("z", "banana");
        let g = b.build();
        let inv = InvertedIndex::build(&g);
        let index = NodeKeywordIndex::build(&g, &inv, 16);
        let query = ParsedQuery::parse(&inv, "apple banana");
        assert!(BlinksSearch::new(&g, &index).search(&query, 5).is_empty());
    }
}
