//! Per-query execution traces: what [`crate::profile::PhaseProfile`] is to
//! wall-clock phases, [`QueryTrace`] is to the *shape* of a search — one
//! record per BFS level of Algorithm 1/2 (frontier size, expansion work,
//! newly covered keywords, activation gating, budget headroom) plus the
//! cache and session-pool events around it.
//!
//! Tracing is opt-in via [`TraceLevel`] on `SearchParams` and is designed
//! to be zero-cost when disabled: every collection site is gated on
//! `params.trace.enabled()`, the budget tracker only arms its expansion
//! counter in tracing (or capped) mode, and `SearchOutcome` carries the
//! trace as `Option<Box<QueryTrace>>` so the disabled path moves one null
//! pointer. A differential test asserts that enabling tracing leaves
//! search results byte-for-byte identical.

use crate::profile::PhaseProfile;
use serde::{DeError, Deserialize, Serialize, Value};

/// How much per-query trace detail to collect.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceLevel {
    /// No trace (the default): collection sites compile down to a
    /// predictable branch, and no allocation happens on the query path.
    #[default]
    Off,
    /// Collect the full per-level trace.
    Full,
}

impl TraceLevel {
    /// Whether any trace should be collected.
    #[inline]
    pub fn enabled(self) -> bool {
        !matches!(self, TraceLevel::Off)
    }
}

// The vendored serde shim derives structs only; enums carry hand-written
// impls. `TraceLevel` encodes as `"off"` / `"full"`, and an absent field
// (`null`) reads as the default, matching `#[serde(default)]`.
impl Serialize for TraceLevel {
    fn to_value(&self) -> Value {
        Value::String(match self {
            TraceLevel::Off => "off".to_owned(),
            TraceLevel::Full => "full".to_owned(),
        })
    }
}

impl Deserialize for TraceLevel {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(TraceLevel::default()),
            _ => match v.as_str() {
                Some("off") => Ok(TraceLevel::Off),
                Some("full") => Ok(TraceLevel::Full),
                _ => Err(v.type_error("trace level (\"off\" or \"full\")")),
            },
        }
    }
}

/// One bottom-up BFS level as the search engine saw it.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceLevelRecord {
    /// BFS level (0 = the keyword hit nodes themselves).
    pub level: u32,
    /// Nodes in the frontier entering this level.
    pub frontier: usize,
    /// Central nodes identified (all `q` keywords covered) at this level.
    pub identified: usize,
    /// Keyword-hit cells `(node, keyword)` first covered at this level —
    /// how much new keyword coverage the level bought.
    pub new_hits: usize,
    /// Frontier nodes whose activation level exceeds this level: they are
    /// carried in the frontier but not yet allowed to identify (the
    /// paper's activation-level pruning in action).
    pub activation_deferred: usize,
    /// Budget units charged while expanding this frontier (Algorithm 2
    /// work items, weighted by keyword count).
    pub expansions: u64,
    /// Budget units remaining after this level (`None` when the query
    /// ran without an expansion cap).
    pub budget_remaining: Option<u64>,
}

/// How the result cache participated in a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache; no search ran.
    Hit,
    /// Looked up, not found; the search ran and the result was inserted.
    Miss,
    /// The cache was not consulted (disabled, or an EXPLAIN query).
    Bypass,
}

impl Serialize for CacheOutcome {
    fn to_value(&self) -> Value {
        Value::String(
            match self {
                CacheOutcome::Hit => "hit",
                CacheOutcome::Miss => "miss",
                CacheOutcome::Bypass => "bypass",
            }
            .to_owned(),
        )
    }
}

impl Deserialize for CacheOutcome {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_str() {
            Some("hit") => Ok(CacheOutcome::Hit),
            Some("miss") => Ok(CacheOutcome::Miss),
            Some("bypass") => Ok(CacheOutcome::Bypass),
            _ => Err(v.type_error("cache outcome (\"hit\", \"miss\" or \"bypass\")")),
        }
    }
}

/// Phase wall-times in milliseconds, the serialization-friendly face of
/// [`PhaseProfile`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseMillis {
    /// State initialisation / epoch bump.
    pub init_ms: f64,
    /// Frontier enqueue (Algorithm 1 lines 3–5).
    pub enqueue_ms: f64,
    /// Central-node identification.
    pub identify_ms: f64,
    /// Frontier expansion (Algorithm 2).
    pub expansion_ms: f64,
    /// Top-down extraction, pruning and ranking (Algorithm 3).
    pub top_down_ms: f64,
}

impl From<&PhaseProfile> for PhaseMillis {
    fn from(p: &PhaseProfile) -> Self {
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        PhaseMillis {
            init_ms: ms(p.init),
            enqueue_ms: ms(p.enqueue),
            identify_ms: ms(p.identify),
            expansion_ms: ms(p.expansion),
            top_down_ms: ms(p.top_down),
        }
    }
}

/// One worker-side span for one RPC of a remote query, measured with the
/// worker's monotonic clock and reported in microseconds. Spans never
/// carry absolute timestamps: two hosts' clocks are never compared —
/// only *durations* travel, and the coordinator attributes the remainder
/// of its own observed round-trip to the wire.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpan {
    /// The round-protocol phase this RPC served (`"start"`, `"enqueue"`,
    /// `"identify"`, `"expand"`, `"apply"`, `"collect"`).
    pub op: String,
    /// BFS level the RPC operated on, when the phase is per-level.
    pub level: Option<u32>,
    /// Worker-side wait between finishing the previous RPC of this query
    /// and this request's frame becoming available (read/dispatch time on
    /// the worker; coordinator think-time is *not* included — the read
    /// loop only starts counting once bytes arrive).
    pub wait_us: u64,
    /// Decoding the request payload into its typed message.
    pub decode_us: u64,
    /// Executing the phase (for `expand` this is the worker's local BFS
    /// over its partition — the per-level slice of `PhaseProfile`).
    pub exec_us: u64,
    /// Encoding and writing the response frame. Measured after the send
    /// completes and reported with the *next* span of the query, so the
    /// final `collect` span reports 0 (its encode is attributed to wire
    /// time by construction).
    pub encode_us: u64,
}

impl ShardSpan {
    /// Worker-side total for this RPC (everything but coordinator wire
    /// time).
    pub fn worker_us(&self) -> u64 {
        self.wait_us + self.decode_us + self.exec_us + self.encode_us
    }
}

/// One shard's stitched timeline for a remote query: the worker-reported
/// spans plus the coordinator-side attribution. Wire time is computed,
/// never measured: `rpc_us` (coordinator's monotonic clock around its
/// RPCs) minus `worker_us` (worker's monotonic clock inside them) — the
/// worker interval nests inside the coordinator's, so the subtraction is
/// sound without any cross-host clock comparison.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardTimeline {
    /// Shard index this timeline describes.
    pub shard: usize,
    /// The query ID the worker echoed back (`None` from a v1 worker).
    pub qid: Option<u64>,
    /// RPCs the coordinator issued to this shard for this query.
    pub rpcs: u64,
    /// Coordinator-observed total round-trip time across those RPCs, µs.
    pub rpc_us: u64,
    /// Worker-reported total across the piggybacked spans, µs.
    pub worker_us: u64,
    /// `rpc_us − worker_us`, saturating: framing, kernel, and wire.
    pub wire_us: u64,
    /// The worker's per-RPC spans, in RPC order.
    pub spans: Vec<ShardSpan>,
}

/// The full execution trace of one query, carried on `SearchOutcome`
/// when [`TraceLevel::Full`] is requested and surfaced verbatim by the
/// server's `EXPLAIN` verb and the slow-query log.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryTrace {
    /// Engine that executed the search (`"Seq"`, `"CPU-Par"`,
    /// `"GPU-Par"`, `"CPU-Par-d"`), or `"cache"` for a cache hit.
    pub engine: String,
    /// Number of query keywords after index lookup.
    pub keywords: usize,
    /// One record per bottom-up BFS level, in level order.
    pub levels: Vec<TraceLevelRecord>,
    /// Total budget units charged across the whole search.
    pub total_expansions: u64,
    /// Whether the bottom-up stage was stopped by the `lmax` level cap
    /// rather than finding enough answers or exhausting the frontier.
    /// (Budget/deadline trips surface as errors, never as a trace.)
    pub terminated: bool,
    /// How the result cache participated, if it was on the path
    /// (serialized as `null` when the query never saw a cache).
    pub cache: Option<CacheOutcome>,
    /// Pool session that executed the search.
    pub session_id: Option<u64>,
    /// Queries that session had run before this one (warmth indicator).
    pub session_queries: Option<u64>,
    /// Micro-batch this query was fused into (`None` when it ran alone
    /// through the unbatched path).
    pub batch_id: Option<u64>,
    /// Total queries sharing that batch, including this one.
    pub co_batched: Option<usize>,
    /// Phase wall-times in milliseconds.
    pub phase_ms: PhaseMillis,
    /// Fleet-wide query ID assigned at accept (`None` for traces
    /// produced outside the serving/facade path).
    pub qid: Option<u64>,
    /// On a cache hit: the query ID that populated the entry being
    /// served, so a stale or wrong cached answer can be traced back to
    /// the query that computed it.
    pub cache_source_qid: Option<u64>,
    /// Per-shard stitched timelines for a remote query (`None` for
    /// local queries or when the workers predate the span protocol).
    pub shard_timelines: Option<Vec<ShardTimeline>>,
}

impl QueryTrace {
    /// Total wall time across all profiled phases, in milliseconds.
    pub fn total_phase_ms(&self) -> f64 {
        self.phase_ms.init_ms
            + self.phase_ms.enqueue_ms
            + self.phase_ms.identify_ms
            + self.phase_ms.expansion_ms
            + self.phase_ms.top_down_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_level_default_is_off() {
        assert_eq!(TraceLevel::default(), TraceLevel::Off);
        assert!(!TraceLevel::Off.enabled());
        assert!(TraceLevel::Full.enabled());
    }

    #[test]
    fn query_trace_round_trips_through_serde() {
        let t = QueryTrace {
            engine: "CPU-Seq".into(),
            keywords: 2,
            levels: vec![TraceLevelRecord {
                level: 0,
                frontier: 10,
                identified: 1,
                new_hits: 12,
                activation_deferred: 3,
                expansions: 20,
                budget_remaining: Some(980),
            }],
            total_expansions: 20,
            terminated: false,
            cache: Some(CacheOutcome::Miss),
            session_id: Some(4),
            session_queries: Some(7),
            batch_id: Some(11),
            co_batched: Some(3),
            phase_ms: PhaseMillis::default(),
            qid: Some(77),
            cache_source_qid: Some(41),
            shard_timelines: Some(vec![ShardTimeline {
                shard: 1,
                qid: Some(77),
                rpcs: 4,
                rpc_us: 900,
                worker_us: 700,
                wire_us: 200,
                spans: vec![ShardSpan {
                    op: "expand".into(),
                    level: Some(2),
                    wait_us: 5,
                    decode_us: 10,
                    exec_us: 600,
                    encode_us: 85,
                }],
            }]),
        };
        let json = serde_json::to_string(&t).unwrap();
        assert!(json.contains("\"cache\":\"miss\""));
        assert!(json.contains("\"qid\":77"));
        let back: QueryTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn absent_events_read_back_as_none() {
        let json = serde_json::to_string(&QueryTrace::default()).unwrap();
        let back: QueryTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.session_id, None);
        assert_eq!(back.cache, None);
        assert_eq!(back.batch_id, None);
        assert_eq!(back.co_batched, None);
        assert_eq!(back.qid, None);
        assert_eq!(back.cache_source_qid, None);
        assert_eq!(back.shard_timelines, None);
    }

    #[test]
    fn shard_span_worker_total_sums_all_phases() {
        let s = ShardSpan {
            op: "enqueue".into(),
            level: Some(0),
            wait_us: 1,
            decode_us: 2,
            exec_us: 3,
            encode_us: 4,
        };
        assert_eq!(s.worker_us(), 10);
    }
}
