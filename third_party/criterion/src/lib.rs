//! Minimal `criterion` shim: same macro/API shape, but measurement is a
//! plain warm-up + timed-batches loop reporting mean/min per iteration.
//! No statistics, plots, or baseline files. `--bench --test` (what
//! `cargo test` passes) runs each benchmark once as a smoke test.

use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    smoke_test_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            smoke_test_only: smoke,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Run a standalone benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_benchmark(self, &id, f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(self.criterion, &id, f);
    }

    /// Finish the group (report-flush hook in real criterion; no-op here).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `self.iters` times.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(config: &Criterion, id: &str, mut f: impl FnMut(&mut Bencher)) {
    if config.smoke_test_only {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        println!("{id}: smoke test ok");
        return;
    }

    // Warm-up: discover a per-sample iteration count that fits the budget.
    let mut iters: u64 = 1;
    let warm_up_start = Instant::now();
    let mut per_iter = Duration::from_secs(1);
    while warm_up_start.elapsed() < config.warm_up_time {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter = b.elapsed.checked_div(iters as u32).unwrap_or(Duration::ZERO);
        if b.elapsed < Duration::from_millis(1) {
            iters = iters.saturating_mul(2);
        }
    }
    let per_sample = config.measurement_time.as_nanos() / config.sample_size.max(1) as u128;
    if per_iter.as_nanos() > 0 {
        iters = ((per_sample / per_iter.as_nanos()).max(1) as u64).min(1 << 30);
    }

    let mut samples = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
    let median = samples[samples.len() / 2];
    println!(
        "{id}: mean {} median {} min {} ({} samples x {iters} iters)",
        fmt_time(mean),
        fmt_time(median),
        fmt_time(samples[0]),
        samples.len(),
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declare a benchmark group: plain form or `name =`/`config =` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_requested_iterations() {
        let counter = std::cell::Cell::new(0u64);
        let mut b = Bencher { iters: 17, elapsed: Duration::ZERO };
        b.iter(|| counter.set(counter.get() + 1));
        assert_eq!(counter.get(), 17);
        assert!(b.elapsed > Duration::ZERO || counter.get() == 17);
    }

    #[test]
    fn group_runs_functions() {
        let mut c = Criterion {
            sample_size: 2,
            measurement_time: Duration::from_millis(10),
            warm_up_time: Duration::from_millis(2),
            smoke_test_only: false,
        };
        let mut ran = false;
        {
            let mut g = c.benchmark_group("t");
            g.bench_function("noop", |b| {
                b.iter(|| 1 + 1);
            });
            g.finish();
        }
        c.bench_function("standalone", |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(ran);
    }
}
