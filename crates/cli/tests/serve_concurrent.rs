//! Concurrent-serving integration test: `serve --workers 4` hammered by
//! interleaved clients must answer every query with exactly the bytes a
//! sequential `WikiSearch::search` over the same graph produces (modulo
//! the per-response `"ms"` timing field, which is stripped before
//! comparison). This is the service-level form of the engine-equivalence
//! property: pooled sessions + connection workers must not change a
//! single answer.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use wikisearch_engine::{Backend, WikiSearch};

/// Serialize a response document with its timing field removed, so two
/// docs can be compared byte-for-byte.
fn without_ms(doc: &serde_json::Value) -> String {
    match doc {
        serde_json::Value::Object(entries) => {
            let kept: Vec<(String, serde_json::Value)> =
                entries.iter().filter(|(k, _)| k != "ms").cloned().collect();
            serde_json::Value::Object(kept).to_string()
        }
        other => other.to_string(),
    }
}

/// The exact response document `serve` produces for one query (minus
/// timing), computed through the public engine API.
fn expected_response(ws: &WikiSearch, q: &str) -> String {
    let result = ws.search(q);
    let answers: Vec<serde_json::Value> = result
        .answers
        .iter()
        .map(|a| {
            serde_json::json!({
                "central": ws.graph().node_text(a.central),
                "depth": a.depth,
                "score": a.score,
                "nodes": a.nodes.len(),
                "edges": a.edges.len(),
            })
        })
        .collect();
    without_ms(&serde_json::json!({
        "query": q,
        "answers": answers,
        "unmatched": result.query.unmatched,
    }))
}

#[test]
fn concurrent_clients_get_sequential_answers() {
    // A synthetic KB large enough that queries differ in depth/answers.
    let cfg = {
        let mut c = datagen::synthetic::SyntheticConfig::tiny(42);
        c.num_entities = 400;
        c
    };
    let graph = cfg.generate().graph;
    let path = std::env::temp_dir()
        .join(format!("ws-serve-conc-{}.tsv", std::process::id()))
        .to_string_lossy()
        .into_owned();
    std::fs::write(&path, kgraph::io::to_tsv(&graph)).unwrap();

    // Interleaved workload: per-client query lists drawn from the same
    // vocabulary the generator labels nodes with, plus edge cases that
    // must still be answered deterministically.
    let mut workload = datagen::QueryWorkload::new(7);
    let mut queries: Vec<String> = workload.batch(3, 12);
    queries.push("learning".into());
    queries.push("zzz unmatched zzz".into());
    queries.push("machine learning inference".into());
    queries.push("database systems".into());
    let total = queries.len();

    // Reference: a sequential engine over the same graph file.
    let reference = WikiSearch::build_with(graph, Backend::Sequential);
    let expected: Vec<String> = queries.iter().map(|q| expected_response(&reference, q)).collect();

    // Spawn the server in-process, draining after exactly `total` queries.
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let port = probe.local_addr().unwrap().port();
    drop(probe);
    let argv: Vec<String> = format!(
        "serve --graph {path} --port {port} --backend seq --workers 4 --max-requests {total}"
    )
    .split_whitespace()
    .map(String::from)
    .collect();
    let server = std::thread::spawn(move || {
        let mut out = Vec::new();
        let code = wikisearch_cli::run(&argv, &mut out);
        (code, String::from_utf8(out).unwrap())
    });

    // 4 clients, queries dealt round-robin, all connections interleaved.
    let got: Vec<(usize, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|client| {
                let queries = &queries;
                scope.spawn(move || {
                    let mut stream = None;
                    for _ in 0..100 {
                        if let Ok(s) = TcpStream::connect(("127.0.0.1", port)) {
                            stream = Some(s);
                            break;
                        }
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                    let mut stream = stream.expect("server reachable");
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut responses = Vec::new();
                    for (qi, q) in queries.iter().enumerate() {
                        if qi % 4 != client {
                            continue;
                        }
                        writeln!(stream, "QUERY {q}").unwrap();
                        let mut line = String::new();
                        reader.read_line(&mut line).unwrap();
                        responses.push((qi, line));
                        std::thread::yield_now();
                    }
                    let _ = writeln!(stream, "QUIT");
                    responses
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });

    let (code, log) = server.join().unwrap();
    assert_eq!(code, 0, "{log}");
    assert!(log.contains(&format!("served {total} queries")), "{log}");

    assert_eq!(got.len(), total, "every query answered exactly once");
    for (qi, line) in &got {
        let doc: serde_json::Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("query {qi}: bad JSON {e}: {line}"));
        assert!(doc.get("error").is_none(), "query {qi} errored: {line}");
        assert_eq!(
            without_ms(&doc),
            expected[*qi],
            "query {qi} ({:?}) diverged from the sequential reference",
            queries[*qi]
        );
    }

    let _ = std::fs::remove_file(path);
}
