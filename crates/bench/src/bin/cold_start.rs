//! Cold-start cost: open-to-first-answer latency and steady-state qps,
//! memory-mapped `.wsnap` snapshot (cold and warm) vs in-RAM build.
fn main() {
    wikisearch_bench::experiments::cold_start::run();
}
