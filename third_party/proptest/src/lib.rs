//! Minimal `proptest` shim.
//!
//! Differences from upstream, by design:
//! - **No shrinking.** A failing case reports its inputs (via the assert
//!   message) and the deterministic case index, not a minimized input.
//! - **Deterministic seeding.** The RNG seed derives from the test's
//!   module path and name, so failures reproduce exactly on re-run.
//! - **Regex strategies** support the subset the workspace uses: char
//!   classes, literal chars, `(...)` groups, `{m}`/`{m,n}` repetition,
//!   and `\PC` (any non-control char).

use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod regex;

/// `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections before the test errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; draw a fresh case without counting this one.
    Reject,
    /// `prop_assert!`-style failure.
    Fail(String),
}

/// Deterministic RNG for strategy generation (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test identifier string.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, offset so the empty name is non-zero.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range in strategy");
        // Multiply-shift rejection-free mapping; bias is negligible for
        // the small bounds used in tests.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below((hi - lo) as u64) as usize
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { base: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
    {
        FlatMapStrategy { base: self, f }
    }
}

/// Strategy adapter for [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy adapter for [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMapStrategy<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let intermediate = self.base.generate(rng);
        (self.f)(intermediate).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for bool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// `&'static str` patterns generate matching strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate_matching(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Define property tests: `proptest! { #[test] fn f(x in strat) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let strategies = ($($strat,)+);
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    let ($($arg,)+) = $crate::Strategy::generate(&strategies, &mut rng);
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest `{}`: too many prop_assume! rejections ({rejected})",
                                stringify!($name),
                            );
                        }
                    }
                    Err($crate::TestCaseError::Fail(message)) => {
                        panic!(
                            "proptest `{}` failed at case {accepted}: {message}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Assert within a proptest body (reports the failing case, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Equality assert within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: `{:?}` == `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    left, right, format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Inequality assert within a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

/// Reject the current case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let strat = (0usize..100, 0u8..4);
        for _ in 0..32 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..2000 {
            let v = (3usize..25).generate(&mut rng);
            assert!((3..25).contains(&v));
            let w = (0u8..4).generate(&mut rng);
            assert!(w < 4);
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::from_name("compose");
        let strat = (2usize..6)
            .prop_flat_map(|n| crate::collection::vec(0usize..n, n).prop_map(move |v| (n, v)));
        for _ in 0..200 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

        #[test]
        fn macro_runs_and_binds_patterns((a, b) in (0usize..10, 0usize..10), c in 0u8..3) {
            prop_assume!(a != 9);
            prop_assert!(a < 10);
            prop_assert_eq!(c as usize + a + b, a + b + c as usize);
        }
    }
}
