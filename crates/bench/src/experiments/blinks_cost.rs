//! Appendix experiment: the BLINKS index-feasibility argument, measured.
//!
//! The paper excludes BLINKS from its evaluation because its keyword–node
//! lists and node–keyword map "are infeasible on Wikidata KB with 30
//! million nodes and over 5 million keywords" (Sec. VI, *Competitors*).
//! Here we build the real BLINKS index on growing synthetic KBs and place
//! its size and build time next to the Central Graph engine's Table IV
//! running storage on the same graph — then extrapolate both to the
//! paper's wiki2018 scale.

use blinks::NodeKeywordIndex;
use datagen::synthetic::SyntheticConfig;
use eval::runner::ExperimentSink;
use eval::Table;
use kgraph::MemoryFootprint;
use serde_json::json;
use textindex::InvertedIndex;

/// Entity counts for the sweep.
pub const SIZES: [usize; 4] = [1000, 2000, 4000, 8000];

/// Run the index-cost sweep.
pub fn run() -> serde_json::Value {
    println!("== Appendix: BLINKS index cost vs Central Graph running storage ==");
    let mut table = Table::new(vec![
        "entities",
        "terms",
        "BLINKS NKM",
        "BLINKS total",
        "build(ms)",
        "CG storage (Knum=8)",
    ]);
    let mut points = Vec::new();
    for &entities in &SIZES {
        let mut cfg = SyntheticConfig::tiny(31);
        cfg.num_entities = entities;
        let ds = cfg.generate();
        let inverted = InvertedIndex::build(&ds.graph);
        let index = NodeKeywordIndex::build(&ds.graph, &inverted, 12);
        let cg = MemoryFootprint::for_search(&ds.graph, 8);
        table.row(vec![
            entities.to_string(),
            index.num_terms().to_string(),
            MemoryFootprint::human(index.nkm_bytes()),
            MemoryFootprint::human(index.total_bytes()),
            format!("{:.1}", index.build_time.as_secs_f64() * 1e3),
            MemoryFootprint::human(cg.max_running_storage()),
        ]);
        points.push(json!({
            "entities": entities,
            "terms": index.num_terms(),
            "nkm_bytes": index.nkm_bytes(),
            "total_bytes": index.total_bytes(),
            "build_ms": index.build_time.as_secs_f64() * 1e3,
            "central_graph_bytes": cg.max_running_storage(),
        }));
    }
    table.print();

    // The paper's scale: 30.6M nodes × 5M keywords, 2 bytes per entry.
    let wikidata_nkm = 30_600_000u128 * 5_000_000 * 2;
    println!(
        "\nExtrapolated to the paper's wiki2018 (30.6M nodes × 5M keywords):\n\
         BLINKS NKM alone = {:.0} TB; the Central Graph engine's Table IV\n\
         running storage on the same KB is 2.92 GB — the 5-orders-of-magnitude\n\
         gap behind the paper's feasibility argument.\n",
        wikidata_nkm as f64 / 1e12
    );
    let record = json!({
        "experiment": "blinks_index_cost",
        "points": points,
        "wikidata_nkm_bytes": wikidata_nkm.to_string(),
    });
    if let Ok(path) = ExperimentSink::new().write("blinks_index_cost", &record) {
        println!("json: {}", path.display());
    }
    record
}
