//! BANKS-I: the backward search algorithm (Aditya et al., VLDB'02).
//!
//! Pure Dijkstra expansion from every keyword group simultaneously, in
//! nearest-first order. The reproduced paper notes that "as the graph size
//! increases, the scalability problem of backward search becomes salient"
//! — on hub-heavy KBs the backward wavefronts flood through summary nodes.

use crate::answer::{BanksOutcome, BanksParams};
use crate::expansion::{run, ExpansionOrder};
use kgraph::KnowledgeGraph;
use textindex::ParsedQuery;

/// The BANKS-I backward-search engine.
#[derive(Default)]
pub struct BanksI;

impl BanksI {
    /// Create the engine.
    pub fn new() -> Self {
        BanksI
    }

    /// Run a top-k backward search.
    pub fn search(
        &self,
        graph: &KnowledgeGraph,
        query: &ParsedQuery,
        params: &BanksParams,
    ) -> BanksOutcome {
        run(graph, query, params, ExpansionOrder::Distance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::GraphBuilder;
    use textindex::InvertedIndex;

    #[test]
    fn backward_search_connects_three_keywords() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", "xml");
        let r = b.add_node("r", "rdf");
        let s = b.add_node("s", "sql");
        let hub = b.add_node("h", "query language");
        b.add_edge(x, hub, "e");
        b.add_edge(r, hub, "e");
        b.add_edge(s, hub, "e");
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let q = ParsedQuery::parse(&idx, "xml rdf sql");
        let out = BanksI::new().search(&g, &q, &BanksParams::default());
        assert!(!out.answers.is_empty());
        assert_eq!(out.answers[0].root, hub);
        assert_eq!(out.answers[0].paths.len(), 3);
        out.answers[0].check_invariants().unwrap();
    }
}
