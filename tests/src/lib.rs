//! Integration-test crate for the WikiSearch workspace; see `tests/`.

#![warn(missing_docs)]
