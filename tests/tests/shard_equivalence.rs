//! The shard-invariance property: partitioning the graph into N edge-cut
//! shards and answering through the `ShardedSearch` scatter-gather
//! coordinator is *byte-identical* to the monolithic engine — answers,
//! score bits, statistics, and the per-level trace — for every backend
//! and for shard counts {1, 2, 3, 4, 8}, including counts exceeding the
//! node count and single-node/disconnected graphs.
//!
//! This is the sharded form of `engine_equivalence`: the coordinator's
//! frontier-exchange rounds must reproduce exactly the hitting-level
//! matrix a single engine computes, so every downstream artifact matches
//! bit for bit.

use central::engine::{DynParEngine, GpuStyleEngine, KeywordSearchEngine, ParCpuEngine, SeqEngine};
use central::{QueryBudget, SearchParams, ShardBackend, ShardedSearch};
use kgraph::{GraphBuilder, KnowledgeGraph};
use proptest::prelude::*;
use textindex::{InvertedIndex, ParsedQuery};

/// Small word pool; several words per node text creates overlapping
/// keyword groups and co-occurrence nodes.
const WORDS: &[&str] = &["alpha", "beta", "gamma", "delta", "omega", "sigma", "kappa", "lambda"];

/// The shard counts every property runs under; 1 pins the degenerate
/// plan, 8 usually exceeds the generated node count per shard.
const SHARD_COUNTS: &[usize] = &[1, 2, 3, 4, 8];

#[derive(Debug, Clone)]
struct Case {
    nodes: usize,
    texts: Vec<Vec<usize>>,     // word indices per node
    edges: Vec<(usize, usize)>, // node index pairs
    activation: Vec<u8>,        // explicit per-node activation
    query: Vec<usize>,          // word indices
    top_k: usize,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (2usize..24).prop_flat_map(|nodes| {
        let texts =
            proptest::collection::vec(proptest::collection::vec(0usize..WORDS.len(), 1..3), nodes);
        let edges = proptest::collection::vec((0usize..nodes, 0usize..nodes), 1..50);
        let activation = proptest::collection::vec(0u8..5, nodes);
        let query = proptest::collection::vec(0usize..WORDS.len(), 2..4);
        let top_k = 1usize..8;
        (texts, edges, activation, query, top_k).prop_map(
            move |(texts, edges, activation, query, top_k)| Case {
                nodes,
                texts,
                edges,
                activation,
                query,
                top_k,
            },
        )
    })
}

fn build_graph(case: &Case) -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    for (i, words) in case.texts.iter().enumerate() {
        let text: Vec<&str> = words.iter().map(|&w| WORDS[w]).collect();
        b.add_node(&format!("n{i}"), &text.join(" "));
    }
    for (idx, &(s, d)) in case.edges.iter().enumerate() {
        if s != d {
            let s = b.node(&format!("n{s}")).unwrap();
            let d = b.node(&format!("n{d}")).unwrap();
            b.add_edge(s, d, if idx % 3 == 0 { "p" } else { "q" });
        }
    }
    let _ = case.nodes;
    b.build()
}

/// The four sharded backends paired with their monolithic references.
fn backends() -> Vec<(ShardBackend, Box<dyn KeywordSearchEngine>)> {
    vec![
        (ShardBackend::Seq, Box::new(SeqEngine::new())),
        (ShardBackend::ParCpu(3), Box::new(ParCpuEngine::new(3))),
        (ShardBackend::GpuStyle(3), Box::new(GpuStyleEngine::new(3))),
        (ShardBackend::DynPar(3), Box::new(DynParEngine::new(3))),
    ]
}

/// Byte-level comparison of a sharded outcome against its monolithic
/// reference: answers (ids, paths, score *bits*) and the search
/// statistics including the per-level trace.
fn assert_identical(
    sharded: &central::SearchOutcome,
    reference: &central::SearchOutcome,
    label: &str,
) {
    assert_eq!(sharded.answers.len(), reference.answers.len(), "answer count: {label}");
    for (a, b) in sharded.answers.iter().zip(&reference.answers) {
        assert_eq!(a.central, b.central, "central: {label}");
        assert_eq!(a.depth, b.depth, "depth: {label}");
        assert_eq!(a.nodes, b.nodes, "nodes: {label}");
        assert_eq!(a.edges, b.edges, "edges: {label}");
        assert_eq!(a.keyword_nodes, b.keyword_nodes, "keyword nodes: {label}");
        assert_eq!(a.keyword_edges, b.keyword_edges, "keyword paths: {label}");
        assert_eq!(a.score.to_bits(), b.score.to_bits(), "score bits: {label}");
    }
    assert_eq!(sharded.stats.last_level, reference.stats.last_level, "last level: {label}");
    assert_eq!(
        sharded.stats.central_candidates, reference.stats.central_candidates,
        "cohort: {label}"
    );
    assert_eq!(
        sharded.stats.peak_frontier, reference.stats.peak_frontier,
        "peak frontier: {label}"
    );
    assert_eq!(sharded.stats.trace, reference.stats.trace, "level trace: {label}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The tentpole property: for arbitrary graphs, queries, explicit
    /// activation maps and top-k, every sharded backend at every shard
    /// count returns exactly what its monolithic counterpart returns.
    #[test]
    fn sharded_search_is_byte_identical_to_unsharded(case in case_strategy()) {
        let graph = build_graph(&case);
        let idx = InvertedIndex::build(&graph);
        let raw: Vec<&str> = case.query.iter().map(|&w| WORDS[w]).collect();
        let query = ParsedQuery::parse(&idx, &raw.join(" "));
        let params = SearchParams {
            top_k: case.top_k,
            max_level: 12,
            ..SearchParams::default()
        }
        .with_explicit_activation(case.activation.clone());
        let budget = QueryBudget::unlimited();

        for (backend, reference_engine) in backends() {
            let reference = reference_engine.search(&graph, &query, &params);
            for &shards in SHARD_COUNTS {
                let coordinator = ShardedSearch::new(&graph, backend, shards);
                let out = coordinator
                    .try_search(&graph, &query, &params, &budget)
                    .expect("unlimited budget cannot trip");
                let label = format!("{} x {shards} shards", reference_engine.name());
                assert_identical(&out, &reference, &label);
            }
        }
    }
}

/// Monolithic reference digests compared against every backend × shard
/// count for one fixed graph and query set (cheap deterministic edge
/// cases that a shrunken proptest case may never reach).
fn assert_all_shardings_match(graph: &KnowledgeGraph, queries: &[&str]) {
    let idx = InvertedIndex::build(graph);
    let params = SearchParams { max_level: 12, ..SearchParams::default() };
    let budget = QueryBudget::unlimited();
    for (backend, reference_engine) in backends() {
        for q in queries {
            let query = ParsedQuery::parse(&idx, q);
            let reference = reference_engine.search(graph, &query, &params);
            for &shards in SHARD_COUNTS {
                let coordinator = ShardedSearch::new(graph, backend, shards);
                let out = coordinator
                    .try_search(graph, &query, &params, &budget)
                    .expect("unlimited budget cannot trip");
                let label = format!("{} x {shards} shards on {q:?}", reference_engine.name());
                assert_identical(&out, &reference, &label);
            }
        }
    }
}

#[test]
fn single_node_graphs_survive_any_shard_count() {
    let mut b = GraphBuilder::new();
    b.add_node("solo", "alpha beta");
    let graph = b.build();
    assert_all_shardings_match(&graph, &["alpha beta", "alpha", "gamma", ""]);
}

#[test]
fn disconnected_graphs_survive_any_shard_count() {
    // Two components plus two isolated nodes: cross-component queries
    // must fail identically, intra-component ones must answer
    // identically, at every shard count.
    let mut b = GraphBuilder::new();
    let a1 = b.add_node("a1", "alpha");
    let a2 = b.add_node("a2", "beta");
    let a3 = b.add_node("a3", "gamma hub");
    b.add_edge(a1, a3, "p");
    b.add_edge(a2, a3, "q");
    let b1 = b.add_node("b1", "delta");
    let b2 = b.add_node("b2", "omega");
    b.add_edge(b1, b2, "p");
    b.add_node("iso1", "sigma");
    b.add_node("iso2", "kappa");
    let graph = b.build();
    assert_all_shardings_match(
        &graph,
        &["alpha beta", "delta omega", "alpha delta", "sigma kappa", "sigma"],
    );
}

#[test]
fn more_shards_than_nodes_is_byte_identical() {
    // 3 nodes, up to 8 shards: most shards own nothing and must stay
    // inert without perturbing the merged answers.
    let mut b = GraphBuilder::new();
    let x = b.add_node("x", "alpha");
    let y = b.add_node("y", "beta bridge");
    let z = b.add_node("z", "gamma");
    b.add_edge(x, y, "p");
    b.add_edge(z, y, "q");
    let graph = b.build();
    assert_all_shardings_match(&graph, &["alpha gamma", "alpha beta gamma", "beta"]);
}
